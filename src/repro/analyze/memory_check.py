"""Memory-safety checks (MEM7xx): prove or refute OOM-freedom statically.

A :class:`MemoryTarget` names a plan (or a
:class:`~repro.plans.distribute.DistributedPlan`), the row counts /
stats it will run with, and the strategies under consideration.  The
pass interprets the plan abstractly (:mod:`repro.analyze.absint`) and
compares per-strategy peak-footprint intervals against the device
budget -- the same arithmetic ``Executor._plan_chunks`` performs at
dispatch, evaluated before anything runs.

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
MEM701    error     certain OOM: the strategy's peak resident set lower
                    bound already exceeds the device budget with no
                    chunking escape (side inputs alone overflow, or a
                    barrier region blocks chunking)
MEM702    warning   possible OOM: the device budget falls inside the
                    peak-footprint interval (or the driver source is
                    statically ambiguous), so safety depends on
                    cardinalities the analysis cannot pin down
MEM703    info      chunked / pipelined execution proven sufficient:
                    the working set exceeds residency but fission
                    segments or serial chunking bound it under budget
MEM704    warning   cluster exchange hot destination: one device's
                    received exchange volume may exceed its budget
                    under the partition scheme and observed skew
MEM705    info      pre-aggregation is load-bearing for memory fit (raw
                    frontier exchange would overflow the destination
                    budget; partial-state blocks fit)
MEM706    info      fusion-savings report: bytes of intermediates the
                    fused form never materializes (the paper's
                    footprint claim, statically)
========  ========  ====================================================

The soundness contract (``tests/analyze/test_memory_soundness.py``):
a strategy this pass calls safe must never raise ``DeviceOOMError`` at
runtime for the same (plan, rows, device), and every runtime OOM must
carry a MEM701/MEM702 flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.fusion import fuse_plan
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..plans.distribute import DistributedPlan
from ..plans.plan import Plan
from ..runtime.strategies import Strategy
from ..simgpu.device import DeviceSpec
from .absint import (Interval, StrategyFootprint, fusion_savings,
                     plan_envelopes, strategy_footprint)
from .diagnostics import Diagnostic, Severity, SourceLocation

#: strategies a single-device MemoryTarget is vetted against by default
DEFAULT_STRATEGIES: tuple = (
    Strategy.SERIAL, Strategy.FUSED, Strategy.FISSION,
    Strategy.FUSED_FISSION, Strategy.WITH_ROUND_TRIP, "cpubase",
)


@dataclass
class MemoryTarget:
    """A memory-safety question, as an analyzable unit.

    ``plan`` may be a plain :class:`~repro.plans.plan.Plan` (vetted per
    single-device strategy) or a :class:`DistributedPlan` (per-shard
    local phase plus exchange-volume bounds).  ``stats`` optionally
    seeds sources the ``source_rows`` mapping does not name and carries
    the skew the exchange bounds price.
    """

    plan: "Plan | DistributedPlan"
    source_rows: dict[str, int] | None = None
    stats: object = None
    strategies: tuple = DEFAULT_STRATEGIES
    #: device-memory safety margin (ExecutionConfig default)
    memory_safety: float = 0.9
    #: override the analyzer's device for this one target
    device: DeviceSpec | None = None
    #: pre-compiled :class:`~repro.core.fusion.FusionResult` to vet
    #: instead of the default cost-model-free fuse (the executor
    #: pre-flight passes its own, so the verdict covers the exact
    #: regions it will dispatch)
    fusion: object = None

    @property
    def unit(self) -> str:
        return self.plan.name


class MemoryCheckPass:
    """All MEM7xx checks over one :class:`MemoryTarget`."""

    name = "memory-check"
    codes = ("MEM701", "MEM702", "MEM703", "MEM704", "MEM705", "MEM706")

    def __init__(self, device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS):
        self.device = device or DeviceSpec()
        self.costs = costs

    # ------------------------------------------------------------------
    def run(self, target: MemoryTarget) -> list[Diagnostic]:
        device = target.device or self.device
        if isinstance(target.plan, DistributedPlan):
            return self._run_cluster(target, target.plan, device)
        return self._run_single(target, target.plan, device)

    # -- single device ---------------------------------------------------
    def _run_single(self, target: MemoryTarget, plan: Plan,
                    device: DeviceSpec) -> list[Diagnostic]:
        plan.validate()
        envs = plan_envelopes(plan, target.source_rows, target.stats)
        diags: list[Diagnostic] = []
        for strategy in target.strategies:
            fp = strategy_footprint(plan, strategy, envs, device,
                                    target.memory_safety,
                                    fusion=target.fusion)
            diags.extend(self._verdict_diags(target.unit, fp))
        diags.extend(self._savings_diag(target.unit, plan, envs,
                                        fusion=target.fusion))
        return diags

    # -- cluster ---------------------------------------------------------
    def _run_cluster(self, target: MemoryTarget, dist: DistributedPlan,
                     device: DeviceSpec) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        local = (dist.preagg_plan() if dist.preagg is not None
                 else dist.local_plan())
        shard_rows = self._shard0_rows(dist, local, target.source_rows)
        envs = plan_envelopes(local, shard_rows, target.stats)
        strategies = [s for s in target.strategies if s != "cpubase"]
        for strategy in strategies:
            fp = strategy_footprint(local, strategy, envs, device,
                                    target.memory_safety)
            diags.extend(self._verdict_diags(
                target.unit, fp, phase="shard-local"))
        diags.extend(self._savings_diag(target.unit, local, envs))
        diags.extend(self._exchange_diags(target, dist, device))
        return diags

    def _shard0_rows(self, dist: DistributedPlan, local: Plan,
                     source_rows: dict[str, int] | None
                     ) -> dict[str, int]:
        """Shard 0's source slice -- the largest shard (`even_counts`
        gives the remainder rows to the lowest shards), so its verdict
        bounds every shard's."""
        from ..cluster.partition import even_counts
        rows: dict[str, int] = {}
        given = source_rows or {}
        needed = {s.name for s in local.sources()}
        for src in dist.sources:
            if src.name not in needed:
                continue
            total = int(given.get(src.name, src.rows))
            if src.kind == "replicated":
                rows[src.name] = total
            else:
                rows[src.name] = even_counts(total, dist.num_shards)[0]
        return rows

    def _exchange_diags(self, target: MemoryTarget, dist: DistributedPlan,
                        device: DeviceSpec) -> list[Diagnostic]:
        """MEM704/MEM705: per-destination exchange-volume bounds."""
        if dist.suffix_mode != "exchange" or dist.exchange is None:
            return []
        budget = float(device.global_mem_bytes) * target.memory_safety
        n = dist.num_shards
        full_envs = plan_envelopes(dist.plan, target.source_rows,
                                   target.stats)
        frontier = full_envs[dist.exchange.buffer]
        raw_bytes = frontier.bytes
        skew = float(getattr(target.stats, "max_skew", 0.0) or 0.0)
        hot_share = max(1.0 / n, min(1.0, skew))
        raw_hot = raw_bytes.scale(hot_share)

        diags: list[Diagnostic] = []
        loc = SourceLocation(target.unit, "exchange", dist.exchange.buffer)
        if dist.preagg is not None:
            # shards ship partial-state blocks: one block of
            # `state_block_nbytes` per PREAGG_FLUSH_ROWS frontier rows
            spec = dist.preagg
            per_shard = frontier.rows.scale(1.0 / n)
            flushes_hi = (math.inf if math.isinf(per_shard.hi)
                          else float(spec.flushes(per_shard.hi)))
            total_state = Interval(
                float(spec.flushes(per_shard.lo)) * n * spec.state_block_nbytes,
                (math.inf if math.isinf(flushes_hi)
                 else flushes_hi * n * spec.state_block_nbytes))
            hot = total_state.scale(hot_share)
            if hot.hi > budget:
                diags.append(self._diag(
                    "MEM704", Severity.WARNING, loc,
                    f"exchange hot destination may receive "
                    f"{hot.render(' B')} of partial states "
                    f"(scheme={dist.scheme}, skew share {hot_share:.3f}) "
                    f"against a {budget:,.0f} B device budget"))
            if raw_hot.lo > budget >= hot.hi:
                diags.append(self._diag(
                    "MEM705", Severity.INFO, loc,
                    f"pre-aggregation is load-bearing for fit: raw "
                    f"frontier exchange {raw_hot.render(' B')} per hot "
                    f"destination overflows the {budget:,.0f} B budget; "
                    f"partial-state blocks {hot.render(' B')} fit"))
        elif raw_hot.hi > budget:
            diags.append(self._diag(
                "MEM704", Severity.WARNING, loc,
                f"exchange hot destination may receive "
                f"{raw_hot.render(' B')} of raw frontier rows "
                f"(scheme={dist.scheme}, skew share {hot_share:.3f}) "
                f"against a {budget:,.0f} B device budget"))
        return diags

    # -- diagnostics -----------------------------------------------------
    def _diag(self, code: str, severity: Severity, loc: SourceLocation,
              message: str) -> Diagnostic:
        return Diagnostic(code=code, severity=severity, message=message,
                          location=loc, pass_name=self.name)

    def _verdict_diags(self, unit: str, fp: StrategyFootprint,
                       phase: str = "") -> list[Diagnostic]:
        label = f"{fp.strategy}@{phase}" if phase else fp.strategy
        loc = SourceLocation(unit, "strategy", label)
        budget = fp.budget_bytes
        detail = (f"peak {fp.peak_bytes.render(' B')} "
                  f"(side inputs {fp.side_bytes.render(' B')}, working set "
                  f"{fp.working_bytes.render(' B')}) vs budget "
                  f"{budget:,.0f} B")
        if fp.verdict == "certain-oom":
            cause = ("side inputs alone overflow the budget"
                     if fp.side_bytes.lo >= budget else
                     "a barrier region pins the whole working set")
            return [self._diag(
                "MEM701", Severity.ERROR, loc,
                f"certain OOM under {fp.strategy!r}: {detail}; {cause}")]
        if fp.verdict == "possible-oom":
            why = ("driver source ambiguous under unknown cardinalities"
                   if fp.driver_ambiguous else
                   "the budget falls inside the peak interval")
            return [self._diag(
                "MEM702", Severity.WARNING, loc,
                f"possible OOM under {fp.strategy!r}: {detail}; {why}")]
        out: list[Diagnostic] = []
        if fp.pipelined:
            out.append(self._diag(
                "MEM703", Severity.INFO, loc,
                f"safe under {fp.strategy!r} via pipelined fission: "
                f"driver streams in segments, so residency never holds "
                f"the whole {fp.working_bytes.render(' B')} working set"))
        elif fp.chunks.hi > 1:
            out.append(self._diag(
                "MEM703", Severity.INFO, loc,
                f"safe under {fp.strategy!r} via chunking: "
                f"{fp.chunks.render()} chunks bound the "
                f"{fp.working_bytes.render(' B')} working set under the "
                f"{budget:,.0f} B budget"))
        return out

    def _savings_diag(self, unit: str, plan: Plan,
                      envs, fusion=None) -> list[Diagnostic]:
        if fusion is None or not getattr(fusion, "regions", None):
            fusion = fuse_plan(plan, enable=True)
        savings = fusion_savings(fusion, envs)
        if savings.hi <= 0:
            return []
        return [self._diag(
            "MEM706", Severity.INFO,
            SourceLocation(unit, "fusion", "savings"),
            f"fusion eliminates {savings.render(' B')} of materialized "
            f"intermediates across {fusion.num_fused_regions} fused "
            f"region(s)")]


# ----------------------------------------------------------------------
# the one-call verdict the optimizer / executors consult
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MemoryVerdict:
    """Cacheable per-strategy answer for pre-flight callers."""

    strategy: str
    verdict: str                    # "safe" | "certain-oom" | "possible-oom"
    peak_lo: float
    peak_hi: float
    budget: float
    detail: str = ""

    @property
    def certain_oom(self) -> bool:
        return self.verdict == "certain-oom"


def check_strategy(plan: Plan, strategy: "Strategy | str",
                   source_rows: dict[str, int] | None,
                   device: DeviceSpec,
                   memory_safety: float = 0.9,
                   stats: object = None,
                   fusion=None) -> MemoryVerdict:
    """One strategy's memory verdict -- the entry point
    ``Optimizer.choose`` and the executor pre-flights use (verdicts are
    content-addressed under ``absint:*`` keys in the
    :class:`~repro.optimizer.plancache.PlanCache` by their callers)."""
    envs = plan_envelopes(plan, source_rows, stats)
    fp = strategy_footprint(plan, strategy, envs, device, memory_safety,
                            fusion=fusion)
    detail = (f"peak {fp.peak_bytes.render(' B')} vs budget "
              f"{fp.budget_bytes:,.0f} B")
    return MemoryVerdict(
        strategy=fp.strategy, verdict=fp.verdict,
        peak_lo=fp.peak_bytes.lo, peak_hi=fp.peak_bytes.hi,
        budget=fp.budget_bytes, detail=detail)

"""SELECT-chain execution with compressed PCIe transfers.

Composes the compression model (:mod:`repro.simgpu.compression`) with the
fusion strategies so the ablation bench can pit the paper's optimizations
against -- and combine them with -- the compression alternative its
related-work section cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.opmodels import chain_for_region
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..faults import FaultInjector, FaultPlan, as_injector
from ..plans.plan import Plan
from ..simgpu.compression import CompressionScheme, NONE
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import SimEngine, SimStream
from ..simgpu.pcie import HostMemory
from ..simgpu.timeline import Timeline
from .select_chain import INT_ROW_BYTES, select_chain_plan


@dataclass(frozen=True)
class CompressedRunResult:
    n_elements: int
    timeline: Timeline
    scheme_name: str

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def throughput(self) -> float:
        return self.n_elements * INT_ROW_BYTES / self.makespan


def run_compressed_select_chain(
    n_elements: int,
    num_selects: int = 2,
    selectivity: float = 0.5,
    scheme: CompressionScheme = NONE,
    fused: bool = True,
    device: DeviceSpec | None = None,
    costs: StageCostParams = DEFAULT_STAGE_COSTS,
    memory: HostMemory = HostMemory.PINNED,
    data_stored_compressed: bool = True,
    faults: "FaultPlan | FaultInjector | None" = None,
) -> CompressedRunResult:
    """One SELECT chain with the input transferred compressed.

    ``data_stored_compressed=True`` models a warehouse whose columns are
    kept compressed on the host (no pack cost); otherwise the host pays to
    compress before uploading.  ``faults`` enables deterministic fault
    injection on the simulated engine (see :mod:`repro.faults`); a
    :class:`~repro.errors.FaultError` propagates when retries run out.
    """
    device = device or DeviceSpec()
    plan = select_chain_plan(num_selects, selectivity)
    selects = [n for n in plan.nodes if n.name.startswith("select")]

    stream = SimStream(stream_id=0)
    in_bytes = float(n_elements) * INT_ROW_BYTES

    if not data_stored_compressed:
        t = scheme.host_compress_time(in_bytes)
        if t > 0:
            stream.host(t, tag=f"compress.{scheme.name}")
    wire_bytes = scheme.wire_bytes(in_bytes)
    if wire_bytes > 0:
        stream.h2d(wire_bytes, memory, tag="input.compressed")
    if scheme.ratio > 1.0:
        stream.kernel(scheme.decompress_spec(n_elements, INT_ROW_BYTES, device))

    if fused:
        chain = chain_for_region(selects, costs)
        for spec in chain.main_launch_specs(n_elements, device):
            stream.kernel(spec, tag=spec.name)
    else:
        alive = n_elements
        for sel in selects:
            chain = chain_for_region([sel], costs)
            for spec in chain.main_launch_specs(alive, device):
                stream.kernel(spec, tag=spec.name)
            alive = max(1, int(round(alive * sel.selectivity)))

    out_bytes = in_bytes * (selectivity ** num_selects)
    if out_bytes > 0:
        stream.d2h(out_bytes, memory, tag="output")

    timeline = SimEngine(device, faults=as_injector(faults)).run([stream])
    return CompressedRunResult(n_elements=n_elements, timeline=timeline,
                               scheme_name=scheme.name)

"""Cross-query workloads: fusing operators *across* queries (SS III-A).

"In data warehousing applications, there are opportunities to apply kernel
fusion across queries since RA operators from different queries can be
fused."

A :class:`QueryWorkload` holds several plans that read the same base
tables.  Merging them into one combined plan makes the shared sources
explicit; shared-scan groups (Fig 2(c)) then appear wherever different
queries filter the same table, and the scan cost is paid once.  The
scheduler compares three regimes:

* **isolated** -- each query executed on its own (input re-uploaded and
  re-scanned per query);
* **shared-source** -- one upload, per-query kernels;
* **cross-query fused** -- one upload, shared-scan kernels for the
  SELECT groups + per-query remainders;
* **batched streams** -- the serving-path variant of cross-query fusion:
  one upload + shared-scan kernels on a lead stream, then each query's
  remaining kernels issued to its own Stream-Pool stream so independent
  remainders overlap on the SM pool (used by :mod:`repro.serve`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.multifusion import (
    SharedScanGroup,
    chain_for_shared_scan,
    find_shared_select_groups,
    split_group_by_registers,
)
from ..core.opmodels import chain_for_region, out_row_nbytes
from ..errors import PlanError
from ..faults import as_injector
from ..plans.plan import OpType, Plan, PlanNode
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import SimEngine, SimStream
from ..simgpu.pcie import HostMemory
from ..simgpu.timeline import Timeline
from .sizes import estimate_sizes


@dataclass
class QueryWorkload:
    """Several single-chain queries over shared source tables."""

    plans: list[Plan]

    def __post_init__(self):
        if not self.plans:
            raise PlanError("workload needs at least one query")
        for p in self.plans:
            p.validate()

    def merged_plan(self) -> Plan:
        """One plan containing every query, with same-named sources merged."""
        merged = Plan(name="workload")
        sources: dict[str, PlanNode] = {}
        for qi, plan in enumerate(self.plans):
            mapping: dict[int, PlanNode] = {}
            for node in plan.topological():
                if node.op is OpType.SOURCE:
                    if node.name not in sources:
                        clone = PlanNode(
                            op=node.op, name=node.name, inputs=[],
                            params=dict(node.params),
                            selectivity=node.selectivity,
                            out_row_nbytes=node.out_row_nbytes)
                        merged.nodes.append(clone)
                        sources[node.name] = clone
                    mapping[id(node)] = sources[node.name]
                    continue
                clone = PlanNode(
                    op=node.op, name=f"q{qi}.{node.name}",
                    inputs=[mapping[id(i)] for i in node.inputs],
                    params=dict(node.params),
                    selectivity=node.selectivity,
                    out_row_nbytes=node.out_row_nbytes)
                merged.nodes.append(clone)
                mapping[id(node)] = clone
        merged.validate()
        return merged


@dataclass
class WorkloadRunResult:
    mode: str
    timeline: Timeline
    input_bytes: float

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def throughput(self) -> float:
        return self.input_bytes / self.makespan if self.makespan else 0.0


class WorkloadScheduler:
    """Times a workload under the three sharing regimes.

    ``check=True`` sanitizes every timeline the scheduler produces;
    ``faults`` (a :class:`~repro.faults.FaultPlan` or injector) makes every
    engine it drives consult the injector, so serving-path batches degrade
    or raise typed :class:`~repro.errors.FaultError` like the Executor does.
    A :class:`FaultPlan` yields a fresh injector per regime run, keeping
    each run independently deterministic.
    """

    def __init__(self, device: DeviceSpec | None = None,
                 memory: HostMemory = HostMemory.PINNED,
                 check: bool = False, faults=None,
                 analyze: bool = False):
        self.device = device or DeviceSpec()
        self.memory = memory
        self.check = check
        self.faults = faults
        #: static pre-flight: race-check each batched stream program before
        #: it runs; error findings raise :class:`~repro.errors.AnalysisError`
        self.analyze = analyze

    def _engine(self) -> SimEngine:
        return SimEngine(self.device, check=self.check,
                         faults=as_injector(self.faults))

    # -- helpers ----------------------------------------------------------
    def _emit_query_kernels(self, stream, plan: Plan,
                            sizes: dict[str, int],
                            skip: set[str] = frozenset(),
                            only_prefix: str | None = None) -> None:
        """Queue every non-fused kernel of `plan` onto `stream` (a
        :class:`SimStream` or pooled stream).  `only_prefix` restricts the
        emission to nodes of one query in a merged workload plan."""
        from ..core.opmodels import FUSABLE_OPS, chain_for_node
        for node in plan.topological():
            if node.op is OpType.SOURCE or node.name in skip:
                continue
            if only_prefix is not None and not node.name.startswith(only_prefix):
                continue
            primary = node.inputs[0]
            n_in = sizes[primary.name]
            if node.op in FUSABLE_OPS:
                chain = chain_for_region([node])
            else:
                chain = chain_for_node(node, n_in_hint=max(n_in, 2))
            side_sizes = {getattr(x, "name", str(x)): sizes[x.name]
                          for _, x in chain.side_kernels}
            reads = tuple(i.name for i in node.inputs)
            if chain.side_kernels:
                reads += (f"{node.name}.build",)
            for spec in chain.side_launch_specs(self.device, side_sizes):
                stream.kernel(spec, tag=spec.name,
                              reads=tuple(i.name for i in node.inputs[1:]),
                              writes=(f"{node.name}.build",))
            for spec in chain.main_launch_specs(max(n_in, 1), self.device):
                stream.kernel(spec, tag=spec.name, reads=reads,
                              writes=(node.name,))

    def _upload(self, stream, plan: Plan,
                sizes: dict[str, int]) -> float:
        total = 0.0
        for src in plan.sources():
            nbytes = float(sizes[src.name]) * out_row_nbytes(src)
            total += nbytes
            if nbytes > 0:
                stream.h2d(nbytes, self.memory, tag=f"input.{src.name}",
                           writes=(src.name,))
        return total

    # -- regimes -------------------------------------------------------------
    def run_isolated(self, workload: QueryWorkload,
                     source_rows: dict[str, int]) -> WorkloadRunResult:
        """Each query uploads and scans its own copy of the inputs."""
        stream = SimStream(stream_id=0)
        total = 0.0
        for plan in workload.plans:
            sizes = estimate_sizes(plan, source_rows)
            total += self._upload(stream, plan, sizes)
            self._emit_query_kernels(stream, plan, sizes)
        tl = self._engine().run([stream])
        return WorkloadRunResult("isolated", tl, total)

    def run_shared_source(self, workload: QueryWorkload,
                          source_rows: dict[str, int]) -> WorkloadRunResult:
        """One upload of the shared tables; per-query kernels unchanged."""
        merged = workload.merged_plan()
        sizes = estimate_sizes(merged, source_rows)
        stream = SimStream(stream_id=0)
        total = self._upload(stream, merged, sizes)
        self._emit_query_kernels(stream, merged, sizes)
        tl = self._engine().run([stream])
        return WorkloadRunResult("shared_source", tl, total)

    def _emit_shared_scans(self, stream, merged: Plan,
                           sizes: dict[str, int]) -> set[str]:
        """Queue the shared-scan kernels for every multi-query SELECT group;
        returns the names of the SELECT nodes they cover."""
        fused_names: set[str] = set()
        for raw_group in find_shared_select_groups(merged):
            for group in split_group_by_registers(raw_group):
                if len(group.selects) < 2:
                    continue  # singleton remainder: leave to the per-query path
                chain = chain_for_shared_scan(group)
                n_in = sizes[group.producer.name]
                select_names = tuple(s.name for s in group.selects)
                for spec in chain.main_launch_specs(max(n_in, 1), self.device):
                    stream.kernel(spec, tag=spec.name,
                                  reads=(group.producer.name,),
                                  writes=select_names)
                fused_names.update(select_names)
        return fused_names

    def run_cross_query_fused(self, workload: QueryWorkload,
                              source_rows: dict[str, int]) -> WorkloadRunResult:
        """Shared upload + shared-scan kernels for SELECT groups."""
        merged = workload.merged_plan()
        sizes = estimate_sizes(merged, source_rows)
        stream = SimStream(stream_id=0)
        total = self._upload(stream, merged, sizes)
        fused_names = self._emit_shared_scans(stream, merged, sizes)
        self._emit_query_kernels(stream, merged, sizes, skip=fused_names)
        tl = self._engine().run([stream])
        return WorkloadRunResult("cross_query_fused", tl, total)

    def run_batched_streams(self, workload: QueryWorkload,
                            source_rows: dict[str, int],
                            pool=None, max_streams: int = 4
                            ) -> WorkloadRunResult:
        """The serving path's batch dispatch (see :mod:`repro.serve`).

        One lead stream uploads the shared tables and runs the shared-scan
        kernels; each query's remaining kernels then run on a Stream-Pool
        stream of their own, gated on the lead stream via ``selectWait``,
        so independent per-query remainders overlap on the SM pool.

        An injected fault past the retry budget escapes as a typed
        :class:`~repro.errors.FaultError`; the caller (the serve-layer
        dispatcher) recovers by :meth:`~repro.streampool.StreamPool.reset`
        and a degraded re-dispatch.
        """
        pool, total = self.enqueue_batched_streams(
            workload, source_rows, pool=pool, max_streams=max_streams)
        if self.analyze:
            # static pre-flight: race-check the stream program before it
            # runs (lazy import keeps runtime -> analyze one-directional)
            from ..analyze import Analyzer
            Analyzer(self.device).run(
                pool, unit="batched_streams", strict=True)
        tl = pool.wait_all()
        return WorkloadRunResult("batched_streams", tl, total)

    def enqueue_batched_streams(self, workload: QueryWorkload,
                                source_rows: dict[str, int],
                                pool=None, max_streams: int = 4):
        """Build (but do not run) the batched-streams program.

        Returns ``(pool, uploaded_bytes)`` with every command enqueued:
        what :meth:`run_batched_streams` hands to the engine, and what the
        static analyzer's stream race detector inspects.
        """
        from ..streampool import StreamPool

        merged = workload.merged_plan()
        sizes = estimate_sizes(merged, source_rows)
        n_workers = max(1, min(max_streams, len(workload.plans)))
        if pool is None:
            pool = StreamPool(self.device, num_streams=1 + n_workers,
                              engine=self._engine())
        else:
            # serving reuses one pool across batches; refresh the engine so
            # each batch gets its own deterministic injector state
            pool.engine = self._engine()

        lead = pool.get_available_stream()
        total = self._upload(lead, merged, sizes)
        fused_names = self._emit_shared_scans(lead, merged, sizes)

        workers = [pool.get_available_stream() for _ in range(n_workers)]
        for w in workers:
            if w is not lead:
                pool.select_wait(w, lead)
        for qi in range(len(workload.plans)):
            stream = workers[qi % n_workers]
            self._emit_query_kernels(stream, merged, sizes, skip=fused_names,
                                     only_prefix=f"q{qi}.")
        return pool, total

    def compare(self, workload: QueryWorkload, source_rows: dict[str, int]
                ) -> dict[str, WorkloadRunResult]:
        return {
            "isolated": self.run_isolated(workload, source_rows),
            "shared_source": self.run_shared_source(workload, source_rows),
            "cross_query_fused": self.run_cross_query_fused(workload, source_rows),
        }

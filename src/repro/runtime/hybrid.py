"""Hybrid CPU+GPU execution (the paper's SS III-C future work).

"If using an execution model translator such as Ocelot, it is possible to
execute fused kernels on both the CPU and GPU to fully utilize the
available computation power."

This module implements that scheduler for SELECT chains: the input is
split, the GPU processes its share through the (fused, fissioned)
pipeline while the CPU runs the same fused filters on the rest, and the
results are concatenated.  Because the GPU side is PCIe-bound, the CPU
share is far from negligible -- offloading onto an otherwise idle host
raises total throughput by roughly cpu_rate / gpu_rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpubase.select import cpu_select_time
from ..simgpu.calibration import DEFAULT_CALIBRATION
from ..simgpu.device import DeviceSpec
from .select_chain import run_select_chain
from .strategies import Strategy


@dataclass(frozen=True)
class HybridRunResult:
    n_elements: int
    cpu_fraction: float
    gpu_time: float
    cpu_time: float

    @property
    def makespan(self) -> float:
        """CPU and GPU work concurrently; the slower side gates."""
        return max(self.gpu_time, self.cpu_time)

    @property
    def throughput(self) -> float:
        return self.n_elements * 4 / self.makespan if self.makespan else 0.0

    @property
    def balance(self) -> float:
        """1.0 = perfectly balanced split."""
        hi = max(self.gpu_time, self.cpu_time)
        lo = min(self.gpu_time, self.cpu_time)
        return lo / hi if hi > 0 else 1.0


def _gpu_time(n: int, num_selects: int, selectivity: float,
              device: DeviceSpec | None, strategy: Strategy) -> float:
    if n <= 0:
        return 0.0
    return run_select_chain(n, num_selects, selectivity, strategy,
                            device=device).makespan


def _cpu_chain_time(n: int, num_selects: int, selectivity: float) -> float:
    """CPU runs the *fused* filter chain: one pass, conjoined predicates.

    Reads every element once; writes only the final survivors.
    """
    if n <= 0:
        return 0.0
    # a fused CPU filter behaves like one select whose write fraction is
    # the compound selectivity
    return cpu_select_time(n, selectivity=selectivity ** num_selects)


def run_hybrid_select(
    n_elements: int,
    num_selects: int = 2,
    selectivity: float = 0.5,
    cpu_fraction: float | None = None,
    device: DeviceSpec | None = None,
    gpu_strategy: Strategy = Strategy.FUSED_FISSION,
) -> HybridRunResult:
    """Run a SELECT chain split across CPU and GPU.

    ``cpu_fraction=None`` picks the load balance automatically (golden-
    section search on the max of the two sides).
    """
    if cpu_fraction is None:
        cpu_fraction = balance_split(n_elements, num_selects, selectivity,
                                     device, gpu_strategy)
    if not 0.0 <= cpu_fraction <= 1.0:
        raise ValueError(f"cpu_fraction must be in [0, 1], got {cpu_fraction}")
    n_cpu = int(round(n_elements * cpu_fraction))
    n_gpu = n_elements - n_cpu
    return HybridRunResult(
        n_elements=n_elements,
        cpu_fraction=cpu_fraction,
        gpu_time=_gpu_time(n_gpu, num_selects, selectivity, device, gpu_strategy),
        cpu_time=_cpu_chain_time(n_cpu, num_selects, selectivity),
    )


def balance_split(n_elements: int, num_selects: int = 2,
                  selectivity: float = 0.5,
                  device: DeviceSpec | None = None,
                  gpu_strategy: Strategy = Strategy.FUSED_FISSION,
                  iterations: int = 24) -> float:
    """CPU fraction that balances the two sides (bisection on the
    difference of side times, which is monotone in the split)."""
    lo, hi = 0.0, 1.0
    for _ in range(iterations):
        mid = (lo + hi) / 2
        n_cpu = int(round(n_elements * mid))
        n_gpu = n_elements - n_cpu
        cpu_t = _cpu_chain_time(n_cpu, num_selects, selectivity)
        gpu_t = _gpu_time(n_gpu, num_selects, selectivity, device, gpu_strategy)
        if cpu_t < gpu_t:
            lo = mid      # CPU has headroom: give it more
        else:
            hi = mid
    return (lo + hi) / 2

"""Plan execution on the simulated platform: strategies, executor, metrics."""

from .compressed import CompressedRunResult, run_compressed_select_chain
from .estimates import EstimateProfile, profile_estimates
from .executor import Executor, RunResult
from .hybrid import HybridRunResult, balance_split, run_hybrid_select
from .gpu_rt import DeviceBuffer, FunctionalRunResult, GpuRuntime
from .sizes import estimate_sizes
from .strategies import ExecutionConfig, Strategy

__all__ = [
    "Executor", "RunResult", "DeviceBuffer", "FunctionalRunResult",
    "GpuRuntime", "estimate_sizes", "ExecutionConfig", "Strategy",
    "CompressedRunResult", "run_compressed_select_chain",
    "HybridRunResult", "balance_split", "run_hybrid_select",
    "EstimateProfile", "profile_estimates",
]

"""Execution strategies (the paper's evaluated methods).

==================  ======================================================
WITH_ROUND_TRIP     every operator's intermediate result is staged back to
                    host memory and re-downloaded (forced when intermediates
                    do not fit on the device; SS III-B)
SERIAL              "without round trip": intermediates stay in GPU memory,
                    operators run unfused, back to back
FUSED               kernel fusion applied (SS III)
FISSION             kernel fission applied: segmented, pipelined transfers
                    (SS IV), unfused kernels
FUSED_FISSION       both (SS IV-C)
==================  ======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.fission import FissionConfig
from ..simgpu.pcie import HostMemory


class Strategy(enum.Enum):
    WITH_ROUND_TRIP = "with_round_trip"
    SERIAL = "serial"
    FUSED = "fused"
    FISSION = "fission"
    FUSED_FISSION = "fused_fission"

    @property
    def uses_fusion(self) -> bool:
        return self in (Strategy.FUSED, Strategy.FUSED_FISSION)

    @property
    def uses_fission(self) -> bool:
        return self in (Strategy.FISSION, Strategy.FUSED_FISSION)


@dataclass(frozen=True)
class ExecutionConfig:
    strategy: Strategy = Strategy.SERIAL
    #: host memory for the initial-input / final-output staging buffers
    #: (persistent, so kept pinned)
    memory: HostMemory = HostMemory.PINNED
    #: host memory for intermediate round-trip spills (ad-hoc heap buffers,
    #: hence pageable) -- this asymmetry gives round trips their outsized
    #: share of Fig 9's breakdown
    roundtrip_memory: HostMemory = HostMemory.PAGED
    fission: FissionConfig = field(default_factory=FissionConfig)
    #: when False, no PCIe transfers are simulated (GPU-compute-only runs,
    #: as in Fig 8(b), Fig 10-12)
    include_transfers: bool = True
    #: device-memory safety margin for chunked serial execution
    memory_safety: float = 0.9

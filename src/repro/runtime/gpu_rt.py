"""The simulated-device *runtime*: functional execution + memory management.

Where :class:`repro.runtime.executor.Executor` times a plan from
cardinality annotations, this module actually *runs* it: every region
computes its real NumPy result, device memory is tracked byte-accurately
against the 6 GB budget, and when an allocation does not fit the runtime
spills a resident intermediate back to the host and re-uploads it on next
use -- the mechanism that makes *with round trip* a forced baseline in the
paper ("if the intermediate data is larger than the relatively small GPU
memory ... the intermediate data will have to be transferred back to the
CPU", SS III-A).

Because fusion eliminates intermediates, running the same plan fused under
memory pressure causes *fewer* spills -- benefit (a)/(b) of Fig 7, which
`benchmarks/bench_ablation_memory_pressure.py` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cost import FusionCostModel
from ..core.fusion import FusionResult, Region, fuse_plan
from ..core.opmodels import chain_for_node, chain_for_region
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..errors import DeviceOOMError, PlanError
from ..plans.interp import _eval_node
from ..plans.plan import OpType, Plan, PlanNode
from ..ra.relation import Relation
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import SimEngine, SimStream
from ..simgpu.memory import DeviceMemory
from ..simgpu.pcie import HostMemory
from ..simgpu.timeline import EventKind, Timeline


@dataclass
class DeviceBuffer:
    """A relation materialized on the simulated device (or spilled)."""

    name: str
    relation: Relation
    nbytes: int
    handle: int | None = None       # DeviceMemory handle when resident
    refs_remaining: int = 0         # future consumers

    @property
    def resident(self) -> bool:
        return self.handle is not None


@dataclass
class FunctionalRunResult:
    """Functional answers + the simulated timeline that produced them."""

    results: dict[str, Relation]
    timeline: Timeline
    fusion: FusionResult
    spill_count: int
    peak_device_bytes: int

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def roundtrip_time(self) -> float:
        return self.timeline.total_time(tag_prefix="spill")


class GpuRuntime:
    """Executes plans functionally on the simulated device.

    Parameters
    ----------
    device:
        The simulated GPU (its ``global_mem_bytes`` bounds residency).
    fuse:
        Apply the fusion pass before execution.
    memory_limit:
        Override the device-memory budget (for memory-pressure studies).
    """

    def __init__(self, device: DeviceSpec | None = None, fuse: bool = True,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS,
                 cost_model: FusionCostModel | None = None,
                 memory_limit: int | None = None,
                 host_memory: HostMemory = HostMemory.PINNED):
        self.device = device or DeviceSpec()
        self.fuse = fuse
        self.costs = costs
        self.cost_model = cost_model
        self.memory = DeviceMemory(
            capacity=memory_limit if memory_limit is not None
            else self.device.global_mem_bytes)
        self.host_memory = host_memory

    # ------------------------------------------------------------------
    def run(self, plan: Plan, sources: dict[str, Relation]
            ) -> FunctionalRunResult:
        plan.validate()
        self.memory.reset()
        fusion = fuse_plan(plan, cost_model=self.cost_model, enable=self.fuse)

        stream = SimStream(stream_id=0)
        buffers: dict[str, DeviceBuffer] = {}
        node_results: dict[str, Relation] = {}
        spills = 0

        consumer_counts = self._consumer_counts(plan)

        # upload sources
        for src in plan.sources():
            if src.name not in sources:
                raise PlanError(f"no relation bound for source {src.name!r}")
            rel = sources[src.name]
            node_results[src.name] = rel
            buf = DeviceBuffer(src.name, rel, rel.nbytes,
                               refs_remaining=consumer_counts.get(src.name, 0))
            spills += self._make_room(buf.nbytes, buffers, stream)
            buf.handle = self.memory.alloc(buf.nbytes, src.name)
            if buf.nbytes > 0:
                stream.h2d(buf.nbytes, self.host_memory,
                           tag=f"input.{src.name}")
            buffers[src.name] = buf

        # execute regions in order
        for region in fusion.regions:
            self._ensure_inputs_resident(region, buffers, stream)
            out_rel = self._evaluate_region(region, node_results, sources)
            out_name = region.output_node.name
            node_results[out_name] = out_rel

            pinned = {inp.name for node in region.nodes for inp in node.inputs}
            buf = DeviceBuffer(out_name, out_rel, out_rel.nbytes,
                               refs_remaining=consumer_counts.get(out_name, 0))
            try:
                spills += self._make_room(buf.nbytes, buffers, stream, pinned)
                if buf.nbytes > 0:
                    buf.handle = self.memory.alloc(buf.nbytes, out_name)
            except DeviceOOMError:
                # the output cannot sit beside the region's (pinned) inputs:
                # stream it to the host as it is produced -- the paper's
                # forced round trip (SS III-A).  A consumer re-uploads it.
                if buf.nbytes > self.memory.capacity:
                    raise
                if buf.nbytes > 0:
                    stream.d2h(buf.nbytes, self.host_memory,
                               tag=f"spill.out.{out_name}")
                    spills += 1
            buffers[out_name] = buf

            self._emit_region_kernels(region, node_results, stream)
            self._release_consumed(region, buffers)

        # download sink results
        results: dict[str, Relation] = {}
        for sink in plan.sinks():
            rel = node_results[sink.name]
            results[sink.name] = rel
            if rel.nbytes > 0:
                stream.d2h(rel.nbytes, self.host_memory,
                           tag=f"output.{sink.name}")

        timeline = SimEngine(self.device).run([stream])
        # count spill round trips from the command log (a spill is a d2h;
        # re-upload is charged when the buffer is touched again)
        spill_events = [e for e in timeline.events if e.tag.startswith("spill")]
        return FunctionalRunResult(
            results=results, timeline=timeline, fusion=fusion,
            spill_count=len([e for e in spill_events
                             if e.kind is EventKind.D2H]),
            peak_device_bytes=self.memory.peak,
        )

    # -- memory management ------------------------------------------------
    def _make_room(self, nbytes: int, buffers: dict[str, DeviceBuffer],
                   stream: SimStream, pinned: set[str] | None = None) -> int:
        """Evict resident buffers (largest-first) until `nbytes` fits.

        Buffers named in `pinned` (the running region's inputs) are never
        evicted.  Returns the number of spills performed.  Raises
        DeviceOOMError if the allocation cannot fit even after evicting
        everything evictable.
        """
        pinned = pinned or set()
        if nbytes > self.memory.capacity:
            raise DeviceOOMError(nbytes, self.memory.available,
                                 self.memory.capacity)
        spills = 0
        while not self.memory.fits(nbytes):
            evictable = [b for b in buffers.values()
                         if b.resident and b.name not in pinned]
            candidates = [b for b in evictable if b.refs_remaining > 0]
            # prefer evicting what is still needed *latest*; here: largest
            candidates.sort(key=lambda b: -b.nbytes)
            victims = evictable
            if not victims:
                raise DeviceOOMError(nbytes, self.memory.available,
                                     self.memory.capacity)
            victim = (candidates or victims)[0]
            self.memory.free(victim.handle)
            victim.handle = None
            if victim.refs_remaining > 0:
                # still needed: a true round trip (device -> host now,
                # host -> device on next use)
                stream.d2h(victim.nbytes, self.host_memory,
                           tag=f"spill.out.{victim.name}")
                spills += 1
        return spills

    def _ensure_inputs_resident(self, region: Region,
                                buffers: dict[str, DeviceBuffer],
                                stream: SimStream) -> None:
        for node in region.nodes:
            for inp in node.inputs:
                buf = buffers.get(inp.name)
                if buf is not None and not buf.resident:
                    self._make_room(buf.nbytes, buffers, stream)
                    buf.handle = self.memory.alloc(buf.nbytes, buf.name)
                    if buf.nbytes > 0:
                        stream.h2d(buf.nbytes, self.host_memory,
                                   tag=f"spill.in.{buf.name}")

    def _release_consumed(self, region: Region,
                          buffers: dict[str, DeviceBuffer]) -> None:
        consumed: dict[str, int] = {}
        region_names = {n.name for n in region.nodes}
        for node in region.nodes:
            for inp in node.inputs:
                if inp.name not in region_names:
                    consumed[inp.name] = consumed.get(inp.name, 0) + 1
        for name, times in consumed.items():
            buf = buffers.get(name)
            if buf is None:
                continue
            buf.refs_remaining -= times
            if buf.refs_remaining <= 0 and buf.resident:
                self.memory.free(buf.handle)
                buf.handle = None

    @staticmethod
    def _consumer_counts(plan: Plan) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in plan.nodes:
            for inp in node.inputs:
                counts[inp.name] = counts.get(inp.name, 0) + 1
        for sink in plan.sinks():
            counts[sink.name] = counts.get(sink.name, 0)
        return counts

    # -- functional + timing per region ----------------------------------
    @staticmethod
    def _evaluate_region(region: Region, node_results: dict[str, Relation],
                         sources: dict[str, Relation]) -> Relation:
        out: Relation | None = None
        for node in region.nodes:
            out = _eval_node(node, node_results, sources)
            node_results[node.name] = out
        assert out is not None
        return out

    def _emit_region_kernels(self, region: Region,
                             node_results: dict[str, Relation],
                             stream: SimStream) -> None:
        first = region.nodes[0]
        primary = first.inputs[0] if first.inputs else first
        n_in = node_results[primary.name].num_rows
        if region.is_barrier_op:
            chain = chain_for_node(first, self.costs, n_in_hint=max(n_in, 2))
        else:
            chain = chain_for_region(region.nodes, self.costs)
        side_sizes = {
            getattr(n, "name", str(n)): node_results[n.name].num_rows
            for _, n in chain.side_kernels
        }
        for spec in chain.side_launch_specs(self.device, side_sizes):
            stream.kernel(spec, tag=spec.name)
        for spec in chain.main_launch_specs(max(n_in, 1), self.device):
            stream.kernel(spec, tag=spec.name)

"""The simulated-device *runtime*: functional execution + memory management.

Where :class:`repro.runtime.executor.Executor` times a plan from
cardinality annotations, this module actually *runs* it: every region
computes its real NumPy result, device memory is tracked byte-accurately
against the 6 GB budget, and when an allocation does not fit the runtime
spills a resident intermediate back to the host and re-uploads it on next
use -- the mechanism that makes *with round trip* a forced baseline in the
paper ("if the intermediate data is larger than the relatively small GPU
memory ... the intermediate data will have to be transferred back to the
CPU", SS III-A).

Because fusion eliminates intermediates, running the same plan fused under
memory pressure causes *fewer* spills -- benefit (a)/(b) of Fig 7, which
`benchmarks/bench_ablation_memory_pressure.py` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.cost import FusionCostModel
from ..core.fission import FissionConfig, plan_segments
from ..core.fusion import FusionResult, Region, fuse_plan
from ..core.opmodels import chain_for_node, chain_for_region
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..cpubase.select import cpu_select_time
from ..errors import DeviceOOMError, FaultError, PlanError
from ..faults import (FaultInjector, FaultPlan, as_injector, ladder_for,
                      spurious_oom)
from ..plans.interp import _eval_node, evaluate
from ..plans.plan import OpType, Plan, PlanNode
from ..ra.relation import Relation
from ..simgpu.compression import NONE, CompressionScheme
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import SimEngine, SimStream
from ..simgpu.memory import DeviceMemory
from ..simgpu.pcie import HostMemory
from ..simgpu.timeline import EventKind, Timeline
from ..streampool.pool import StreamPool

#: operators whose rows are independent of one another given their side
#: inputs, so a chain of them can stream segment-by-segment (fission)
STREAMABLE_OPS = frozenset({
    OpType.SELECT, OpType.PROJECT, OpType.ARITH,
    OpType.SEMI_JOIN, OpType.ANTI_JOIN,
})


def _concat_relations(parts: list[Relation]) -> Relation:
    """Row-wise concatenation preserving field order and key (used to
    re-assemble fission segment outputs in segment order)."""
    first = parts[0]
    if len(parts) == 1:
        return first
    cols = {f: np.concatenate([p.column(f) for p in parts])
            for f in first.fields}
    return Relation(cols, key=first.key)


@dataclass
class DeviceBuffer:
    """A relation materialized on the simulated device (or spilled)."""

    name: str
    relation: Relation
    nbytes: int
    handle: int | None = None       # DeviceMemory handle when resident
    refs_remaining: int = 0         # future consumers

    @property
    def resident(self) -> bool:
        return self.handle is not None


@dataclass
class FunctionalRunResult:
    """Functional answers + the simulated timeline that produced them."""

    results: dict[str, Relation]
    timeline: Timeline
    fusion: FusionResult
    spill_count: int
    peak_device_bytes: int
    #: execution mode that actually produced the answers, and -- when the
    #: fault-degradation ladder had to step down -- where it landed
    mode: str = "resident"
    degraded_to: str | None = None
    #: injector counters (zero when fault injection is off)
    faults_injected: int = 0
    retries: int = 0
    reissues: int = 0

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def roundtrip_time(self) -> float:
        return self.timeline.total_time(tag_prefix="spill")


class GpuRuntime:
    """Executes plans functionally on the simulated device.

    Parameters
    ----------
    device:
        The simulated GPU (its ``global_mem_bytes`` bounds residency).
    fuse:
        Apply the fusion pass before execution.
    memory_limit:
        Override the device-memory budget (for memory-pressure studies).
    mode:
        Execution mode: ``resident`` (default; intermediates stay on
        device), ``fission`` (segmented pipeline over pooled streams),
        ``compressed`` (sources upload compressed + decompress kernel),
        ``chunked`` (every intermediate eagerly staged to the host) or
        ``cpubase`` (host interpreter).  All modes produce identical
        tuples; only the simulated schedule differs.
    faults:
        A :class:`~repro.faults.FaultPlan` (or shared injector) the
        simulated engine honors; see docs/FAULTS.md.
    degrade:
        Fall back down the mode ladder (see
        :data:`repro.faults.LADDERS`) when repeated OOM / exhausted
        retries defeat the current mode.  ``None`` = degrade iff fault
        injection is enabled.
    """

    def __init__(self, device: DeviceSpec | None = None, fuse: bool = True,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS,
                 cost_model: FusionCostModel | None = None,
                 memory_limit: int | None = None,
                 host_memory: HostMemory = HostMemory.PINNED,
                 mode: str = "resident",
                 faults: "FaultPlan | FaultInjector | None" = None,
                 degrade: bool | None = None,
                 compression: CompressionScheme = NONE,
                 fission: FissionConfig = FissionConfig()):
        self.device = device or DeviceSpec()
        self.fuse = fuse
        self.costs = costs
        self.cost_model = cost_model
        self.memory = DeviceMemory(
            capacity=memory_limit if memory_limit is not None
            else self.device.global_mem_bytes)
        self.host_memory = host_memory
        ladder_for(mode)  # validates the name
        self.mode = mode
        self.faults = faults
        self.degrade = degrade
        self.compression = compression
        self.fission = fission

    # ------------------------------------------------------------------
    def run(self, plan: Plan, sources: dict[str, Relation]
            ) -> FunctionalRunResult:
        plan.validate()
        injector = as_injector(self.faults)
        degrade = self.degrade if self.degrade is not None else injector is not None
        modes = ladder_for(self.mode) if degrade else (self.mode,)
        last_err: Exception | None = None
        for mode in modes:
            try:
                result = self._run_mode(mode, plan, sources, injector)
            except (DeviceOOMError, FaultError) as err:
                last_err = err
                continue
            result.mode = mode
            if mode != self.mode:
                result.degraded_to = mode
            if injector is not None:
                result.faults_injected = injector.faults_injected
                result.retries = injector.retries
                result.reissues = injector.reissues
            return result
        assert last_err is not None
        raise last_err

    def _run_mode(self, mode: str, plan: Plan, sources: dict[str, Relation],
                  injector: FaultInjector | None) -> FunctionalRunResult:
        if mode == "resident":
            return self._run_resident(plan, sources, injector)
        if mode == "chunked":
            return self._run_resident(plan, sources, injector,
                                      eager_spill=True)
        if mode == "compressed":
            return self._run_resident(plan, sources, injector,
                                      compressed=True)
        if mode == "fission":
            return self._run_fission(plan, sources, injector)
        if mode == "cpubase":
            return self._run_cpubase(plan, sources, injector)
        raise ValueError(f"unknown execution mode {mode!r}")

    # -- resident / chunked / compressed -------------------------------
    def _run_resident(self, plan: Plan, sources: dict[str, Relation],
                      injector: FaultInjector | None = None,
                      eager_spill: bool = False,
                      compressed: bool = False) -> FunctionalRunResult:
        self.memory.reset()
        fusion = fuse_plan(plan, cost_model=self.cost_model, enable=self.fuse)

        stream = SimStream(stream_id=0)
        buffers: dict[str, DeviceBuffer] = {}
        node_results: dict[str, Relation] = {}
        spills = 0

        consumer_counts = self._consumer_counts(plan)

        # upload sources
        for src in plan.sources():
            if src.name not in sources:
                raise PlanError(f"no relation bound for source {src.name!r}")
            rel = sources[src.name]
            node_results[src.name] = rel
            buf = DeviceBuffer(src.name, rel, rel.nbytes,
                               refs_remaining=consumer_counts.get(src.name, 0))
            if injector is not None:
                spurious_oom(injector, f"alloc.{src.name}",
                             self.memory.capacity)
            spills += self._make_room(buf.nbytes, buffers, stream)
            buf.handle = self.memory.alloc(buf.nbytes, src.name)
            if buf.nbytes > 0:
                if compressed and self.compression.ratio > 1.0:
                    stream.h2d(self.compression.wire_bytes(buf.nbytes),
                               self.host_memory, tag=f"input.{src.name}")
                    rows = max(1, rel.num_rows)
                    stream.kernel(
                        self.compression.decompress_spec(
                            rows, max(1, buf.nbytes // rows), self.device),
                        tag=f"decompress.{src.name}")
                else:
                    stream.h2d(buf.nbytes, self.host_memory,
                               tag=f"input.{src.name}")
            buffers[src.name] = buf
        sink_names = {n.name for n in plan.sinks()}

        # execute regions in order
        for region in fusion.regions:
            self._ensure_inputs_resident(region, buffers, stream)
            out_rel = self._evaluate_region(region, node_results, sources)
            out_name = region.output_node.name
            node_results[out_name] = out_rel

            pinned = {inp.name for node in region.nodes for inp in node.inputs}
            buf = DeviceBuffer(out_name, out_rel, out_rel.nbytes,
                               refs_remaining=consumer_counts.get(out_name, 0))
            try:
                if injector is not None:
                    # an injected allocator hiccup on the output lands in
                    # the spill path below, same as a genuine OOM
                    spurious_oom(injector, f"alloc.{out_name}",
                                 self.memory.capacity)
                spills += self._make_room(buf.nbytes, buffers, stream, pinned)
                if buf.nbytes > 0:
                    buf.handle = self.memory.alloc(buf.nbytes, out_name)
            except DeviceOOMError:
                # the output cannot sit beside the region's (pinned) inputs:
                # stream it to the host as it is produced -- the paper's
                # forced round trip (SS III-A).  A consumer re-uploads it.
                if buf.nbytes > self.memory.capacity:
                    raise
                if buf.nbytes > 0:
                    stream.d2h(buf.nbytes, self.host_memory,
                               tag=f"spill.out.{out_name}")
                    spills += 1
            buffers[out_name] = buf

            self._emit_region_kernels(region, node_results, stream)
            if (eager_spill and buf.resident
                    and out_name not in sink_names):
                # chunked mode: intermediates never stay resident -- stage
                # each one straight back to the host so the device footprint
                # is one region's inputs + output at a time
                self.memory.free(buf.handle)
                buf.handle = None
                if buf.nbytes > 0:
                    stream.d2h(buf.nbytes, self.host_memory,
                               tag=f"spill.out.{out_name}")
                    spills += 1
            self._release_consumed(region, buffers)

        # download sink results
        results: dict[str, Relation] = {}
        for sink in plan.sinks():
            rel = node_results[sink.name]
            results[sink.name] = rel
            if rel.nbytes > 0:
                stream.d2h(rel.nbytes, self.host_memory,
                           tag=f"output.{sink.name}")

        timeline = SimEngine(self.device, faults=injector).run([stream])
        # count spill round trips from the command log (a spill is a d2h;
        # re-upload is charged when the buffer is touched again)
        spill_events = [e for e in timeline.events if e.tag.startswith("spill")]
        return FunctionalRunResult(
            results=results, timeline=timeline, fusion=fusion,
            spill_count=len([e for e in spill_events
                             if e.kind is EventKind.D2H]),
            peak_device_bytes=self.memory.peak,
        )

    # -- fission (segmented functional pipeline) ------------------------
    def _streamable_chain(self, plan: Plan
                          ) -> tuple[list[PlanNode] | None, PlanNode | None]:
        """The whole plan as one streamable chain, or ``(None, None)``.

        A plan streams when it is a single chain *source -> ops -> sink*
        of :data:`STREAMABLE_OPS` whose side inputs (semi/anti-join build
        sides) are plain sources: those operators treat every row
        independently, so evaluating the chain segment-by-segment and
        concatenating preserves the exact tuples.
        """
        sinks = plan.sinks()
        if len(sinks) != 1:
            return None, None
        chain: list[PlanNode] = []
        node = sinks[0]
        while node.op is not OpType.SOURCE:
            if node.op not in STREAMABLE_OPS or not node.inputs:
                return None, None
            if any(s.op is not OpType.SOURCE for s in node.inputs[1:]):
                return None, None
            chain.append(node)
            node = node.inputs[0]
        driver = node
        chain.reverse()
        if not chain:
            return None, None
        on_chain = ({n.name for n in chain} | {driver.name}
                    | {s.name for n in chain for s in n.inputs[1:]})
        if any(n.name not in on_chain for n in plan.nodes):
            return None, None
        return chain, driver

    def _run_fission(self, plan: Plan, sources: dict[str, Relation],
                     injector: FaultInjector | None) -> FunctionalRunResult:
        chain, driver = self._streamable_chain(plan)
        if chain is None:
            # barriers / wide joins cannot stream: resident execution is
            # the in-place fallback for non-streamable shapes
            return self._run_resident(plan, sources, injector)
        if driver.name not in sources:
            raise PlanError(f"no relation bound for source {driver.name!r}")
        driver_rel = sources[driver.name]
        n_rows = driver_rel.num_rows
        if n_rows == 0:
            return self._run_resident(plan, sources, injector)

        self.memory.reset()
        fusion = fuse_plan(plan, cost_model=self.cost_model, enable=self.fuse)
        sink = plan.sinks()[0]
        side_srcs: list[PlanNode] = []
        for node in chain:
            for s in node.inputs[1:]:
                if s.name not in {x.name for x in side_srcs}:
                    if s.name not in sources:
                        raise PlanError(
                            f"no relation bound for source {s.name!r}")
                    side_srcs.append(s)

        engine = SimEngine(self.device, faults=injector)
        pool = StreamPool(self.device, num_streams=self.fission.num_streams,
                          engine=engine)
        row_nbytes = max(1, driver_rel.nbytes // n_rows)
        segments = plan_segments(n_rows, row_nbytes, self.fission)

        # build-side uploads and build kernels run once, before the pipeline
        groups = [chain] if self.fuse else [[n] for n in chain]
        kchains = [chain_for_region(g, self.costs) for g in groups]
        pre = pool.streams[0]
        for s in side_srcs:
            rel = sources[s.name]
            if rel.nbytes > 0:
                pre.h2d(rel.nbytes, self.host_memory, tag=f"input.{s.name}")
        for kc in kchains:
            side_sizes = {getattr(n, "name", str(n)): sources[n.name].num_rows
                          for _, n in kc.side_kernels}
            for spec in kc.side_launch_specs(self.device, side_sizes):
                pre.kernel(spec, tag=spec.name)

        # each segment: slice -> evaluate -> H2D + kernels + D2H on a pooled
        # stream; the real result is recorded by the completion thunk, so
        # answers only exist if the schedule actually finished
        seg_results: dict[int, Relation] = {}
        for seg in segments:
            idx = np.arange(seg.start_row, seg.start_row + seg.n_rows)
            seg_in = driver_rel.take(idx)
            seg_nodes: dict[str, Relation] = {driver.name: seg_in}
            for s in side_srcs:
                seg_nodes[s.name] = sources[s.name]
            rows_in: dict[str, int] = {}
            out = seg_in
            for node in chain:
                rows_in[node.name] = seg_nodes[node.inputs[0].name].num_rows
                out = _eval_node(node, seg_nodes, sources)
                seg_nodes[node.name] = out

            ps = pool.streams[seg.index % pool.num_streams]
            if seg_in.nbytes > 0:
                ps.h2d(seg_in.nbytes, self.host_memory,
                       tag=f"input.{driver.name}.seg{seg.index}")
            for kc, grp in zip(kchains, groups):
                for spec in kc.main_launch_specs(
                        max(rows_in[grp[0].name], 1), self.device):
                    ps.kernel(spec, tag=f"{spec.name}.seg{seg.index}")
            if out.nbytes > 0:
                ps.d2h(out.nbytes, self.host_memory,
                       tag=f"output.{sink.name}.seg{seg.index}")
            last = ps.sim.commands[-1]
            prev = last.thunk

            def record(i=seg.index, r=out, prev=prev):
                if prev is not None:
                    prev()
                seg_results[i] = r

            last.thunk = record

        timeline = pool.wait_all()
        assert all(s.index in seg_results for s in segments)
        out_rel = _concat_relations([seg_results[s.index] for s in segments])

        # the host re-gathers out-of-order segment results (paper SS IV-C)
        gather = out_rel.nbytes / self.costs.host_gather_bw
        if gather > 0:
            t0 = timeline.end_time
            timeline.add(t0, t0 + gather, EventKind.HOST, "cpu_gather",
                         nbytes=out_rel.nbytes)
        return FunctionalRunResult(
            results={sink.name: out_rel}, timeline=timeline, fusion=fusion,
            spill_count=0, peak_device_bytes=self.memory.peak,
        )

    # -- cpubase (host interpreter) --------------------------------------
    def _run_cpubase(self, plan: Plan, sources: dict[str, Relation],
                     injector: FaultInjector | None) -> FunctionalRunResult:
        """Host fallback: the NumPy interpreter computes every node; the
        timeline is a single HOST event timed by the CPU calibration.  No
        device commands remain, so nothing is left to fault (slowdowns may
        still stretch the host event)."""
        self.memory.reset()
        fusion = fuse_plan(plan, cost_model=self.cost_model, enable=False)
        node_results = evaluate(plan, sources)
        duration = 0.0
        for node in plan.nodes:
            if node.op is OpType.SOURCE:
                continue
            prim = node.inputs[0] if node.inputs else node
            rel = node_results[prim.name]
            row = rel.row_nbytes if rel.num_rows else 4
            duration += cpu_select_time(rel.num_rows, max(1, row))
        stream = SimStream(stream_id=0)
        stream.host(duration, tag="cpubase")
        timeline = SimEngine(self.device, faults=injector).run([stream])
        results = {s.name: node_results[s.name] for s in plan.sinks()}
        return FunctionalRunResult(
            results=results, timeline=timeline, fusion=fusion,
            spill_count=0, peak_device_bytes=0,
        )

    # -- memory management ------------------------------------------------
    def _make_room(self, nbytes: int, buffers: dict[str, DeviceBuffer],
                   stream: SimStream, pinned: set[str] | None = None) -> int:
        """Evict resident buffers (largest-first) until `nbytes` fits.

        Buffers named in `pinned` (the running region's inputs) are never
        evicted.  Returns the number of spills performed.  Raises
        DeviceOOMError if the allocation cannot fit even after evicting
        everything evictable.
        """
        pinned = pinned or set()
        if nbytes > self.memory.capacity:
            raise DeviceOOMError(nbytes, self.memory.available,
                                 self.memory.capacity)
        spills = 0
        while not self.memory.fits(nbytes):
            evictable = [b for b in buffers.values()
                         if b.resident and b.name not in pinned]
            candidates = [b for b in evictable if b.refs_remaining > 0]
            # prefer evicting what is still needed *latest*; here: largest
            candidates.sort(key=lambda b: -b.nbytes)
            victims = evictable
            if not victims:
                raise DeviceOOMError(nbytes, self.memory.available,
                                     self.memory.capacity)
            victim = (candidates or victims)[0]
            self.memory.free(victim.handle)
            victim.handle = None
            if victim.refs_remaining > 0:
                # still needed: a true round trip (device -> host now,
                # host -> device on next use)
                stream.d2h(victim.nbytes, self.host_memory,
                           tag=f"spill.out.{victim.name}")
                spills += 1
        return spills

    def _ensure_inputs_resident(self, region: Region,
                                buffers: dict[str, DeviceBuffer],
                                stream: SimStream) -> None:
        for node in region.nodes:
            for inp in node.inputs:
                buf = buffers.get(inp.name)
                if buf is not None and not buf.resident:
                    self._make_room(buf.nbytes, buffers, stream)
                    buf.handle = self.memory.alloc(buf.nbytes, buf.name)
                    if buf.nbytes > 0:
                        stream.h2d(buf.nbytes, self.host_memory,
                                   tag=f"spill.in.{buf.name}")

    def _release_consumed(self, region: Region,
                          buffers: dict[str, DeviceBuffer]) -> None:
        consumed: dict[str, int] = {}
        region_names = {n.name for n in region.nodes}
        for node in region.nodes:
            for inp in node.inputs:
                if inp.name not in region_names:
                    consumed[inp.name] = consumed.get(inp.name, 0) + 1
        for name, times in consumed.items():
            buf = buffers.get(name)
            if buf is None:
                continue
            buf.refs_remaining -= times
            if buf.refs_remaining <= 0 and buf.resident:
                self.memory.free(buf.handle)
                buf.handle = None

    @staticmethod
    def _consumer_counts(plan: Plan) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in plan.nodes:
            for inp in node.inputs:
                counts[inp.name] = counts.get(inp.name, 0) + 1
        for sink in plan.sinks():
            counts[sink.name] = counts.get(sink.name, 0)
        return counts

    # -- functional + timing per region ----------------------------------
    @staticmethod
    def _evaluate_region(region: Region, node_results: dict[str, Relation],
                         sources: dict[str, Relation]) -> Relation:
        out: Relation | None = None
        for node in region.nodes:
            out = _eval_node(node, node_results, sources)
            node_results[node.name] = out
        assert out is not None
        return out

    def _emit_region_kernels(self, region: Region,
                             node_results: dict[str, Relation],
                             stream: SimStream) -> None:
        first = region.nodes[0]
        primary = first.inputs[0] if first.inputs else first
        n_in = node_results[primary.name].num_rows
        if region.is_barrier_op:
            chain = chain_for_node(first, self.costs, n_in_hint=max(n_in, 2))
        else:
            chain = chain_for_region(region.nodes, self.costs)
        side_sizes = {
            getattr(n, "name", str(n)): node_results[n.name].num_rows
            for _, n in chain.side_kernels
        }
        for spec in chain.side_launch_specs(self.device, side_sizes):
            stream.kernel(spec, tag=spec.name)
        for spec in chain.main_launch_specs(max(n_in, 1), self.device):
            stream.kernel(spec, tag=spec.name)

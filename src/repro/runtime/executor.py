"""The plan executor: runs a logical plan on the simulated platform under a
chosen strategy and returns a timeline + derived metrics.

Responsibilities:

* lower the plan through the fusion pass (or the unfused baseline),
* schedule transfers per strategy (round trips / resident intermediates /
  fission pipelining),
* chunk execution when the working set exceeds the 6 GB device memory
  (the regime of Fig 14 / Fig 16),
* account every simulated event in a :class:`repro.simgpu.timeline.Timeline`.

The executor is *timing only*: functional results come from
:mod:`repro.plans.interp`, which the tests cross-check against the fused
lowering's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.cost import FusionCostModel
from ..core.fission import FissionConfig, Segment, run_fissioned
from ..core.fusion import FusionResult, Region, fuse_plan
from ..core.opmodels import chain_for_node, chain_for_region, out_row_nbytes
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams
from ..cpubase.select import cpu_select_time
from ..errors import DeviceOOMError, FaultError, PlanError
from ..faults import FaultInjector, FaultPlan, as_injector, spurious_oom
from ..plans.plan import OpType, Plan, PlanNode
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import SimEngine, SimStream
from ..simgpu.pcie import HostMemory
from ..simgpu.timeline import EventKind, Timeline
from .sizes import estimate_sizes
from .strategies import ExecutionConfig, Strategy


@dataclass
class RunResult:
    """Timeline plus derived metrics of one simulated execution."""

    strategy: Strategy
    timeline: Timeline
    sizes: dict[str, int]
    n_in: int
    n_out: int
    input_bytes: float
    output_bytes: float
    fusion: FusionResult | None = None
    num_chunks: int = 1
    #: executor-side estimates of total bytes each PCIe direction should
    #: move; the schedule sanitizer checks the timeline against these
    expected_h2d_bytes: float | None = None
    expected_d2h_bytes: float | None = None
    #: recovery bookkeeping (populated when fault injection is enabled,
    #: see :mod:`repro.faults`): the strategy actually executed when
    #: repeated faults forced a fallback, and injector counters
    degraded_to: str | None = None
    faults_injected: int = 0
    retries: int = 0
    reissues: int = 0
    #: merged :meth:`~repro.analyze.diagnostics.AnalysisReport.summary`
    #: of the static pre-flight (populated when ``analyze=True``)
    analysis: dict | None = None

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def throughput(self) -> float:
        """Input bytes processed per second of end-to-end simulated time."""
        return self.input_bytes / self.makespan if self.makespan > 0 else 0.0

    @property
    def compute_time(self) -> float:
        return self.timeline.total_time(EventKind.KERNEL)

    @property
    def io_time(self) -> float:
        """Initial-input + final-output transfer time (serial sum)."""
        return (self.timeline.total_time(tag_prefix="input")
                + self.timeline.total_time(tag_prefix="output"))

    @property
    def roundtrip_time(self) -> float:
        """Time moving intermediate results host<->device (serial sum)."""
        return self.timeline.total_time(tag_prefix="roundtrip")

    @property
    def host_time(self) -> float:
        return self.timeline.total_time(EventKind.HOST)

    def kernel_times(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for ev in self.timeline.filter(EventKind.KERNEL):
            out[ev.tag] = out.get(ev.tag, 0.0) + ev.duration
        return out


@dataclass
class _LoweredRegion:
    region: Region
    chain: object  # KernelChain
    n_in: int
    n_out: int
    in_bytes: float
    out_bytes: float
    primary_input: PlanNode


class Executor:
    """Runs plans on a simulated device under an :class:`ExecutionConfig`."""

    def __init__(self, device: DeviceSpec | None = None,
                 costs: StageCostParams = DEFAULT_STAGE_COSTS,
                 cost_model: FusionCostModel | None = None,
                 check: bool = False,
                 faults: "FaultPlan | FaultInjector | None" = None,
                 degrade: bool | None = None,
                 analyze: bool = False,
                 plan_cache=None):
        self.device = device or DeviceSpec()
        self.costs = costs
        self.cost_model = cost_model
        #: strict mode: sanitize every schedule this executor produces and
        #: raise ScheduleInvariantError at the first violation
        self.check = check
        #: static pre-flight (see :mod:`repro.analyze`): lint the plan,
        #: verify fusion legality, and race-check the serial stream program
        #: before dispatch; error findings raise AnalysisError
        self.analyze = analyze
        self._analysis_reports: list = []
        #: fault-injection plan/injector honored by every simulated engine
        #: this executor drives (see :mod:`repro.faults`)
        self.faults = faults
        #: fall back through cheaper strategies when faults keep winning;
        #: None means "degrade iff faults are enabled"
        self.degrade = degrade
        self._injector: FaultInjector | None = None
        #: content-addressed compiled-plan cache
        #: (:class:`repro.optimizer.plancache.PlanCache`): size estimation,
        #: fusion, and their static pre-flight are reused across runs of
        #: the same (plan, stats, strategy) on the same calibration
        self.plan_cache = plan_cache
        self._device_fp: str | None = None

    # ------------------------------------------------------------------
    def _analyzer(self):
        from ..analyze import Analyzer
        return Analyzer(self.device, self.costs)

    def _calibration_fp(self) -> str:
        if self._device_fp is None:
            from ..optimizer.fingerprint import calibration_fingerprint
            self._device_fp = calibration_fingerprint(self.device)
        return self._device_fp

    def _compiled(self, plan: Plan, source_rows: dict[str, int] | None,
                  config: ExecutionConfig):
        """Size estimation + fusion (+ the fusion pre-flight), cached by
        content.  Cache hits verify the stored plan is the *same object*:
        the scheduler compares plan nodes by identity, so a fusion result
        is only reusable for the plan object that produced it."""
        cache = self.plan_cache
        key = None
        if cache is not None:
            from ..optimizer.fingerprint import plan_fingerprint
            key = cache.key(
                "compiled", plan_fingerprint(plan), source_rows or {},
                self._calibration_fp(), config.strategy.value,
                self.cost_model is not None, self.analyze)
            hit = cache.get(key)
            if hit is not None and hit[0] is plan:
                _, sizes, fusion, reports = hit
                self._analysis_reports.extend(reports)
                return sizes, fusion
        sizes = estimate_sizes(plan, source_rows or {})
        fusion = fuse_plan(
            plan,
            cost_model=self.cost_model if config.strategy.uses_fusion else None,
            enable=config.strategy.uses_fusion,
        )
        reports: list = []
        if self.analyze:
            reports.append(self._analyzer().run(fusion, strict=True))
            self._analysis_reports.extend(reports)
        if cache is not None:
            cache.put(key, (plan, sizes, fusion, reports))
        return sizes, fusion

    def run(self, plan: Plan, source_rows: dict[str, int] | None = None,
            config: ExecutionConfig = ExecutionConfig()) -> RunResult:
        plan.validate()
        self._analysis_reports = []
        if self.analyze:
            self._analysis_reports.append(
                self._analyzer().run(plan, strict=True))
            self._memory_preflight(plan, source_rows, config)
        injector = as_injector(self.faults)
        degrade = self.degrade if self.degrade is not None else injector is not None
        steps = (self._strategy_ladder(config.strategy) if degrade
                 else [config.strategy])
        last_err: Exception | None = None
        for step in steps:
            try:
                result = self._run_once(plan, source_rows, config, step,
                                        injector)
            except (DeviceOOMError, FaultError) as err:
                last_err = err
                continue
            if step is not config.strategy:
                result.degraded_to = step if isinstance(step, str) else step.value
            if injector is not None:
                result.faults_injected = injector.faults_injected
                result.retries = injector.retries
                result.reissues = injector.reissues
            if self.check:
                from ..validate import validate_run
                validate_run(result, self.device).raise_if_failed()
            if self.analyze and self._analysis_reports:
                from ..analyze import AnalysisReport
                merged = AnalysisReport()
                for rep in self._analysis_reports:
                    merged.merge(rep)
                result.analysis = merged.summary()
            return result
        assert last_err is not None
        raise last_err

    def _memory_preflight(self, plan: Plan,
                          source_rows: dict[str, int] | None,
                          config: ExecutionConfig) -> None:
        """Refuse certain-OOM dispatch: vet the configured strategy's
        peak-footprint interval against this device before lowering
        anything.  A MEM701 verdict raises AnalysisError; MEM703/MEM706
        land in the run's analysis summary."""
        from ..analyze.memory_check import MemoryTarget
        fusion = None
        if self.cost_model is not None and config.strategy.uses_fusion:
            # vet the exact regions this executor will dispatch
            fusion = fuse_plan(plan, cost_model=self.cost_model,
                               enable=True)
        target = MemoryTarget(plan, source_rows,
                              strategies=(config.strategy,),
                              memory_safety=config.memory_safety,
                              device=self.device, fusion=fusion)
        self._analysis_reports.append(
            self._analyzer().run(target, strict=True))

    @staticmethod
    def _strategy_ladder(strategy: Strategy) -> list:
        """Fallback chain under repeated faults: pipelined strategies retreat
        to serial resident execution, then to forced round trips (minimal
        device footprint), then to the host baseline, which cannot fault."""
        ladder: list = [strategy]
        if strategy.uses_fission:
            ladder.append(Strategy.FUSED if strategy.uses_fusion
                          else Strategy.SERIAL)
        if strategy is not Strategy.WITH_ROUND_TRIP:
            ladder.append(Strategy.WITH_ROUND_TRIP)
        ladder.append("cpubase")
        return ladder

    def _run_once(self, plan: Plan, source_rows: dict[str, int] | None,
                  config: ExecutionConfig, step,
                  injector: FaultInjector | None) -> RunResult:
        if step == "cpubase":
            return self._run_cpubase(plan, source_rows, config)
        config = config if step is config.strategy else replace(
            config, strategy=step)
        if injector is not None:
            # a spurious allocator failure here models the device refusing
            # the strategy's working set outright
            spurious_oom(injector, f"exec.{config.strategy.value}",
                         self.device.global_mem_bytes)
        self._injector = injector
        sizes, fusion = self._compiled(plan, source_rows, config)
        lowered = self._lower(plan, fusion, sizes)
        driver = self._driver_source(plan, sizes)

        n_in = sizes[driver.name]
        input_bytes = float(n_in) * out_row_nbytes(driver)
        sink_names = {n.name for n in plan.sinks()}
        output_bytes = sum(
            float(sizes[lr.region.output_node.name])
            * out_row_nbytes(lr.region.output_node)
            for lr in lowered if lr.region.output_node.name in sink_names
        )
        n_out = sum(sizes[n.name] for n in plan.sinks())

        self._last_expected: tuple[float, float] | None = None
        if config.strategy.uses_fission and config.include_transfers:
            timeline = self._run_fission(plan, lowered, sizes, driver, config)
        else:
            timeline = self._run_serial(plan, lowered, sizes, driver, config)

        expected = self._last_expected
        result = RunResult(
            strategy=config.strategy, timeline=timeline, sizes=sizes,
            n_in=n_in, n_out=n_out, input_bytes=input_bytes,
            output_bytes=output_bytes, fusion=fusion,
            num_chunks=getattr(self, "_last_num_chunks", 1),
            expected_h2d_bytes=expected[0] if expected else None,
            expected_d2h_bytes=expected[1] if expected else None,
        )
        return result

    def run_cpubase(self, plan: Plan,
                    source_rows: dict[str, int] | None = None) -> RunResult:
        """Run the host-interpreter baseline as a first-class strategy
        (the optimizer's CPU side of the CPU-vs-GPU crossover), not just
        the degradation ladder's last rung."""
        plan.validate()
        return self._run_cpubase(plan, source_rows, ExecutionConfig())

    def _run_cpubase(self, plan: Plan, source_rows: dict[str, int] | None,
                     config: ExecutionConfig) -> RunResult:
        """Host-interpreter fallback timeline: every operator runs on the
        CPU (one pass per node, timed by the CPU calibration), so there is
        no device command left for fault injection to break."""
        sizes = estimate_sizes(plan, source_rows or {})
        driver = self._driver_source(plan, sizes)
        duration = 0.0
        for node in plan.nodes:
            if node.op is OpType.SOURCE:
                continue
            prim = node.inputs[0] if node.inputs else node
            duration += cpu_select_time(sizes[prim.name], out_row_nbytes(prim))
        timeline = Timeline()
        timeline.add(0.0, duration, EventKind.HOST, "cpubase")

        n_in = sizes[driver.name]
        output_bytes = sum(float(sizes[n.name]) * out_row_nbytes(n)
                           for n in plan.sinks())
        self._last_num_chunks = 1
        return RunResult(
            strategy=config.strategy, timeline=timeline, sizes=sizes,
            n_in=n_in, n_out=sum(sizes[n.name] for n in plan.sinks()),
            input_bytes=float(n_in) * out_row_nbytes(driver),
            output_bytes=output_bytes, fusion=None, num_chunks=1,
        )

    # -- lowering ----------------------------------------------------------
    def _lower(self, plan: Plan, fusion: FusionResult, sizes: dict[str, int]
               ) -> list[_LoweredRegion]:
        lowered: list[_LoweredRegion] = []
        for region in fusion.regions:
            first = region.nodes[0]
            primary = first.inputs[0] if first.inputs else first
            n_in = sizes[primary.name]
            if region.is_barrier_op:
                chain = chain_for_node(first, self.costs, n_in_hint=max(n_in, 2))
            else:
                chain = chain_for_region(region.nodes, self.costs)
            out_node = region.output_node
            n_out = sizes[out_node.name]
            lowered.append(_LoweredRegion(
                region=region, chain=chain, n_in=n_in, n_out=n_out,
                in_bytes=float(n_in) * out_row_nbytes(primary),
                out_bytes=float(n_out) * out_row_nbytes(out_node),
                primary_input=primary,
            ))
        return lowered

    @staticmethod
    def _driver_source(plan: Plan, sizes: dict[str, int]) -> PlanNode:
        sources = plan.sources()
        if not sources:
            raise PlanError("plan has no sources")
        return max(sources, key=lambda s: sizes[s.name])

    # -- serial / round-trip execution ------------------------------------------
    def _run_serial(self, plan: Plan, lowered: list[_LoweredRegion],
                    sizes: dict[str, int], driver: PlanNode,
                    config: ExecutionConfig) -> Timeline:
        engine = SimEngine(self.device, check=self.check,
                           faults=self._injector)
        num_chunks = 1
        if config.include_transfers:
            num_chunks = self._plan_chunks(plan, lowered, sizes, driver, config)
        self._last_num_chunks = num_chunks

        stream = SimStream(stream_id=0)
        mem = config.memory
        sink_names = {n.name for n in plan.sinks()}
        self._last_expected = self._expected_serial_bytes(
            plan, lowered, sizes, sink_names, config)

        # side (non-driver) sources are loaded once, up front
        if config.include_transfers:
            for src in plan.sources():
                if src is driver:
                    continue
                nbytes = float(sizes[src.name]) * out_row_nbytes(src)
                if nbytes > 0:
                    stream.h2d(nbytes, mem, tag=f"input.{src.name}",
                               writes=(src.name,))

        for chunk in range(num_chunks):
            frac = self._chunk_fraction(chunk, num_chunks)
            if config.include_transfers:
                stream.h2d(float(sizes[driver.name]) * out_row_nbytes(driver) * frac,
                           mem, tag=f"input.{driver.name}.c{chunk}",
                           writes=(driver.name,))
            for lr in lowered:
                scales = self._scales_with_driver(lr, driver, plan)
                runs_this_chunk = chunk == 0 or scales
                chunk_frac = frac if scales else 1.0
                if not runs_this_chunk:
                    continue
                side_reads = self._region_side_inputs(lr)
                out_name = lr.region.output_node.name
                if chunk == 0:  # build kernels run once, not per chunk
                    side_sizes = {getattr(n, "name", str(n)): sizes[n.name]
                                  for _, n in lr.chain.side_kernels}
                    for spec in lr.chain.side_launch_specs(self.device, side_sizes):
                        stream.kernel(spec, tag=spec.name, reads=side_reads,
                                      writes=(f"{lr.region.name}.build",))
                main_reads = (lr.primary_input.name,)
                if lr.chain.side_kernels:
                    main_reads += (f"{lr.region.name}.build",)
                else:
                    main_reads += side_reads  # e.g. gather joins: no build
                n_region_in = max(1, int(round(lr.n_in * chunk_frac)))
                for spec in lr.chain.main_launch_specs(n_region_in, self.device):
                    stream.kernel(spec, tag=spec.name, reads=main_reads,
                                  writes=(out_name,))
                # round trip: stage each intermediate (non-sink) result out/in
                if (config.strategy is Strategy.WITH_ROUND_TRIP
                        and config.include_transfers
                        and lr.region.output_node.name not in sink_names):
                    nbytes = lr.out_bytes * chunk_frac
                    if nbytes > 0:
                        stream.d2h(nbytes, config.roundtrip_memory,
                                   tag=f"roundtrip.out.{lr.region.name}",
                                   reads=(out_name,))
                        stream.h2d(nbytes, config.roundtrip_memory,
                                   tag=f"roundtrip.in.{lr.region.name}",
                                   writes=(out_name,))
            if config.include_transfers:
                for lr in lowered:
                    if lr.region.output_node.name in sink_names and lr.out_bytes > 0:
                        scales = self._scales_with_driver(lr, driver, plan)
                        if chunk > 0 and not scales:
                            continue
                        chunk_frac = frac if scales else 1.0
                        stream.d2h(lr.out_bytes * chunk_frac, mem,
                                   tag=f"output.{lr.region.name}.c{chunk}",
                                   reads=(lr.region.output_node.name,))

        if self.analyze and config.include_transfers:
            # transfers off means sources are never "written", which would
            # false-positive the use-before-upload check -- skip then
            self._analysis_reports.append(
                self._analyzer().run([stream], unit=f"serial.{plan.name}",
                                     strict=True))
        return engine.run([stream])

    @staticmethod
    def _region_side_inputs(lr: _LoweredRegion) -> tuple[str, ...]:
        """Plan-level buffers a region consumes besides its primary input."""
        in_region = {id(n) for n in lr.region.nodes}
        out: list[str] = []
        for node in lr.region.nodes:
            for inp in node.inputs[1:]:
                if id(inp) not in in_region and inp.name not in out:
                    out.append(inp.name)
        return tuple(out)

    def _chunk_fraction(self, chunk: int, num_chunks: int) -> float:
        return 1.0 / num_chunks

    def _expected_serial_bytes(self, plan: Plan, lowered: list[_LoweredRegion],
                               sizes: dict[str, int], sink_names: set[str],
                               config: ExecutionConfig) -> tuple[float, float]:
        """(H2D, D2H) bytes the serial schedule should move in total."""
        if not config.include_transfers:
            return (0.0, 0.0)
        h2d = sum(float(sizes[s.name]) * out_row_nbytes(s)
                  for s in plan.sources())
        d2h = 0.0
        for lr in lowered:
            if lr.region.output_node.name in sink_names:
                d2h += lr.out_bytes
            elif (config.strategy is Strategy.WITH_ROUND_TRIP
                  and lr.out_bytes > 0):
                h2d += lr.out_bytes
                d2h += lr.out_bytes
        return (h2d, d2h)

    @staticmethod
    def _scales_with_driver(lr: _LoweredRegion, driver: PlanNode, plan: Plan) -> bool:
        """Does this region's size scale when the driver input is chunked?

        True when the region (transitively, through any input edge) consumes
        the driver source; False for driver-independent regions -- e.g. a
        side-table select -- which run exactly once regardless of chunking.
        """
        stack = [lr.primary_input]
        stack.extend(inp for node in lr.region.nodes for inp in node.inputs)
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node is driver:
                return True
            stack.extend(node.inputs)
        return False

    @staticmethod
    def _co_driver_sources(prefix: list[_LoweredRegion], driver: PlanNode,
                           sizes: dict[str, int]) -> list[PlanNode]:
        """Sources that must stream with the driver: column arrays read
        positionally by gather joins inside the pipelined prefix."""
        out: list[PlanNode] = []
        for lr in prefix:
            for node in lr.region.nodes:
                if (node.op is OpType.JOIN and node.params.get("gather")
                        and len(node.inputs) > 1
                        and node.inputs[1].op is OpType.SOURCE
                        and sizes[node.inputs[1].name] == sizes[driver.name]
                        and node.inputs[1] is not driver):
                    out.append(node.inputs[1])
        return out

    def _plan_chunks(self, plan: Plan, lowered: list[_LoweredRegion],
                     sizes: dict[str, int], driver: PlanNode,
                     config: ExecutionConfig) -> int:
        """How many chunks are needed for the working set to fit on device."""
        budget = self.device.global_mem_bytes * config.memory_safety
        side_bytes = sum(
            float(sizes[s.name]) * out_row_nbytes(s)
            for s in plan.sources() if s is not driver
        )
        budget -= side_bytes
        if budget <= 0:
            # side inputs alone exceed the chunking budget: report the
            # budget actually available, not the raw capacity
            raise DeviceOOMError(
                int(side_bytes),
                int(self.device.global_mem_bytes * config.memory_safety),
                self.device.global_mem_bytes)
        driver_bytes = float(sizes[driver.name]) * out_row_nbytes(driver)
        # working set: input + every region's live output
        working = driver_bytes + sum(lr.out_bytes for lr in lowered)
        if working <= budget:
            return 1
        for lr in lowered:
            if lr.region.is_barrier_op:
                raise DeviceOOMError(
                    int(working), int(budget), self.device.global_mem_bytes)
        import math
        return int(math.ceil(working / budget))

    # -- fission execution --------------------------------------------------------
    def _run_fission(self, plan: Plan, lowered: list[_LoweredRegion],
                     sizes: dict[str, int], driver: PlanNode,
                     config: ExecutionConfig) -> Timeline:
        self._last_num_chunks = 1
        prefix, phase_a, rest = self._split_for_fission(lowered, driver)
        if not prefix:
            # nothing to pipeline -- degenerate to serial with pinned memory
            serial_cfg = ExecutionConfig(
                strategy=Strategy.SERIAL, memory=config.memory,
                include_transfers=config.include_transfers)
            return self._run_serial(plan, lowered, sizes, driver, serial_cfg)

        timeline = Timeline()
        engine = SimEngine(self.device, check=self.check,
                           faults=self._injector)
        mem_pinned = HostMemory.PINNED

        # column arrays consumed positionally by gather joins in the prefix
        # stream with the driver, segment by segment (Q1's six columns)
        co_drivers = self._co_driver_sources(prefix, driver, sizes)

        # phase A: load side sources, run driver-independent regions, and
        # run the prefix's build kernels once
        sink_names = {n.name for n in plan.sinks()}
        pre = SimStream(stream_id=0)
        for src in plan.sources():
            if src is driver or src in co_drivers:
                continue
            nbytes = float(sizes[src.name]) * out_row_nbytes(src)
            if nbytes > 0:
                pre.h2d(nbytes, mem_pinned, tag=f"input.{src.name}")
        for lr in phase_a:
            self._emit_region(pre, lr, sizes, sink_names, mem_pinned)
        for lr in prefix:
            side_sizes = {getattr(n, "name", str(n)): sizes[n.name]
                          for _, n in lr.chain.side_kernels}
            for spec in lr.chain.side_launch_specs(self.device, side_sizes):
                pre.kernel(spec, tag=spec.name)
        if pre.commands:
            timeline = engine.run([pre])

        # phase B: pipelined segments over the driver input
        whole_plan_is_prefix = not rest and len(plan.sinks()) == 1
        prefix_sel = 1.0
        for lr in prefix:
            prefix_sel *= lr.region.selectivity
        out_node = prefix[-1].region.output_node
        out_row = out_row_nbytes(out_node)
        n_driver = sizes[driver.name]

        def kernel_builder(seg: Segment):
            specs = []
            seg_frac = seg.n_rows / max(n_driver, 1)
            for lr in prefix:
                n_seg_in = max(1, int(round(lr.n_in * seg_frac)))
                specs.extend(lr.chain.main_launch_specs(n_seg_in, self.device))
            return specs

        fis_cfg = config.fission
        if not whole_plan_is_prefix:
            # results stay on device for the barrier stage: no per-segment
            # upload and no host gather
            fis_cfg = FissionConfig(
                num_streams=fis_cfg.num_streams,
                target_segment_bytes=fis_cfg.target_segment_bytes,
                min_segments=fis_cfg.min_segments,
                max_segments=fis_cfg.max_segments,
                memory=fis_cfg.memory,
                host_gather=False,
            )

        pipeline_in_row = (out_row_nbytes(driver)
                           + sum(out_row_nbytes(s) for s in co_drivers))
        pipe_tl = run_fissioned(
            self.device,
            n_rows=n_driver,
            in_row_nbytes=pipeline_in_row,
            out_row_nbytes=out_row if whole_plan_is_prefix else 0,
            output_selectivity=prefix_sel if whole_plan_is_prefix else 0.0,
            kernel_builder=kernel_builder,
            config=fis_cfg,
            engine=SimEngine(self.device, check=self.check,
                             faults=self._injector),
            costs=self.costs,
        )
        timeline.extend(pipe_tl, offset=timeline.end_time)

        # phase C: the remaining (driver-dependent / barrier-bound) regions
        if rest:
            post = SimStream(stream_id=0)
            for lr in rest:
                self._emit_region(post, lr, sizes, sink_names, mem_pinned)
            post_tl = SimEngine(self.device, check=self.check,
                                faults=self._injector).run([post])
            timeline.extend(post_tl, offset=timeline.end_time)

        expected_h2d = sum(float(sizes[s.name]) * out_row_nbytes(s)
                           for s in plan.sources())
        expected_d2h = sum(
            lr.out_bytes for lr in [*phase_a, *rest]
            if lr.region.output_node.name in sink_names)
        if whole_plan_is_prefix:
            expected_d2h += float(n_driver) * prefix_sel * out_row
        self._last_expected = (expected_h2d, expected_d2h)
        return timeline

    def _emit_region(self, stream: SimStream, lr: _LoweredRegion,
                     sizes: dict[str, int], sink_names: set[str],
                     mem: HostMemory) -> None:
        """Queue one region's kernels (and sink upload) onto a stream."""
        side_sizes = {getattr(n, "name", str(n)): sizes[n.name]
                      for _, n in lr.chain.side_kernels}
        for spec in lr.chain.side_launch_specs(self.device, side_sizes):
            stream.kernel(spec, tag=spec.name)
        for spec in lr.chain.main_launch_specs(lr.n_in, self.device):
            stream.kernel(spec, tag=spec.name)
        if lr.region.output_node.name in sink_names and lr.out_bytes > 0:
            stream.d2h(lr.out_bytes, mem, tag=f"output.{lr.region.name}")

    def _split_for_fission(self, lowered: list[_LoweredRegion],
                           driver: PlanNode
                           ) -> tuple[list[_LoweredRegion], list[_LoweredRegion],
                                      list[_LoweredRegion]]:
        """Partition regions into (pipeline prefix, phase A, phase C).

        The prefix is the maximal chain of non-barrier regions starting at
        the first region whose primary input is the driver source, where
        each region's side inputs are computable *before* the driver
        arrives (driver-independent).  Phase A holds driver-independent
        regions that must run before the pipeline (e.g. dimension-table
        selects feeding the prefix's build kernels); phase C everything
        else, in order.
        """
        # which regions (by node-name of output) depend on the driver
        driver_dep: set[str] = set()
        produced_by: dict[str, _LoweredRegion] = {}
        for lr in lowered:
            for node in lr.region.nodes:
                produced_by[node.name] = lr
        for lr in lowered:
            dep = False
            for node in lr.region.nodes:
                for inp in node.inputs:
                    if inp is driver or inp.name in driver_dep:
                        dep = True
            if dep:
                driver_dep.update(n.name for n in lr.region.nodes)

        def side_inputs_independent(lr: _LoweredRegion) -> bool:
            for node in lr.region.nodes:
                for inp in node.inputs[1:]:
                    if inp is driver or inp.name in driver_dep:
                        return False
            return True

        prefix: list[_LoweredRegion] = []
        phase_a: list[_LoweredRegion] = []
        rest: list[_LoweredRegion] = []
        expect: PlanNode | None = None
        started = False
        done = False
        for lr in lowered:
            if done:
                rest.append(lr)
                continue
            if not started:
                if (lr.primary_input is driver and not lr.region.is_barrier_op
                        and side_inputs_independent(lr)):
                    started = True
                    prefix.append(lr)
                    expect = lr.region.output_node
                elif lr.region.output_node.name in driver_dep:
                    rest.append(lr)   # driver-dependent, can't run early
                else:
                    phase_a.append(lr)
                continue
            if (not lr.region.is_barrier_op and lr.primary_input is expect
                    and side_inputs_independent(lr)):
                prefix.append(lr)
                expect = lr.region.output_node
            else:
                done = True
                rest.append(lr)
        return prefix, phase_a, rest

"""Builders for the paper's SELECT-chain microbenchmarks.

The evaluation sections III-B and IV use chains of back-to-back SELECT
operators over randomly generated 32-bit integers ("compressed row data").
This module provides the canonical plan builder and convenience runners
used by the Fig 4/8/9/10/11/14/16 benchmarks.
"""

from __future__ import annotations

from ..plans.plan import Plan, PlanNode
from ..ra.expr import Field
from ..simgpu.device import DeviceSpec
from .executor import Executor, RunResult
from .strategies import ExecutionConfig, Strategy

#: the microbenchmarks filter 32-bit integers; threshold chosen per
#: selectivity over a uniform [0, 2^31) distribution
INT_ROW_BYTES = 4


def select_chain_plan(num_selects: int, selectivity: float = 0.5,
                      row_nbytes: int = INT_ROW_BYTES) -> Plan:
    """A chain: source -> SELECT -> SELECT -> ... (num_selects times).

    Each SELECT passes `selectivity` of its input (the paper's default is
    50%, so two SELECTs keep 25% of the original data).
    """
    if num_selects < 1:
        raise ValueError("need at least one SELECT")
    plan = Plan(name=f"select_chain_{num_selects}")
    node: PlanNode = plan.source("input", row_nbytes=row_nbytes)
    threshold = int(selectivity * (2 ** 31))
    for i in range(num_selects):
        node = plan.select(node, Field("value") < threshold,
                           selectivity=selectivity, name=f"select{i}")
    return plan


def run_select_chain(
    n_elements: int,
    num_selects: int = 2,
    selectivity: float = 0.5,
    strategy: Strategy = Strategy.SERIAL,
    device: DeviceSpec | None = None,
    include_transfers: bool = True,
    config: ExecutionConfig | None = None,
    check: bool = False,
    faults=None,
) -> RunResult:
    """Run a SELECT chain at the given size/strategy; returns the RunResult."""
    executor = Executor(device or DeviceSpec(), check=check, faults=faults)
    plan = select_chain_plan(num_selects, selectivity)
    cfg = config or ExecutionConfig(
        strategy=strategy, include_transfers=include_transfers)
    return executor.run(plan, {"input": n_elements}, cfg)


def gpu_select_throughput(n_elements: int, selectivity: float = 0.5,
                          device: DeviceSpec | None = None) -> float:
    """GPU-compute throughput (bytes/s) of one SELECT, PCIe excluded --
    the quantity plotted in Fig 4(a)'s top curves."""
    res = run_select_chain(n_elements, num_selects=1, selectivity=selectivity,
                           strategy=Strategy.SERIAL, device=device,
                           include_transfers=False)
    return n_elements * INT_ROW_BYTES / res.makespan if res.makespan else 0.0

"""Cardinality-estimate profiling: annotated vs actual row counts.

The timing simulator trusts the plan's selectivity annotations.  This
profiler runs a plan functionally, compares every node's *actual* output
cardinality against the estimate, and reports the error -- the tool for
checking that a plan's annotations (and hence its simulated results) are
trustworthy on a given dataset.

.. deprecated::
    Stats *collection* now lives in the optimizer
    (:class:`repro.optimizer.DataStats`, docs/OPTIMIZER.md):
    :func:`observed_stats` delegates there and is what the cost model
    prices against.  This module's error profiling remains the tool for
    auditing annotations; :meth:`EstimateProfile.data_stats` bridges a
    profile into the optimizer's input.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..plans.interp import evaluate
from ..plans.plan import OpType, Plan
from ..ra.relation import Relation
from .sizes import estimate_sizes


@dataclass(frozen=True)
class EstimateRecord:
    node: str
    op: str
    estimated: int
    actual: int

    @property
    def ratio(self) -> float:
        """estimated / actual (1.0 = perfect; inf-safe)."""
        if self.actual == 0:
            return float("inf") if self.estimated > 0 else 1.0
        return self.estimated / self.actual

    @property
    def relative_error(self) -> float:
        if self.actual == 0:
            return 0.0 if self.estimated == 0 else float("inf")
        return abs(self.estimated - self.actual) / self.actual


@dataclass
class EstimateProfile:
    records: list[EstimateRecord]
    #: (plan, sources) the profile was taken on; lets :meth:`data_stats`
    #: bridge into the optimizer's observed statistics
    inputs: tuple | None = None

    def data_stats(self):
        """The optimizer-ready :class:`repro.optimizer.DataStats` of the
        profiled dataset (rows, widths, group cardinalities, skew)."""
        if self.inputs is None:
            raise ValueError("profile has no recorded inputs")
        from ..optimizer import DataStats
        plan, sources = self.inputs
        return DataStats.from_relations(plan, sources)

    def worst(self) -> EstimateRecord:
        finite = [r for r in self.records if r.relative_error != float("inf")]
        pool = finite or self.records
        return max(pool, key=lambda r: r.relative_error)

    @property
    def max_relative_error(self) -> float:
        return max((r.relative_error for r in self.records), default=0.0)

    def describe(self) -> str:
        lines = [f"{'node':28s} {'op':10s} {'estimated':>12s} "
                 f"{'actual':>12s} {'est/act':>8s}"]
        for r in self.records:
            ratio = "inf" if r.ratio == float("inf") else f"{r.ratio:.2f}"
            lines.append(f"{r.node:28s} {r.op:10s} {r.estimated:>12,} "
                         f"{r.actual:>12,} {ratio:>8s}")
        return "\n".join(lines)


def profile_estimates(plan: Plan, sources: dict[str, Relation]
                      ) -> EstimateProfile:
    """Run `plan` functionally and compare annotations to reality."""
    plan.validate()
    actual = evaluate(plan, sources)
    source_rows = {name: rel.num_rows for name, rel in sources.items()}
    estimated = estimate_sizes(plan, source_rows)
    records = [
        EstimateRecord(node=node.name, op=node.op.value,
                       estimated=int(estimated[node.name]),
                       actual=int(actual[node.name].num_rows))
        for node in plan.topological()
        if node.op is not OpType.SOURCE
    ]
    return EstimateProfile(records=records, inputs=(plan, dict(sources)))


def observed_stats(plan: Plan, sources: dict[str, Relation]):
    """Deprecated shim: the optimizer's observed data statistics
    (:meth:`repro.optimizer.DataStats.from_relations`) -- rows, widths,
    group cardinalities, and skew measured on the real relations."""
    import warnings

    warnings.warn(
        "repro.runtime.estimates.observed_stats is deprecated; use "
        "repro.optimizer.DataStats.from_relations (docs/OPTIMIZER.md)",
        DeprecationWarning, stacklevel=2)
    from ..optimizer import DataStats
    return DataStats.from_relations(plan, sources)

"""Cardinality estimation / propagation through a plan.

The simulator times kernels from element counts; for *virtual* workloads
(timing-only runs at paper scale, e.g. 4 billion elements) the counts come
from the selectivity annotations on the plan nodes.
"""

from __future__ import annotations

from ..errors import PlanError
from ..plans.plan import OpType, Plan, PlanNode


def estimate_sizes(plan: Plan, source_rows: dict[str, int]) -> dict[str, int]:
    """Estimated output rows for every node, keyed by node name."""
    sizes: dict[str, int] = {}
    for node in plan.topological():
        sizes[node.name] = _node_size(node, sizes, source_rows)
    return sizes


def _node_size(node: PlanNode, sizes: dict[str, int],
               source_rows: dict[str, int]) -> int:
    if node.op is OpType.SOURCE:
        if node.name in source_rows:
            return int(source_rows[node.name])
        if node.params.get("n_rows") is not None:
            return int(node.params["n_rows"])
        raise PlanError(f"no row count for source {node.name!r}")
    left = sizes[node.inputs[0].name]
    if node.op is OpType.UNION:
        right = sizes[node.inputs[1].name]
        return max(0, int(round((left + right) * node.selectivity)))
    if node.op is OpType.UNION_ALL:
        # bag concatenation is exact: every tuple of both inputs survives
        return left + sizes[node.inputs[1].name]
    if node.op is OpType.TOP_N:
        return max(0, min(left, int(node.params["n"])))
    if node.op is OpType.AGGREGATE:
        n_groups = node.params.get("n_groups")
        if n_groups is not None:
            return max(1, int(n_groups))
        return max(1, int(round(left * node.selectivity)))
    # PRODUCT encodes the expansion factor (right rows) as selectivity;
    # everything else scales its primary input by selectivity.
    return max(0, int(round(left * node.selectivity)))

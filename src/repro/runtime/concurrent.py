"""Concurrent-kernel execution study (paper Fig 12).

Three ways of running two *independent* SELECT operators on the GPU:

* ``no stream (old)`` -- each SELECT uses the full-resource launch
  configuration; the two run back to back with a device synchronization
  between them.
* ``no stream (new)`` -- same serial execution, but each SELECT uses half
  the threads and CTAs (the configuration concurrency requires).
* ``stream`` -- the two half-resource SELECTs are issued to different
  streams of the Stream Pool and run concurrently.

The paper's finding: concurrency wins only while a single kernel cannot
fill the device (small N); past ~8M elements a single full-resource kernel
is better.  `n_elements` below is the *total* across both SELECTs,
matching the figure's x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..plans.plan import Plan
from ..ra.expr import Field
from ..simgpu.compute import DEVICE_SYNC_S
from ..simgpu.device import DeviceSpec
from ..simgpu.engine import SimEngine, SimStream
from ..simgpu.timeline import EventKind, Timeline
from ..core.opmodels import chain_for_region
from ..core.stagecosts import DEFAULT_STAGE_COSTS, StageCostParams


def _select_specs(n: int, selectivity: float, device: DeviceSpec,
                  costs: StageCostParams, resource_fraction: float):
    plan = Plan()
    src = plan.source("in", row_nbytes=4)
    sel = plan.select(src, Field("value") < 1, selectivity=selectivity)
    chain = chain_for_region([sel], costs)
    return chain.main_launch_specs(n, device, resource_fraction=resource_fraction)


@dataclass
class ConcurrencyResult:
    mode: str
    n_total: int
    timeline: Timeline

    @property
    def throughput(self) -> float:
        t = self.timeline.makespan
        return self.n_total * 4 / t if t > 0 else 0.0


def run_two_selects(
    n_total: int,
    mode: str,
    selectivity: float = 0.5,
    device: DeviceSpec | None = None,
    costs: StageCostParams = DEFAULT_STAGE_COSTS,
) -> ConcurrencyResult:
    """Run two independent SELECTs of ``n_total/2`` elements each.

    ``mode`` is one of ``"old"``, ``"new"``, ``"stream"``.
    """
    device = device or DeviceSpec()
    n_each = n_total // 2
    engine = SimEngine(device)

    if mode in ("old", "new"):
        frac = 1.0 if mode == "old" else 0.5
        stream = SimStream(stream_id=0)
        for i in range(2):
            for spec in _select_specs(n_each, selectivity, device, costs, frac):
                stream.kernel(spec, tag=f"select{i}.{spec.name}")
            # the unstreamed path synchronizes with the host after each op
            stream.host(DEVICE_SYNC_S, tag=f"sync{i}")
        timeline = engine.run([stream])
    elif mode == "stream":
        streams = []
        for i in range(2):
            s = SimStream(stream_id=i)
            for spec in _select_specs(n_each, selectivity, device, costs, 0.5):
                s.kernel(spec, tag=f"select{i}.{spec.name}")
            streams.append(s)
        timeline = engine.run(streams)
        # one synchronization once both streams drain (waitAll)
        end = timeline.end_time
        timeline.add(end, end + DEVICE_SYNC_S, EventKind.HOST, "sync")
    else:
        raise ValueError(f"unknown mode {mode!r}; use old/new/stream")

    return ConcurrencyResult(mode=mode, n_total=n_total, timeline=timeline)

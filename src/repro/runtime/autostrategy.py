"""Automatic strategy selection.

Encodes the paper's decision rules as a tiny planner:

* intermediates that fit on the device stay there -- *with round trip* is
  only ever a forced fallback (SS III-B);
* fusion is applied wherever the pass (with its cost model) finds fusable
  chains (SS III-C);
* fission is applied when there is a pipelinable prefix from the driver
  input and the input transfer is worth hiding -- always true for
  > GPU-memory inputs, and generally whenever PCIe dominates (SS IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fusion import fuse_plan
from ..core.opmodels import out_row_nbytes
from ..plans.plan import Plan
from ..simgpu.device import DeviceSpec
from .executor import Executor, RunResult
from .sizes import estimate_sizes
from .strategies import ExecutionConfig, Strategy


@dataclass(frozen=True)
class StrategyChoice:
    strategy: Strategy
    reasons: tuple[str, ...]


def choose_strategy(plan: Plan, source_rows: dict[str, int],
                    device: DeviceSpec | None = None,
                    memory_safety: float = 0.9) -> StrategyChoice:
    """Pick the execution strategy the paper's rules imply for this plan."""
    device = device or DeviceSpec()
    plan.validate()
    sizes = estimate_sizes(plan, source_rows)
    reasons: list[str] = []

    fr = fuse_plan(plan)
    fusable = fr.num_fused_regions > 0
    if fusable:
        reasons.append(
            f"fusion: {fr.num_fused_regions} fusable region(s) save "
            f"{fr.num_kernels_saved} kernel(s)")
    else:
        reasons.append("fusion: no fusable chains (barriers or shared "
                       "intermediates everywhere)")

    # does the working set fit?
    total_bytes = sum(float(sizes[n.name]) * out_row_nbytes(n)
                      for n in plan.nodes)
    budget = device.global_mem_bytes * memory_safety
    oversized = total_bytes > budget
    if oversized:
        reasons.append(
            f"working set ~{total_bytes/2**30:.1f} GiB exceeds the "
            f"{budget/2**30:.1f} GiB device budget: stream with fission")

    # is there something to pipeline?  (a non-barrier region fed by the
    # largest source)
    driver = max(plan.sources(), key=lambda s: sizes[s.name])
    driver_feeds_chain = any(
        not r.is_barrier_op and r.nodes[0].inputs
        and r.nodes[0].inputs[0] is driver
        for r in fr.regions)
    if driver_feeds_chain and not oversized:
        reasons.append("fission: input transfer can overlap the first "
                       "compute region")

    use_fission = oversized or driver_feeds_chain
    if fusable and use_fission:
        strategy = Strategy.FUSED_FISSION
    elif fusable:
        strategy = Strategy.FUSED
    elif use_fission:
        strategy = Strategy.FISSION
    else:
        strategy = Strategy.SERIAL
        reasons.append("serial: nothing to fuse or pipeline")
    return StrategyChoice(strategy=strategy, reasons=tuple(reasons))


def run_auto(plan: Plan, source_rows: dict[str, int],
             executor: Executor | None = None) -> tuple[RunResult, StrategyChoice]:
    """Choose a strategy and run the plan with it."""
    executor = executor or Executor()
    choice = choose_strategy(plan, source_rows, executor.device)
    result = executor.run(plan, source_rows,
                          ExecutionConfig(strategy=choice.strategy))
    return result, choice

"""Automatic strategy selection -- deprecation shim.

.. deprecated::
    The rule-based planner this module used to implement is subsumed by
    the cost-based optimizer (:mod:`repro.optimizer`, docs/OPTIMIZER.md):
    :func:`choose_strategy` and :func:`run_auto` now delegate to
    :class:`repro.optimizer.Optimizer` restricted to the paper's
    single-device strategy space, so old imports keep working and return
    the same choices -- now priced by the simulator instead of
    hand-written rules.  New code should call ``Optimizer.choose`` /
    ``Optimizer.run`` directly (they also consider the host baseline and
    multi-device cluster shapes, and cache their decisions).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..core.fusion import fuse_plan
from ..core.opmodels import out_row_nbytes
from ..plans.plan import Plan
from ..simgpu.device import DeviceSpec
from .executor import Executor, RunResult
from .sizes import estimate_sizes
from .strategies import ExecutionConfig, Strategy


@dataclass(frozen=True)
class StrategyChoice:
    strategy: Strategy
    reasons: tuple[str, ...]


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.runtime.autostrategy.{name} is deprecated; use "
        f"repro.optimizer.Optimizer instead (docs/OPTIMIZER.md)",
        DeprecationWarning, stacklevel=3)


def _legacy_reasons(plan: Plan, sizes: dict[str, int],
                    device: DeviceSpec, memory_safety: float) -> list[str]:
    """The paper-rule commentary the old planner printed; kept so the
    choice stays explainable in the same vocabulary."""
    reasons: list[str] = []
    fr = fuse_plan(plan)
    if fr.num_fused_regions > 0:
        reasons.append(
            f"fusion: {fr.num_fused_regions} fusable region(s) save "
            f"{fr.num_kernels_saved} kernel(s)")
    else:
        reasons.append("fusion: no fusable chains (barriers or shared "
                       "intermediates everywhere)")
    total_bytes = sum(float(sizes[n.name]) * out_row_nbytes(n)
                      for n in plan.nodes)
    budget = device.global_mem_bytes * memory_safety
    if total_bytes > budget:
        reasons.append(
            f"working set ~{total_bytes/2**30:.1f} GiB exceeds the "
            f"{budget/2**30:.1f} GiB device budget: stream with fission")
    driver = max(plan.sources(), key=lambda s: sizes[s.name])
    if any(not r.is_barrier_op and r.nodes[0].inputs
           and r.nodes[0].inputs[0] is driver for r in fr.regions):
        reasons.append("fission: input transfer can overlap the first "
                       "compute region")
    return reasons


def _choose(plan: Plan, source_rows: dict[str, int],
            device: DeviceSpec, memory_safety: float,
            cache=None) -> StrategyChoice:
    from ..optimizer import Optimizer

    opt = Optimizer(device, cache=cache)
    decision = opt.choose(plan, source_rows, include_cpubase=False)
    strategy = decision.chosen.option.strategy
    sizes = estimate_sizes(plan, source_rows)
    reasons = _legacy_reasons(plan, sizes, device, memory_safety)
    if strategy is Strategy.SERIAL:
        reasons.append("serial: nothing to fuse or pipeline")
    reasons.append(
        f"optimizer: {strategy.value} priced cheapest of "
        f"{len(decision.candidates)} candidate(s) "
        f"({decision.chosen.price_s * 1e3:.3f} ms simulated)")
    return StrategyChoice(strategy=strategy, reasons=tuple(reasons))


def choose_strategy(plan: Plan, source_rows: dict[str, int],
                    device: DeviceSpec | None = None,
                    memory_safety: float = 0.9) -> StrategyChoice:
    """Pick the execution strategy for this plan (deprecated shim: the
    choice now comes from the cost-based optimizer)."""
    _deprecated("choose_strategy")
    device = device or DeviceSpec()
    plan.validate()
    return _choose(plan, source_rows, device, memory_safety)


def run_auto(plan: Plan, source_rows: dict[str, int],
             executor: Executor | None = None) -> tuple[RunResult, StrategyChoice]:
    """Choose a strategy and run the plan with it (deprecated shim)."""
    _deprecated("run_auto")
    executor = executor or Executor()
    plan.validate()
    choice = _choose(plan, source_rows, executor.device, 0.9,
                     cache=executor.plan_cache)
    result = executor.run(plan, source_rows,
                          ExecutionConfig(strategy=choice.strategy))
    return result, choice

#!/usr/bin/env python
"""Kernel fission with the Stream Pool: processing data bigger than the GPU.

The paper's SS IV scenario: the C2070's 6 GB memory holds < 1.5 billion
32-bit integers, so a SELECT over 2 billion elements must stream.  This
example drives the Stream Pool directly -- the same Table IV API the paper
describes -- building the Fig 13 pipeline by hand, and then compares it
against the one-call executor strategies.

Run:  python examples/streaming_select.py
"""

from repro.core.fission import FissionConfig, plan_segments
from repro.core.opmodels import chain_for_region
from repro.plans import Plan
from repro.ra import Field
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain
from repro.simgpu import DeviceSpec, EventKind
from repro.streampool import StreamPool

N = 2_000_000_000          # 8 GB of input: exceeds the 6 GB device
SELECTIVITY = 0.5


def hand_built_pipeline(device: DeviceSpec) -> float:
    """Build the Fig 13 pipeline explicitly through the Stream Pool API."""
    # lower one SELECT to its compute+gather kernels
    plan = Plan()
    src = plan.source("in", row_nbytes=4)
    sel = plan.select(src, Field("v") < 2**30, selectivity=SELECTIVITY)
    chain = chain_for_region([sel])

    pool = StreamPool(device, num_streams=3)
    segments = plan_segments(N, 4, FissionConfig())
    print(f"  {len(segments)} segments over {pool.num_streams} streams")

    for seg in segments:
        stream = pool.streams[seg.index % pool.num_streams]
        stream.h2d(seg.n_rows * 4, tag=f"h2d.{seg.index}")
        for spec in chain.main_launch_specs(seg.n_rows, device):
            stream.kernel(spec, tag=f"{spec.name}.{seg.index}")
        stream.d2h(seg.n_rows * 4 * SELECTIVITY, tag=f"d2h.{seg.index}")

    pool.start_streams()
    timeline = pool.wait_all()

    busy_h2d = timeline.busy_time(EventKind.H2D)
    print(f"  pipeline makespan {timeline.makespan:.3f} s; H2D engine busy "
          f"{busy_h2d/timeline.makespan*100:.0f}% of the time")
    return N * 4 / timeline.makespan


def main() -> None:
    device = DeviceSpec()
    print(f"SELECT over {N/1e9:.0f}G elements "
          f"({N*4/2**30:.1f} GiB input vs {device.global_mem_bytes/2**30:.0f} "
          f"GiB device memory)\n")

    print("hand-built Stream Pool pipeline (Fig 13):")
    tput = hand_built_pipeline(device)
    print(f"  throughput: {tput/1e9:.2f} GB/s\n")

    print("executor strategies (Fig 14/16):")
    for strategy, label in [(Strategy.SERIAL, "serial (chunked)"),
                            (Strategy.FISSION, "fission"),
                            (Strategy.FUSED_FISSION, "fusion + fission")]:
        r = run_select_chain(N, 1, SELECTIVITY, strategy)
        chunks = f", {r.num_chunks} chunks" if r.num_chunks > 1 else ""
        print(f"  {label:18s} {r.throughput/1e9:6.2f} GB/s{chunks}")


if __name__ == "__main__":
    main()

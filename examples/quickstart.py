#!/usr/bin/env python
"""Quickstart: fuse two SELECT kernels and see why it wins.

This walks the paper's core demonstration (SS III-B) end to end:

1. build a logical plan of two back-to-back SELECTs,
2. check *functional* equivalence of the fused and unfused pipelines on
   real data (the staged partition/filter/buffer/gather implementation),
3. simulate all three execution methods on the modeled C2070 platform and
   print the throughput and time breakdown the paper reports in Figs 8/9.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ra import Field, Relation, staged_select, unfused_select_chain
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain
from repro.simgpu import DeviceSpec, describe_environment

N_FUNCTIONAL = 2_000_000       # real arrays: functional check
N_SIMULATED = 200_000_000      # simulated timing at paper scale


def main() -> None:
    print(describe_environment(DeviceSpec()))

    # -- 1. functional layer: fused == unfused, bit for bit ---------------
    rng = np.random.default_rng(0)
    data = Relation({"value": rng.integers(0, 2**31, N_FUNCTIONAL,
                                           dtype=np.int32)})
    preds = [Field("value") < 2**30, Field("value") > 2**27]
    fused = staged_select(data, preds)          # one kernel, chained filters
    chained = unfused_select_chain(data, preds)  # two full kernels
    assert fused.same_tuples(chained)
    print(f"\nfunctional check: fused == unfused on {N_FUNCTIONAL:,} rows "
          f"({fused.num_rows:,} selected)")

    # -- 2. simulated execution: the three methods of Fig 8 ---------------
    print(f"\nsimulated 2x SELECT over {N_SIMULATED/1e6:.0f}M 32-bit ints "
          f"(50% selectivity each):")
    for strategy, label in [
        (Strategy.WITH_ROUND_TRIP, "with round trip"),
        (Strategy.SERIAL, "without round trip"),
        (Strategy.FUSED, "fused"),
        (Strategy.FUSED_FISSION, "fused + fission"),
    ]:
        r = run_select_chain(N_SIMULATED, 2, 0.5, strategy)
        print(f"  {label:20s} {r.throughput/1e9:6.2f} GB/s   "
              f"(io {r.io_time*1e3:7.1f} ms, round trip "
              f"{r.roundtrip_time*1e3:7.1f} ms, compute "
              f"{r.compute_time*1e3:6.1f} ms)")

    # -- 3. where the fused compute win comes from ------------------------
    ru = run_select_chain(N_SIMULATED, 2, 0.5, Strategy.SERIAL,
                          include_transfers=False)
    rf = run_select_chain(N_SIMULATED, 2, 0.5, Strategy.FUSED,
                          include_transfers=False)
    print(f"\ncompute-only kernels (paper Fig 10):")
    for name, times in [("unfused", ru.kernel_times()),
                        ("fused", rf.kernel_times())]:
        detail = ", ".join(f"{k}={v*1e3:.2f}ms" for k, v in times.items())
        print(f"  {name:8s} {detail}")
    print(f"  fused compute speedup: {ru.makespan/rf.makespan:.2f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""TPC-H Q1 end to end: functional answer + optimized execution plan.

Demonstrates the full stack on the paper's headline query (Fig 17a/18a):

* generate synthetic TPC-H data,
* decompose lineitem into the columnar relations the paper's engine uses,
* evaluate the Q1 plan functionally and check it against a direct NumPy
  reference,
* show what the fusion pass does to the plan, and
* compare simulated execution under the three strategies of Fig 18(a).

Run:  python examples/tpch_q1_pipeline.py [scale_factor]
"""

import sys

from repro.core.fusion import fuse_plan
from repro.plans import evaluate_sinks
from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.tpch import (
    RETURNFLAG_CODES,
    LINESTATUS_CODES,
    TpchConfig,
    build_q1_plan,
    generate,
    q1_column_relations,
    q1_reference,
    q1_source_rows,
)

FLAG_NAMES = {v: k for k, v in RETURNFLAG_CODES.items()}
STATUS_NAMES = {v: k for k, v in LINESTATUS_CODES.items()}


def main(scale_factor: float = 0.01) -> None:
    print(f"generating TPC-H data at SF={scale_factor} ...")
    data = generate(TpchConfig(scale_factor=scale_factor))
    print(f"  lineitem: {data.lineitem.num_rows:,} rows")

    # -- functional evaluation --------------------------------------------
    plan = build_q1_plan()
    columns = q1_column_relations(data.lineitem)
    result = list(evaluate_sinks(plan, columns).values())[0]

    print("\npricing summary report (Q1):")
    hdr = f"{'flag':>4} {'status':>6} {'sum_qty':>12} {'sum_disc_price':>16} " \
          f"{'avg_disc':>9} {'count':>8}"
    print(hdr)
    for i in range(result.num_rows):
        print(f"{FLAG_NAMES[int(result['returnflag'][i])]:>4} "
              f"{STATUS_NAMES[int(result['linestatus'][i])]:>6} "
              f"{float(result['sum_qty'][i]):12.1f} "
              f"{float(result['sum_disc_price'][i]):16.2f} "
              f"{float(result['avg_disc'][i]):9.4f} "
              f"{int(result['count_order'][i]):8d}")

    # cross-check against the direct NumPy reference
    ref = q1_reference(data.lineitem)
    assert result.num_rows == len(ref)
    print(f"\ncross-check vs direct NumPy computation: OK ({len(ref)} groups)")

    # -- what fusion does to the plan --------------------------------------
    print("\n" + fuse_plan(plan).describe())

    # -- simulated execution (Fig 18a) --------------------------------------
    ex = Executor()
    rows = q1_source_rows(6_000_000)  # paper-scale cardinality
    print("\nsimulated execution at 6M lineitems (normalized):")
    base = None
    for strategy, label in [(Strategy.SERIAL, "not optimized"),
                            (Strategy.FUSED, "fusion"),
                            (Strategy.FUSED_FISSION, "fusion + fission")]:
        r = ex.run(plan, rows, ExecutionConfig(strategy=strategy))
        base = base or r.makespan
        print(f"  {label:18s} {r.makespan*1e3:8.1f} ms   "
              f"({r.makespan/base:.3f} of baseline)")


if __name__ == "__main__":
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    main(sf)

#!/usr/bin/env python
"""Explore the fusion cost model: when does fusing stop paying?

The paper (SS III-C) notes that fusion increases register pressure, so
"fusing too many kernels may cause problems".  This example sweeps chain
length and shows where the cost model draws the line, plus the Table III
compiler-scope study on the generated mini-IR.

Run:  python examples/fusion_explorer.py
"""

from repro.compilerlite import (
    FilterStatement,
    gen_fused_naive,
    gen_unfused,
    optimize,
)
from repro.core.cost import FusionCostModel
from repro.core.opmodels import chain_for_region
from repro.plans import Plan
from repro.ra import Field
from repro.simgpu import DeviceSpec


def sweep_chain_length(device: DeviceSpec, max_len: int = 24) -> None:
    plan = Plan()
    node = plan.source("in", row_nbytes=4)
    nodes = []
    for i in range(max_len):
        # distinct fields keep register demand growing, as real fused
        # kernels' do
        node = plan.select(node, Field(f"c{i}") < i + 1, name=f"s{i}")
        nodes.append(node)

    cm = FusionCostModel(device)
    print(f"{'chain':>5} {'regs':>5} {'fused ms':>9} {'unfused ms':>11} "
          f"{'benefit':>9}  decision")
    for k in range(1, max_len):
        decision = cm.evaluate(nodes[:k], nodes[k])
        chain = chain_for_region(nodes[:k + 1])
        verdict = "FUSE" if decision.fuse else "stop"
        spill = " (spilling)" if decision.fused_regs > 63 else ""
        print(f"{k+1:>5} {decision.fused_regs:>5} "
              f"{decision.fused_time*1e3:>9.2f} {decision.unfused_time*1e3:>11.2f} "
              f"{decision.benefit*1e3:>+9.2f}  {verdict}{spill}")
        if not decision.fuse:
            print(f"\ncost model stops fusing at {k+1} kernels: register "
                  f"pressure ({decision.fused_regs} regs/thread) has pushed "
                  f"spill traffic past the savings.")
            break


def table3_study() -> None:
    print("\ncompiler-scope study (Table III):")
    stmts = [FilterStatement("lt", 100.0), FilterStatement("lt", 50.0)]
    fused = gen_fused_naive(stmts)
    print("\nnaive fused kernel at O0 "
          f"({fused.count()} instructions):")
    print(fused.render())
    opt = optimize(fused)
    print(f"\nafter O3 ({opt.count()} instructions -- note the combined "
          "threshold):")
    print(opt.render())
    unfused_o3 = [optimize(p).count() for p in gen_unfused(stmts)]
    print(f"\nunfused kernels after O3: {unfused_o3} instructions each")


def main() -> None:
    device = DeviceSpec()
    print("=== fusion cost-model sweep: SELECT chains ===\n")
    sweep_chain_length(device)
    table3_study()


if __name__ == "__main__":
    main()

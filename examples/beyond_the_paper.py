#!/usr/bin/env python
"""Beyond the paper: the extensions this reproduction adds.

The paper sketches several directions it leaves open; this example runs
each of them:

1. **auto strategy**   -- a planner applying the paper's decision rules,
2. **hybrid CPU+GPU**  -- fused kernels on both processors (the Ocelot
   future-work idea),
3. **PCIe compression** -- the He et al. alternative, composed with fusion,
4. **shared-scan fusion** -- pattern (c), across-query fusion of SELECTs,
5. **memory pressure** -- the forced-round-trip mechanism of SS III-A, run
   live through the memory-managed runtime,
6. **Chrome trace**    -- export a fission pipeline for visual inspection.

Run:  python examples/beyond_the_paper.py
"""

import os
import tempfile

import numpy as np

from repro.core.multifusion import SharedScanGroup, chain_for_shared_scan
from repro.core.opmodels import chain_for_region
from repro.plans import Plan
from repro.ra import Field, Relation
from repro.runtime import GpuRuntime, Strategy
from repro.runtime.autostrategy import run_auto
from repro.runtime.compressed import run_compressed_select_chain
from repro.runtime.hybrid import run_hybrid_select
from repro.runtime.select_chain import run_select_chain, select_chain_plan
from repro.simgpu import DeviceSpec, RLE
from repro.simgpu.trace import write_chrome_trace

N = 1_000_000_000


def main() -> None:
    device = DeviceSpec()

    # 1. auto strategy -----------------------------------------------------
    print("1. automatic strategy selection")
    plan = select_chain_plan(2)
    result, choice = run_auto(plan, {"input": N})
    print(f"   chose {choice.strategy.value}: "
          f"{result.throughput/1e9:.2f} GB/s")
    for reason in choice.reasons:
        print(f"   - {reason}")

    # 2. hybrid CPU+GPU -----------------------------------------------------
    print("\n2. hybrid CPU+GPU execution")
    gpu_only = run_hybrid_select(N, cpu_fraction=0.0)
    hybrid = run_hybrid_select(N)
    print(f"   GPU only : {gpu_only.throughput/1e9:6.2f} GB/s")
    print(f"   hybrid   : {hybrid.throughput/1e9:6.2f} GB/s "
          f"(CPU takes {hybrid.cpu_fraction:.0%} of the data, "
          f"+{(hybrid.throughput/gpu_only.throughput-1)*100:.0f}%)")

    # 3. compression --------------------------------------------------------
    print("\n3. PCIe compression (He et al.) composed with fusion")
    for label, scheme, fused in [("fusion only", None, True),
                                 ("RLE only", RLE, False),
                                 ("RLE + fusion", RLE, True)]:
        from repro.simgpu.compression import NONE
        r = run_compressed_select_chain(200_000_000, scheme=scheme or NONE,
                                        fused=fused)
        print(f"   {label:14s} {r.throughput/1e9:6.2f} GB/s")

    # 4. shared-scan fusion --------------------------------------------------
    print("\n4. shared-scan fusion (pattern (c), e.g. across queries)")
    plan4 = Plan()
    src = plan4.source("t", row_nbytes=4)
    selects = [plan4.select(src, Field("x") < 10, selectivity=0.2,
                            name=f"query{i}") for i in range(3)]
    shared = chain_for_shared_scan(SharedScanGroup(src, tuple(selects)))
    t_shared = shared.total_duration(200_000_000, device)
    t_separate = sum(chain_for_region([s]).total_duration(200_000_000, device)
                     for s in selects)
    print(f"   3 SELECTs, separate scans: {t_separate*1e3:6.1f} ms")
    print(f"   3 SELECTs, one shared scan: {t_shared*1e3:6.1f} ms "
          f"({t_separate/t_shared:.2f}x)")

    # 5. memory pressure ------------------------------------------------------
    print("\n5. forced round trips under memory pressure (Fig 7a/b)")
    rng = np.random.default_rng(0)
    rel = Relation({"k": rng.integers(0, 100, 400_000).astype(np.int32),
                    "v": rng.integers(0, 100, 400_000).astype(np.int32)})
    plan5 = Plan()
    node = plan5.source("t", row_nbytes=8)
    for i, (f, thr, sel) in enumerate(
            [("k", 80, 0.8), ("v", 80, 0.8), ("k", 40, 0.5)]):
        node = plan5.select(node, Field(f) < thr, selectivity=sel, name=f"s{i}")
    tight = int(rel.nbytes * 1.3)
    for fuse in (False, True):
        r = GpuRuntime(fuse=fuse, memory_limit=tight).run(plan5, {"t": rel})
        print(f"   fuse={str(fuse):5s} spills={r.spill_count} "
              f"time={r.makespan*1e3:6.2f} ms")

    # 6. chrome trace ------------------------------------------------------------
    print("\n6. Chrome trace of the fission pipeline")
    r = run_select_chain(N, 1, 0.5, Strategy.FISSION)
    path = os.path.join(tempfile.gettempdir(), "repro_fission_trace.json")
    write_chrome_trace(r.timeline, path)
    print(f"   wrote {len(r.timeline.events)} events to {path}")
    print("   (open chrome://tracing and load it to see the Fig 13 overlap)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""SQL front end: warehouse queries straight into the fusion compiler.

Writes three analytic queries in SQL, compiles each through the full
pipeline (parse -> bind -> rewrite -> fuse -> strategy), runs it
functionally over generated TPC-H data, and reports the simulated
execution.

Run:  python examples/sql_frontend.py
"""

from repro.core.passes import compile_plan
from repro.plans import evaluate_sinks
from repro.sql import sql_to_plan
from repro.tpch import TpchConfig, generate
from repro.tpch.q1 import Q1_CUTOFF

QUERIES = {
    "pricing summary (Q1-lite)": f"""
        SELECT returnflag, linestatus,
               SUM(quantity) AS sum_qty,
               SUM(extendedprice * (1 - discount)) AS sum_disc_price,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE shipdate <= {Q1_CUTOFF}
        GROUP BY returnflag, linestatus
        ORDER BY returnflag, linestatus
    """,
    "forecast revenue (Q6)": """
        SELECT SUM(extendedprice * discount) AS revenue
        FROM lineitem
        WHERE shipdate >= 730 AND shipdate < 1095
          AND discount BETWEEN 0.05 AND 0.07 AND quantity < 24
    """,
    "late items by supplier": """
        SELECT suppkey, COUNT(*) AS late_items
        FROM lineitem
        WHERE receiptdate > commitdate
        GROUP BY suppkey
        ORDER BY late_items DESC
    """,
}


def main() -> None:
    data = generate(TpchConfig(scale_factor=0.01))
    sources = {"lineitem": data.lineitem}

    for title, sql in QUERIES.items():
        print("=" * 64)
        print(title)
        print("=" * 64)
        plan = sql_to_plan(sql)

        # functional answer
        out = list(evaluate_sinks(plan, sources).values())[0]
        print(f"result: {out.num_rows} row(s), fields {out.fields}")
        for i in range(min(out.num_rows, 4)):
            print("   " + ", ".join(f"{f}={out.column(f)[i]}"
                                    for f in out.fields))

        # the compiler's view
        cp = compile_plan(plan, {"lineitem": 6_000_000})
        print()
        print(cp.describe())
        result = cp.run()
        print(f"simulated at 6M rows: {result.makespan*1e3:.1f} ms "
              f"({result.throughput/1e9:.2f} GB/s)\n")


if __name__ == "__main__":
    main()

"""Table III: PTX instruction counts before/after fusion at O0 and O3.

Paper-reported counts for the two threshold-filter statements:

    not fused: 5 x 2 at O0  ->  3 x 2 at O3   (40% reduction)
    fused    : 10    at O0  ->  3     at O3   (70% reduction)
"""

from repro.bench import PaperComparison, format_table, print_header
from repro.compilerlite import FilterStatement, gen_fused_naive, gen_unfused, optimize, table3


def test_table3_instruction_counts(benchmark, device):
    t = benchmark.pedantic(table3, rounds=5, iterations=1)

    print_header("Table III", "compiler-scope study: instruction counts", device)
    rows = [
        ["if(d<T1); if(d<T2)  (not fused)",
         f"{t['unfused_o0'][0]} x {len(t['unfused_o0'])}",
         f"{t['unfused_o3'][0]} x {len(t['unfused_o3'])}"],
        ["if(d<T1 && d<T2)    (fused)", t["fused_o0"], t["fused_o3"]],
    ]
    print(format_table(["statement", "inst # (O0)", "inst # (O3)"], rows, width=30))

    cmp = PaperComparison("Table III")
    cmp.add("unfused O0 per kernel", 5, t["unfused_o0"][0])
    cmp.add("unfused O3 per kernel", 3, t["unfused_o3"][0])
    cmp.add("fused O0", 10, t["fused_o0"])
    cmp.add("fused O3", 3, t["fused_o3"])
    cmp.add("unfused O3 reduction (%)", 40.0,
            100 * (1 - t["unfused_o3"][0] / t["unfused_o0"][0]))
    cmp.add("fused O3 reduction (%)", 70.0,
            100 * (1 - t["fused_o3"] / t["fused_o0"]))
    cmp.print()

    assert t["unfused_o0"] == [5, 5]
    assert t["unfused_o3"] == [3, 3]
    assert t["fused_o0"] == 10
    assert t["fused_o3"] == 3


def test_table3_scaling_with_chain_length(benchmark, device):
    """Extension: the fused-O3 count stays flat as more same-direction
    filters fuse -- the optimization scope benefit grows with chain length."""
    def sweep():
        rows = []
        for n in range(1, 7):
            stmts = [FilterStatement("lt", 10.0 * (i + 1)) for i in range(n)]
            fused = gen_fused_naive(stmts)
            unfused_o3 = sum(optimize(p).count() for p in gen_unfused(stmts))
            rows.append([n, 5 * n, fused.count(), unfused_o3,
                         optimize(fused).count()])
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    print_header("Table III (extension)", "instruction counts vs chain length", device)
    print(format_table(
        ["# filters", "unfused O0", "fused O0", "unfused O3", "fused O3"], rows))
    for n, _, _, unfused_o3, fused_o3 in rows:
        assert fused_o3 == 3           # collapses to ld/setp/st regardless
        assert unfused_o3 == 3 * n     # each kernel keeps its own skeleton


def test_table3_arithmetic_scope(benchmark, device):
    """Extension: the same scope effect on Q1's fused ARITH block --
    disc_price and charge share (1-discount)*price, which CSE can only
    recover when both assignments live in one fused kernel."""
    from repro.compilerlite import gen_arith_kernel, gen_unfused_arith
    from repro.ra.expr import Const, Field

    disc_price = Field("price") * (Const(1.0) - Field("discount"))
    charge = (Field("price") * (Const(1.0) - Field("discount"))
              * (Const(1.0) + Field("tax")))
    assignments = [("disc_price", disc_price), ("charge", charge)]

    def measure():
        fused = gen_arith_kernel(assignments)
        unfused = gen_unfused_arith(assignments)
        return {
            "fused_o0": fused.count(),
            "fused_o3": optimize(fused).count(),
            "unfused_o0": sum(p.count() for p in unfused),
            "unfused_o3": sum(optimize(p).count() for p in unfused),
        }

    t = benchmark.pedantic(measure, rounds=3, iterations=1)
    print_header("Table III (arith extension)",
                 "Q1's fused arithmetic: CSE across assignments", device)
    print(format_table(
        ["config", "inst # (O0)", "inst # (O3)"],
        [["separate kernels", t["unfused_o0"], t["unfused_o3"]],
         ["fused kernel", t["fused_o0"], t["fused_o3"]]], width=20))
    assert t["fused_o3"] < t["unfused_o3"]
    assert t["fused_o3"] < t["fused_o0"]

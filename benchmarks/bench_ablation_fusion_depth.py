"""Ablation: how deep should fusion go? (the SS III-C register caveat)

"Fusing too many kernels may cause problems [because of] increased
register (and shared memory) pressure.  This can increase spill code or
have adverse cache effects."

This ablation fuses ever-longer SELECT chains (distinct predicate fields,
so register demand grows) and reports compute throughput plus the cost
model's marginal decision at each depth.
"""

from repro.bench import format_table, print_header
from repro.core.cost import FusionCostModel
from repro.core.opmodels import chain_for_region
from repro.plans import Plan
from repro.ra import Field

N = 1 << 22
MAX_DEPTH = 12


def _measure(device):
    plan = Plan()
    node = plan.source("in", row_nbytes=4)
    nodes = []
    for i in range(MAX_DEPTH):
        node = plan.select(node, Field(f"c{i}") < i + 1, name=f"s{i}")
        nodes.append(node)

    cm = FusionCostModel(device)
    rows = []
    for depth in range(2, MAX_DEPTH + 1):
        chain = chain_for_region(nodes[:depth])
        regs = max(k.regs_per_thread for k in chain.kernels)
        fused_t = cm.region_time(nodes[:depth], N)
        unfused_t = cm.unfused_time(nodes[:depth], N)
        decision = cm.evaluate(nodes[:depth - 1], nodes[depth - 1], N)
        rows.append([depth, regs, fused_t * 1e3, unfused_t * 1e3,
                     unfused_t / fused_t,
                     "FUSE" if decision.fuse else "stop"])
    return rows


def test_ablation_fusion_depth(benchmark, device):
    rows = benchmark.pedantic(lambda: _measure(device), rounds=1, iterations=1)

    print_header("Ablation: fusion depth",
                 "register pressure vs fused-chain length", device)
    print(format_table(
        ["depth", "regs/thread", "fused ms", "unfused ms", "speedup",
         "marginal decision"], rows, width=14))

    speedups = {r[0]: r[4] for r in rows}
    regs = {r[0]: r[1] for r in rows}
    decisions = {r[0]: r[5] for r in rows}

    # shallow fusion always wins
    assert speedups[2] > 1.3
    # register demand grows monotonically with depth
    assert all(regs[d + 1] > regs[d] for d in range(2, MAX_DEPTH))
    # past the Fermi budget the advantage collapses and the model says stop
    deep = max(speedups)
    assert any(d == "stop" for d in decisions.values())
    stop_depth = min(d for d, v in decisions.items() if v == "stop")
    assert speedups[stop_depth] < deep

"""Ablation: fusion vs PCIe compression (the He et al. alternative).

The paper's related work cites data compression as the other answer to the
PCIe bottleneck.  This ablation compares the two on the 2x SELECT
microbenchmark and shows they compose: fusion removes compute and
intermediate traffic, compression shrinks the (dominant) wire bytes.
"""

from repro.bench import format_table, print_header
from repro.runtime.compressed import run_compressed_select_chain
from repro.simgpu.compression import BITPACK, DICT, NONE, RLE

N = 200_000_000


def _measure():
    rows = []
    for scheme in (NONE, DICT, BITPACK, RLE):
        for fused in (False, True):
            r = run_compressed_select_chain(N, 2, 0.5, scheme, fused=fused)
            rows.append([scheme.name, "fused" if fused else "unfused",
                         r.makespan * 1e3, r.throughput / 1e9])
    return rows


def test_ablation_compression_vs_fusion(benchmark, device):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Ablation: compression x fusion",
                 "2x SELECT with compressed PCIe transfers", device)
    print(format_table(["codec", "kernels", "ms", "GB/s"], rows, width=12))

    tput = {(r[0], r[1]): r[3] for r in rows}
    # compression helps, fusion helps, together they beat either alone
    assert tput[("rle", "fused")] > tput[("none", "fused")]
    assert tput[("rle", "fused")] > tput[("rle", "unfused")]
    assert tput[("none", "fused")] > tput[("none", "unfused")]
    # stronger codecs help more (the workload is transfer-bound)
    assert tput[("rle", "fused")] > tput[("dict", "fused")]

"""Ablation: fission schedule tuning -- stream count and segment size.

The paper states at least three streams are needed to fully exploit the
C2070's two copy engines + compute overlap (SS IV-B).  This ablation
verifies that claim quantitatively and sweeps the segment size, showing
the trade-off between per-segment overheads (small segments) and
fill/drain pipeline bubbles (huge segments).
"""

from repro.bench import format_series, format_table, print_header
from repro.core.fission import FissionConfig
from repro.runtime import ExecutionConfig, Strategy
from repro.runtime.select_chain import run_select_chain

N = 1_000_000_000


def _measure():
    by_streams = []
    for streams in (1, 2, 3, 4, 6):
        cfg = ExecutionConfig(
            strategy=Strategy.FISSION,
            fission=FissionConfig(num_streams=streams))
        r = run_select_chain(N, 1, 0.5, Strategy.FISSION, config=cfg)
        by_streams.append([streams, r.throughput / 1e9])

    by_segment = []
    for seg_mb in (4, 16, 48, 96, 256, 1024):
        cfg = ExecutionConfig(
            strategy=Strategy.FISSION,
            fission=FissionConfig(target_segment_bytes=seg_mb << 20))
        r = run_select_chain(N, 1, 0.5, Strategy.FISSION, config=cfg)
        by_segment.append([seg_mb, r.throughput / 1e9])
    return by_streams, by_segment


def test_ablation_fission_tuning(benchmark, device):
    by_streams, by_segment = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Ablation: fission tuning",
                 "stream count and segment size, 1G-element SELECT", device)
    print(format_table(["# streams", "GB/s"], by_streams, width=12))
    print(format_series("segment sweep", [r[0] for r in by_segment],
                        [r[1] for r in by_segment], unit="GB/s over seg MB"))

    tput = dict(by_streams)
    # the paper's claim: three streams needed for full overlap;
    # more than three adds nothing (two copy engines + one compute queue)
    assert tput[2] > tput[1]
    assert tput[3] > tput[2] * 0.999
    assert abs(tput[6] - tput[3]) / tput[3] < 0.05

    seg = dict(by_segment)
    best = max(seg.values())
    # mid-size segments are within a few % of the best; the 1 GiB segments
    # lose to fill/drain bubbles
    assert seg[96] > 0.95 * best
    assert seg[1024] < best

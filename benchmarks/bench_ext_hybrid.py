"""Extension: hybrid CPU+GPU execution (the paper's Ocelot future work).

"It is possible to execute fused kernels on both the CPU and GPU to fully
utilize the available computation power."  This bench splits the 2x SELECT
between the (PCIe-bound) GPU pipeline and the host CPU and measures the
gain over GPU-only execution at the balanced split.
"""

from repro.bench import format_table, print_header
from repro.runtime.hybrid import balance_split, run_hybrid_select

N = 1_000_000_000


def _measure():
    rows = []
    for frac in (0.0, 0.1, 0.2, None, 0.4, 0.6, 1.0):
        r = run_hybrid_select(N, cpu_fraction=frac)
        rows.append([
            "auto" if frac is None else f"{frac:.1f}",
            r.cpu_fraction, r.gpu_time * 1e3, r.cpu_time * 1e3,
            r.throughput / 1e9,
        ])
    return rows


def test_ext_hybrid_cpu_gpu(benchmark, device):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Extension: hybrid CPU+GPU",
                 "2x SELECT split across host and device", device)
    print(format_table(["cpu share", "actual", "gpu ms", "cpu ms", "GB/s"],
                       rows, width=12))

    tput = {r[0]: r[4] for r in rows}
    auto = tput["auto"]
    assert auto > tput["0.0"]          # beats GPU-only
    assert auto > tput["1.0"]          # beats CPU-only
    assert auto >= max(tput.values()) * 0.99  # the balanced split is best

    f = balance_split(N)
    assert 0.05 < f < 0.5  # CPU contributes a real but minority share

"""Figure 4(a): SELECT throughput, GPU vs 16-thread CPU, at 10/50/90%
selectivity over 32-bit integers.

Paper-reported average speedups: 2.88x (10%), 8.80x (50%), 8.35x (90%);
GPU curves around 15-25 GB/s, CPU single-digit GB/s; both improve as less
data is selected.
"""

import numpy as np

from repro.bench import PaperComparison, format_series, print_header
from repro.cpubase import cpu_select_throughput
from repro.runtime.select_chain import gpu_select_throughput

SIZES = [25_000_000, 50_000_000, 100_000_000, 200_000_000, 400_000_000]
SELECTIVITIES = [0.1, 0.5, 0.9]
PAPER_SPEEDUPS = {0.1: 2.88, 0.5: 8.80, 0.9: 8.35}


def _measure():
    gpu = {f: [gpu_select_throughput(n, f) / 1e9 for n in SIZES]
           for f in SELECTIVITIES}
    cpu = {f: [cpu_select_throughput(n, selectivity=f) / 1e9 for n in SIZES]
           for f in SELECTIVITIES}
    return gpu, cpu


def test_fig04a_select_gpu_vs_cpu(benchmark, device):
    gpu, cpu = benchmark.pedantic(_measure, rounds=3, iterations=1)

    print_header("Figure 4(a)", "SELECT throughput: GPU vs CPU", device)
    for f in SELECTIVITIES:
        print(format_series(f"GPU {int(f*100)}%", [n // 10**6 for n in SIZES],
                            gpu[f], unit="GB/s over Melem"))
    for f in SELECTIVITIES:
        print(format_series(f"CPU {int(f*100)}%", [n // 10**6 for n in SIZES],
                            cpu[f], unit="GB/s over Melem"))

    cmp = PaperComparison("Fig 4(a) average GPU/CPU speedup")
    for f in SELECTIVITIES:
        measured = float(np.mean([g / c for g, c in zip(gpu[f], cpu[f])]))
        cmp.add(f"speedup @ {int(f*100)}% selected", PAPER_SPEEDUPS[f], measured)
        assert measured > 1.0
    cmp.print()

    # shape assertions: GPU on top, both monotone in selectivity
    for f in SELECTIVITIES:
        assert all(g > c for g, c in zip(gpu[f], cpu[f]))
    assert gpu[0.1][-1] > gpu[0.5][-1] > gpu[0.9][-1]
    assert cpu[0.1][-1] > cpu[0.5][-1] > cpu[0.9][-1]

"""Ablation: fusion under device-memory pressure (Fig 7(a)/(b) mechanism).

The paper's first two fusion benefits are about the data footprint: without
fusion, intermediates may not fit next to the inputs and must round-trip
through host memory.  This ablation shrinks the simulated device memory and
measures how the forced round trips (spills) and end-to-end time grow for
the unfused pipeline while the fused one stays clean.
"""

import numpy as np

from repro.bench import format_table, print_header
from repro.plans import Plan
from repro.ra import Field, Relation
from repro.runtime import GpuRuntime


def _chain_plan():
    plan = Plan()
    node = plan.source("t", row_nbytes=8)
    for i, (f, thr, sel) in enumerate(
            [("k", 80, 0.8), ("v", 80, 0.8), ("k", 40, 0.5)]):
        node = plan.select(node, Field(f) < thr, selectivity=sel, name=f"s{i}")
    return plan


def _measure():
    rng = np.random.default_rng(7)
    n = 400_000
    rel = Relation({"k": rng.integers(0, 100, n).astype(np.int32),
                    "v": rng.integers(0, 100, n).astype(np.int32)})
    plan = _chain_plan()
    rows = []
    for factor in (4.0, 1.6, 1.3, 1.1):
        limit = int(rel.nbytes * factor)
        per = {}
        for fuse in (False, True):
            r = GpuRuntime(fuse=fuse, memory_limit=limit).run(plan, {"t": rel})
            per[fuse] = r
        rows.append([
            f"{factor:.1f}x input",
            per[False].spill_count, per[True].spill_count,
            per[False].makespan * 1e3, per[True].makespan * 1e3,
            per[False].makespan / per[True].makespan,
        ])
    return rows


def test_ablation_memory_pressure(benchmark, device):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Ablation: memory pressure",
                 "forced round trips vs device-memory budget", device)
    print(format_table(
        ["device mem", "spills unfused", "spills fused",
         "unfused ms", "fused ms", "fusion speedup"], rows, width=15))

    # with room, no spills either way
    assert rows[0][1] == rows[0][2] == 0
    # under pressure, unfused spills more and fusion's advantage grows
    assert rows[-1][1] > rows[-1][2]
    assert rows[-1][5] > rows[0][5]

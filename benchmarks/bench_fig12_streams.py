"""Figure 12: concurrently executing two independent SELECTs via the
Stream Pool vs running them serially.

Paper: the half-resource configuration ("new") is ~2x slower than the
full-resource one ("old"); concurrent streams beat "new" everywhere and
beat "old" only below ~8M total elements.
"""

from repro.bench import PaperComparison, format_series, print_header
from repro.runtime.concurrent import run_two_selects

SIZES_SMALL = [2, 4, 6, 9, 14, 19, 24, 29, 34]       # Melem (lower panel)
SIZES_LARGE = [50, 100, 200, 300, 400]               # Melem (upper panel)


def _measure():
    out = {}
    for mode in ("old", "new", "stream"):
        out[mode] = [run_two_selects(m * 10**6, mode).throughput / 1e9
                     for m in SIZES_SMALL + SIZES_LARGE]
    return out


def test_fig12_concurrent_streams(benchmark, device):
    curves = benchmark.pedantic(_measure, rounds=1, iterations=1)
    xs = SIZES_SMALL + SIZES_LARGE

    print_header("Figure 12", "two independent SELECTs: stream vs no-stream",
                 device)
    for mode in ("stream", "no stream (new)", "no stream (old)"):
        key = mode.split("(")[-1].rstrip(")") if "(" in mode else "stream"
        print(format_series(mode, xs, curves[key], unit="GB/s over Melem"))

    # locate the crossover where old overtakes stream
    crossover = None
    for x, s, o in zip(xs, curves["stream"], curves["old"]):
        if o > s:
            crossover = x
            break

    cmp = PaperComparison("Fig 12")
    cmp.add("old/new throughput ratio at 200M (x)", 2.0,
            curves["old"][-2] / curves["new"][-2])
    cmp.add("stream-vs-old crossover (Melem)", 8.0, float(crossover or -1))
    cmp.print()

    assert crossover is not None and 2 <= crossover <= 30
    # stream always beats new; old wins at the largest size
    for i in range(len(xs)):
        assert curves["stream"][i] > curves["new"][i]
    assert curves["old"][-1] > curves["stream"][-1]
    assert curves["stream"][0] > curves["old"][0]

"""Figure 16: combining fusion and fission on two back-to-back SELECTs over
a large volume of data.

Paper: fusion+fission is on average +41.4% over serial, +31.3% over fusion
only, and +10.1% over fission only.

Reproduction note (see EXPERIMENTS.md): under an ideal-overlap stream
model the pipelined execution is PCIe-bound, so fusing the kernels inside
the pipeline adds little on top of fission -- the measured fusion+fission
vs fission gap is well below the paper's +10.1%, while the other two
comparisons land close.
"""

from repro.bench import PaperComparison, format_series, print_header
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain

SIZES = [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000]  # Melem
METHODS = [Strategy.FUSED_FISSION, Strategy.FISSION, Strategy.FUSED,
           Strategy.SERIAL]
LABEL = {Strategy.FUSED_FISSION: "fusion+fission", Strategy.FISSION: "fission",
         Strategy.FUSED: "fusion", Strategy.SERIAL: "serial"}


def _measure():
    tput = {m: [] for m in METHODS}
    for melem in SIZES:
        n = melem * 10**6
        for m in METHODS:
            tput[m].append(run_select_chain(n, 2, 0.5, m).throughput / 1e9)
    return tput


def test_fig16_fusion_plus_fission(benchmark, device):
    tput = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 16", "serial vs fusion vs fission vs fusion+fission, "
                 "2x SELECT, > GPU-memory data", device)
    for m in METHODS:
        print(format_series(LABEL[m], SIZES, tput[m], unit="GB/s over Melem"))

    def avg_gain(a, b):
        pairs = zip(tput[a], tput[b])
        return sum(x / y - 1 for x, y in pairs) / len(SIZES) * 100

    cmp = PaperComparison("Fig 16 average gains of fusion+fission")
    cmp.add("vs serial (%)", 41.4, avg_gain(Strategy.FUSED_FISSION, Strategy.SERIAL))
    cmp.add("vs fusion only (%)", 31.3, avg_gain(Strategy.FUSED_FISSION, Strategy.FUSED))
    cmp.add("vs fission only (%)", 10.1, avg_gain(Strategy.FUSED_FISSION, Strategy.FISSION))
    cmp.print()

    for i in range(len(SIZES)):
        assert tput[Strategy.FUSED_FISSION][i] >= tput[Strategy.FISSION][i] * 0.999
        assert tput[Strategy.FISSION][i] > tput[Strategy.FUSED][i]
        assert tput[Strategy.FUSED][i] > tput[Strategy.SERIAL][i]
    assert avg_gain(Strategy.FUSED_FISSION, Strategy.SERIAL) > 30

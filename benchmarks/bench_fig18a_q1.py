"""Figure 18(a): TPC-H Q1 -- not optimized vs fusion vs fusion+fission.

Paper: the SORT (which can neither fuse nor fission) takes ~71% of the
baseline; fusion contributes 1.25x, fission another 1.01x, for a 26.5%
total improvement; fusing the SELECT + 6 JOINs block alone is 3.18x.
"""

from repro.bench import PaperComparison, format_table, print_header
from repro.runtime import ExecutionConfig, Strategy
from repro.tpch import build_q1_plan, q1_source_rows

N_LINEITEM = 6_000_000  # scale factor ~1


def _measure(executor):
    plan = build_q1_plan()
    rows = q1_source_rows(N_LINEITEM)
    res = {s: executor.run(plan, rows, ExecutionConfig(strategy=s))
           for s in (Strategy.SERIAL, Strategy.FUSED, Strategy.FUSED_FISSION)}

    serial = res[Strategy.SERIAL]
    sort_share = sum(v for k, v in serial.kernel_times().items()
                     if "sort" in k) / serial.makespan

    cfg = dict(include_transfers=False)
    cs = executor.run(plan, rows, ExecutionConfig(strategy=Strategy.SERIAL, **cfg))
    cf = executor.run(plan, rows, ExecutionConfig(strategy=Strategy.FUSED, **cfg))

    def block(r):
        return sum(v for k, v in r.kernel_times().items()
                   if ("sel" in k or "join" in k) and "sort" not in k)

    return res, sort_share, block(cs) / block(cf)


def test_fig18a_q1(benchmark, executor, device):
    res, sort_share, block_speedup = benchmark.pedantic(
        lambda: _measure(executor), rounds=1, iterations=1)

    base = res[Strategy.SERIAL].makespan
    rows = [[name, res[s].makespan / base]
            for name, s in [("Not Optimized", Strategy.SERIAL),
                            ("Fusion", Strategy.FUSED),
                            ("Fusion + Fission", Strategy.FUSED_FISSION)]]
    print_header("Figure 18(a)", "TPC-H Q1 normalized execution time", device)
    print(format_table(["method", "normalized time"], rows, width=20))

    fusion_x = base / res[Strategy.FUSED].makespan
    fission_x = res[Strategy.FUSED].makespan / res[Strategy.FUSED_FISSION].makespan
    total_pct = (base / res[Strategy.FUSED_FISSION].makespan - 1) * 100

    cmp = PaperComparison("Fig 18(a) TPC-H Q1")
    cmp.add("SORT share of baseline (%)", 71.0, sort_share * 100)
    cmp.add("fusion speedup (x)", 1.25, fusion_x)
    cmp.add("fission extra speedup (x)", 1.01, fission_x)
    cmp.add("total improvement (%)", 26.5, total_pct)
    cmp.add("fused SELECT+6-JOIN block speedup (x)", 3.18, block_speedup)
    cmp.print()

    assert 0.60 < sort_share < 0.85
    assert 1.05 < fusion_x < 1.5
    assert 1.0 < fission_x < 1.15
    assert 10 < total_pct < 45
    assert 2.0 < block_speedup < 5.0

"""Benchmark-suite configuration.

Each ``bench_*`` module reproduces one table or figure of the paper: it
runs the simulation at the paper's parameters, prints the same series/rows
the paper reports plus a paper-vs-measured comparison, and times the
simulation itself through pytest-benchmark (the benchmark metric is
simulator throughput, not simulated GPU time).
"""

import pytest


@pytest.fixture(scope="session")
def device():
    from repro.simgpu import DeviceSpec
    return DeviceSpec()


@pytest.fixture(scope="session")
def executor(device):
    from repro.runtime import Executor
    return Executor(device)

"""Benchmark-suite configuration.

Each ``bench_*`` module reproduces one table or figure of the paper: it
runs the simulation at the paper's parameters, prints the same series/rows
the paper reports plus a paper-vs-measured comparison, and times the
simulation itself through pytest-benchmark (the benchmark metric is
simulator throughput, not simulated GPU time).

Pass ``--validate`` to sanitize every simulated schedule against the
device-model invariants (see ``docs/VALIDATION.md``) while the benchmarks
run; any violation fails the scenario.
"""

import pytest


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--validate", action="store_true", default=False,
            help="audit every simulated schedule with the timeline "
                 "sanitizer (repro.validate) during benchmark runs")
    except ValueError:
        pass  # already registered by another conftest
    try:
        parser.addoption(
            "--json", metavar="PATH", default=None,
            help="machine-readable output: benchmarks that support it "
                 "write BENCH_<experiment>.json reports under PATH (a "
                 "directory) or to PATH itself (a file)")
    except ValueError:
        pass


@pytest.fixture(scope="session", autouse=True)
def _bench_json_target(request):
    """Publish the --json target to the harness (repro.bench.emit_json)."""
    target = request.config.getoption("--json", default=None)
    if not target:
        yield
        return
    mp = pytest.MonkeyPatch()
    from repro.bench import JSON_ENV
    mp.setenv(JSON_ENV, target)
    yield
    mp.undo()


@pytest.fixture(scope="session", autouse=True)
def _sanitize_benchmark_schedules(request):
    """When --validate is given, audit every engine run in the session."""
    if not request.config.getoption("--validate", default=False):
        yield
        return

    from repro.simgpu.engine import SimEngine
    from repro.validate import validate_timeline

    mp = pytest.MonkeyPatch()
    engine_run = SimEngine.run

    def checked_run(self, streams, timeline=None, start_time=0.0):
        tl = engine_run(self, streams, timeline, start_time)
        if not self.check:
            validate_timeline(tl, self.device).raise_if_failed()
        return tl

    mp.setattr(SimEngine, "run", checked_run)
    yield
    mp.undo()


@pytest.fixture(scope="session")
def device():
    from repro.simgpu import DeviceSpec
    return DeviceSpec()


@pytest.fixture(scope="session")
def executor(device, request):
    from repro.runtime import Executor
    return Executor(device,
                    check=request.config.getoption("--validate", default=False))

"""Figure 11(b): sensitivity of kernel fusion to the data selection rate.

Paper: "the benefits of kernel fusion increase with the fraction of data
selected ... data movement optimization has a more drastic effect when
there is more data."
"""

from repro.bench import PaperComparison, format_series, print_header
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain

SIZES = [25_000_000, 100_000_000, 200_000_000, 400_000_000]
RATES = [0.1, 0.9]


def _measure():
    curves = {}
    gains = {}
    for f in RATES:
        fused, unfused = [], []
        for n in SIZES:
            rf = run_select_chain(n, 2, f, Strategy.FUSED, include_transfers=False)
            ru = run_select_chain(n, 2, f, Strategy.SERIAL, include_transfers=False)
            fused.append(n * 4 / rf.makespan / 1e9)
            unfused.append(n * 4 / ru.makespan / 1e9)
        curves[f"fusion ({int(f*100)}%)"] = fused
        curves[f"no fusion ({int(f*100)}%)"] = unfused
        gains[f] = sum(a / b for a, b in zip(fused, unfused)) / len(SIZES)
    return curves, gains


def test_fig11b_selection_rate(benchmark, device):
    curves, gains = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 11(b)", "fusion benefit vs data selection rate", device)
    xs = [n // 10**6 for n in SIZES]
    for name, ys in curves.items():
        print(format_series(name, xs, ys, unit="GB/s over Melem"))

    cmp = PaperComparison("Fig 11(b)")
    cmp.add("fusion gain at 90% selected > at 10%: ratio", 1.0,
            gains[0.9] / gains[0.1])
    cmp.print()

    assert gains[0.9] > gains[0.1] > 1.0
    # absolute throughput still higher at low selectivity (less data moved)
    assert curves["fusion (10%)"][-1] > curves["fusion (90%)"][-1]

"""Figure 14: kernel fission on one SELECT over data exceeding GPU memory.

Paper: pipelining H2D / compute / D2H across >= 3 streams yields +36.9%
throughput over the chunked serial baseline for 0.5-4 G elements (the 6 GB
C2070 holds < 1.5 G 32-bit integers).
"""

from repro.bench import PaperComparison, format_series, print_header
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain

SIZES = [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000]  # Melem


def _measure():
    fission, serial = [], []
    for m in SIZES:
        n = m * 10**6
        rf = run_select_chain(n, 1, 0.5, Strategy.FISSION)
        rs = run_select_chain(n, 1, 0.5, Strategy.SERIAL)
        fission.append(rf.throughput / 1e9)
        serial.append(rs.throughput / 1e9)
    return fission, serial


def test_fig14_fission(benchmark, device):
    fission, serial = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 14", "kernel fission vs serial, > GPU-memory data",
                 device)
    print(format_series("fission", SIZES, fission, unit="GB/s over Melem"))
    print(format_series("no fission", SIZES, serial, unit="GB/s over Melem"))

    gain = sum(f / s - 1 for f, s in zip(fission, serial)) / len(SIZES) * 100
    cmp = PaperComparison("Fig 14")
    cmp.add("fission throughput gain (%)", 36.9, gain)
    cmp.print()

    assert 20 < gain < 60
    for f, s in zip(fission, serial):
        assert f > s
    # the device memory is genuinely exceeded at these sizes
    assert SIZES[-1] * 10**6 * 4 > device.global_mem_bytes

"""Extension: TPC-H Q6 -- whole-query fusion (no barrier anywhere).

Q6 is the limiting case of the paper's Figure-2 patterns: three SELECTs,
ARITH, and a global AGGREGATE chain with purely elementwise dependences,
so the *entire query* fuses into a single kernel.  This bench measures the
upper bound of fusion's compute benefit on a real query shape and shows
that, end to end, the query then becomes purely PCIe-bound -- the paper's
motivation for combining fusion with fission.
"""

from repro.bench import PaperComparison, format_table, print_header
from repro.runtime import ExecutionConfig, Strategy
from repro.simgpu import EventKind
from repro.tpch import build_q6_plan, q6_source_rows

N = 6_000_000


def _measure(executor):
    plan = build_q6_plan()
    rows = q6_source_rows(N)
    out = {}
    for s in (Strategy.SERIAL, Strategy.FUSED, Strategy.FUSED_FISSION):
        out[s] = executor.run(plan, rows, ExecutionConfig(strategy=s))
    compute = {}
    for s in (Strategy.SERIAL, Strategy.FUSED):
        compute[s] = executor.run(
            plan, rows, ExecutionConfig(strategy=s, include_transfers=False))
    return out, compute


def test_ext_q6_whole_query_fusion(benchmark, executor, device):
    out, compute = benchmark.pedantic(lambda: _measure(executor),
                                      rounds=1, iterations=1)

    print_header("Extension: TPC-H Q6", "whole-query fusion into one kernel",
                 device)
    base = out[Strategy.SERIAL].makespan
    rows = [
        ["not optimized", out[Strategy.SERIAL].makespan * 1e3, 1.0,
         len(out[Strategy.SERIAL].timeline.filter(EventKind.KERNEL))],
        ["fusion", out[Strategy.FUSED].makespan * 1e3,
         out[Strategy.FUSED].makespan / base,
         len(out[Strategy.FUSED].timeline.filter(EventKind.KERNEL))],
        ["fusion+fission", out[Strategy.FUSED_FISSION].makespan * 1e3,
         out[Strategy.FUSED_FISSION].makespan / base,
         len(out[Strategy.FUSED_FISSION].timeline.filter(EventKind.KERNEL))],
    ]
    print(format_table(["method", "ms", "normalized", "# kernels"], rows,
                       width=15))

    compute_gain = (compute[Strategy.SERIAL].makespan
                    / compute[Strategy.FUSED].makespan)
    total_gain = (base / out[Strategy.FUSED_FISSION].makespan - 1) * 100
    io_share = out[Strategy.FUSED].io_time / out[Strategy.FUSED].makespan
    cmp = PaperComparison("Q6 extension (no paper baseline; bounds)")
    cmp.add("compute-only fusion speedup (x)", 1.8, compute_gain)
    cmp.add("fused end-to-end PCIe share (%)", 90.0, io_share * 100)
    cmp.add("fusion+fission total gain (%)", 10.0, total_gain)
    cmp.print()

    assert len(out[Strategy.FUSED].timeline.filter(EventKind.KERNEL)) == 1
    assert compute_gain > 1.4
    # once fused, Q6 is almost pure PCIe: the remaining gain from fission
    # is bounded by the small compute it can hide
    assert io_share > 0.75
    assert total_gain > 4

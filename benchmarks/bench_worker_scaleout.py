"""Worker-pool scale-out + the tracked DES hot-loop benchmark.

Two experiments, one tracked report (``BENCH_workers.json``):

**Pool sweep** -- the serving subsystem's scale-out curve.  A fixed seeded
trace is served with ``workers = devices = N`` for N in the sweep: each
warm worker process owns one simulated device lane, so goodput rises with
pool size while every dispatch still flows through the idempotent outbox.
CI gates that goodput is strictly increasing across the sweep.  At a
*fixed* device count the pool changes nothing by design -- the sweep also
serves one workers=4/devices=1 run and asserts its summary is
byte-identical to the workers=1 run (the determinism contract of
docs/SERVING.md).

**DES hot loop** -- wall-time throughput of the simulator's discrete-event
core (``repro.simgpu.engine.SimEngine``), the loop every dispatch (and
every worker) spends its time in: heap-ordered completions over slotted
command records.  Reported as processed events/second and the
simulated-time : wall-time ratio, with the pre-optimization measurements
pinned in the payload so the speedup stays visible in the tracked JSON:

==========  ============  =========
variant     events/sec    sim/wall
==========  ============  =========
before      58,562        8.21
after       86,660        12.15
==========  ============  =========

(before = per-command ``__dict__`` hierarchy, recursive DeviceSpec
hashing, O(streams^2) head scans; after = slotted commands, cached
device hash + memoized occupancy, counter-based head scan -- PR 8.)
"""

import json
import time

from repro.bench import emit_json, format_table, json_output_path, print_header
from repro.serve import ArrivalProcess, QueryServer, ServeConfig
from repro.simgpu.compute import KernelLaunchSpec, default_grid
from repro.simgpu.engine import KernelCommand, SimEngine, SimStream, TransferCommand
from repro.simgpu.pcie import Direction

WORKER_SWEEP = (1, 2, 4)
QPS = 120
DURATION_S = 1.0
SEED = 11

#: DES microbench shape: enough streams and commands that the event loop
#: (not setup) dominates the wall time
DES_STREAMS = 8
DES_COMMANDS_PER_STREAM = 600

#: pre-optimization baseline, measured on this machine at the same shape
#: (kept in the payload so the tracked JSON shows the hot-loop delta)
DES_BEFORE = {"events_per_s": 58_562.0, "sim_wall_ratio": 8.21}


def _serve(trace, workers, devices):
    cfg = ServeConfig(mode="batched", queue_capacity=4096,
                      workers=workers, devices=devices, pool_seed=SEED)
    server = QueryServer(config=cfg)
    metrics = server.run(trace=list(trace)).metrics
    server.close()
    return metrics, server.backend_stats


def _des_streams(device):
    streams = []
    for s in range(DES_STREAMS):
        stream = SimStream(stream_id=s)
        for k in range(DES_COMMANDS_PER_STREAM):
            if k % 5 == 0:
                stream.enqueue(TransferCommand(
                    tag=f"h2d.{s}.{k}", nbytes=float(1 << 16),
                    direction=Direction.H2D))
            elif k % 7 == 0:
                stream.enqueue(TransferCommand(
                    tag=f"d2h.{s}.{k}", nbytes=float(1 << 14),
                    direction=Direction.D2H))
            else:
                n = 1 << 14
                ctas, tpc = default_grid(n, device)
                stream.enqueue(KernelCommand(
                    tag=f"k.{s}.{k}",
                    spec=KernelLaunchSpec(
                        name=f"k{k % 11}", num_elements=n, num_ctas=ctas,
                        threads_per_cta=tpc, regs_per_thread=16,
                        bytes_read=float(4 * n), bytes_written=float(4 * n),
                        instructions=float(10 * n))))
        streams.append(stream)
    return streams


def _des_hot_loop(device, rounds=3):
    """Best-of-N wall time of one SimEngine run over the fixed program."""
    best = None
    for _ in range(rounds):
        streams = _des_streams(device)
        engine = SimEngine(device)
        t0 = time.perf_counter()
        timeline = engine.run(streams)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, timeline)
    wall, timeline = best
    events = len(timeline.events)
    return {
        "streams": DES_STREAMS,
        "commands_per_stream": DES_COMMANDS_PER_STREAM,
        "events": events,
        "wall_s": round(wall, 6),
        "events_per_s": round(events / wall, 1),
        "sim_s": round(timeline.end_time, 6),
        "sim_wall_ratio": round(timeline.end_time / wall, 2),
        "before": dict(DES_BEFORE),
    }


def _measure():
    trace = ArrivalProcess(qps=QPS, duration_s=DURATION_S,
                           seed=SEED).trace()
    sweep = []
    for n in WORKER_SWEEP:
        metrics, stats = _serve(trace, workers=n, devices=n)
        sweep.append((n, metrics, stats))
    # determinism cross-check at fixed shape: pooled == in-process
    flat_base, _ = _serve(trace, workers=1, devices=1)
    flat_pool, _ = _serve(trace, workers=4, devices=1)
    identical = (json.dumps(flat_base.summary(), sort_keys=True)
                 == json.dumps(flat_pool.summary(), sort_keys=True))
    return sweep, identical


def test_worker_scaleout(benchmark, device):
    (sweep, identical) = benchmark.pedantic(_measure, rounds=1,
                                            iterations=1)
    des = _des_hot_loop(device)

    print_header("Worker pool: goodput vs pool size",
                 "workers = devices = N; warm processes, idempotent "
                 "dispatch outbox", device)
    rows = []
    payload = {"worker_sweep": list(WORKER_SWEEP), "qps": QPS,
               "duration_s": DURATION_S, "seed": SEED,
               "pool_identical_at_fixed_devices": identical,
               "points": [], "des_hot_loop": des}
    for n, m, stats in sweep:
        rows.append([n, m.goodput_qps, m.latency.percentile(99) * 1e3,
                     m.completed_ok,
                     stats.get("outbox.recorded", m.batches),
                     stats.get("pool.kills", 0)])
        payload["points"].append({
            "workers": n, "devices": n,
            "pool": {k: v for k, v in stats.items()},
            "metrics": m.summary(),
        })
    print(format_table(
        ["workers", "goodput q/s", "p99 ms", "within SLO",
         "outbox recorded", "kills"], rows, width=15))
    print(f"pooled summary byte-identical at fixed devices: {identical}")
    print(f"DES hot loop: {des['events_per_s']:,.0f} events/s "
          f"(before {DES_BEFORE['events_per_s']:,.0f}), "
          f"sim/wall {des['sim_wall_ratio']:.2f} "
          f"(before {DES_BEFORE['sim_wall_ratio']:.2f})")

    out = emit_json("workers", payload,
                    path=json_output_path("workers") or "BENCH_workers.json")
    print(f"wrote {out}")

    assert identical, "worker pool changed summary bytes at fixed devices"
    goodputs = [m.goodput_qps for _, m, _ in sweep]
    assert all(b > a for a, b in zip(goodputs, goodputs[1:])), (
        f"goodput must rise strictly with pool size, got {goodputs}")
    # the hot loop must stay well clear of the pre-optimization plateau
    assert des["events_per_s"] > DES_BEFORE["events_per_s"]

"""Serving benchmark: offered load vs. goodput and tail latency.

A fixed seeded arrival trace is served twice at each offered load --
isolated per-query dispatch vs. memory-aware shared-scan batching
(docs/SERVING.md) -- so the batching win is measured query-for-query on
identical work.  Deadlines are set loose and the queue deep, so neither
policy sheds: both complete the whole trace and goodput differences come
purely from how fast each drains the backlog (shared uploads + overlapped
per-query remainders vs. one upload per query).

Emits ``BENCH_serve.json`` (always; ``--json PATH`` redirects it), the
seed point of the serving perf trajectory.
"""

from repro.bench import emit_json, format_table, json_output_path, print_header
from repro.serve import ArrivalProcess, QueryServer, ServeConfig, TenantSpec

#: loose-SLO population: nothing sheds, so both policies serve the whole
#: trace and the comparison isolates scheduling efficiency
TENANTS = (
    TenantSpec("interactive", mix=(("q6", 0.6), ("sql_scan", 0.4)),
               weight=0.7, priority=0, deadline_s=120.0, elements=2_000_000),
    TenantSpec("reporting", mix=(("q1", 0.6), ("q21", 0.4)),
               weight=0.3, priority=1, deadline_s=120.0, elements=4_000_000),
)

QPS_SWEEP = (60, 120, 240)
DURATION_S = 1.0
SEED = 11


def _serve(trace, mode):
    cfg = ServeConfig(mode=mode, queue_capacity=4096)
    return QueryServer(config=cfg).run(trace=list(trace)).metrics


def _measure():
    points = []
    for qps in QPS_SWEEP:
        trace = ArrivalProcess(qps=qps, duration_s=DURATION_S,
                               tenants=TENANTS, seed=SEED).trace()
        by_mode = {mode: _serve(trace, mode)
                   for mode in ("isolated", "batched")}
        points.append((qps, len(trace), by_mode))
    return points


def test_serve_throughput(benchmark, device):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Serving: offered load vs goodput",
                 "isolated per-query dispatch vs shared-scan batching",
                 device)
    rows = []
    payload = {"qps_sweep": list(QPS_SWEEP), "duration_s": DURATION_S,
               "seed": SEED, "points": []}
    for qps, n_offered, by_mode in points:
        iso, bat = by_mode["isolated"], by_mode["batched"]
        rows.append([
            qps, n_offered,
            iso.goodput_qps, bat.goodput_qps,
            iso.latency.percentile(99) * 1e3,
            bat.latency.percentile(99) * 1e3,
            bat.mean_batch_size,
        ])
        payload["points"].append({
            "offered_qps": qps,
            "offered_queries": n_offered,
            "isolated": iso.summary(),
            "batched": bat.summary(),
        })
    print(format_table(
        ["offered qps", "queries", "iso good q/s", "bat good q/s",
         "iso p99 ms", "bat p99 ms", "batch size"], rows, width=13))

    out = emit_json("serve", payload,
                    path=json_output_path("serve") or "BENCH_serve.json")
    print(f"wrote {out}")

    for qps, _, by_mode in points:
        iso, bat = by_mode["isolated"], by_mode["batched"]
        # same completed set, so higher goodput == faster drain; the batched
        # schedule must strictly win at every offered load
        assert bat.completed_ok == iso.completed_ok
        assert bat.goodput_qps > iso.goodput_qps, f"qps={qps}"
    # batching leverage grows as queues deepen
    assert points[-1][2]["batched"].mean_batch_size > 1.5

"""Figure 9: execution-time breakdown of the 2x SELECT methods into
input/output transfer, intermediate round trip, and GPU computation.

Paper observations: PCIe time dominates every method; input/output time is
identical across methods; the round trip is ~54% of the with-round-trip
total and is entirely eliminated by keeping data on the GPU or fusing.
"""

from repro.bench import PaperComparison, format_table, print_header
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain

SIZES = [4_194_304, 205_520_896, 415_236_096]
METHODS = [Strategy.WITH_ROUND_TRIP, Strategy.SERIAL, Strategy.FUSED]
LABEL = {Strategy.WITH_ROUND_TRIP: "w/ round trip",
         Strategy.SERIAL: "w/o round trip", Strategy.FUSED: "fused"}


def _measure():
    rows = []
    shares = []
    for n in SIZES:
        base = None
        for m in METHODS:
            r = run_select_chain(n, 2, 0.5, m)
            total = r.makespan
            if base is None:
                base = total
            rows.append([
                f"{n/1e6:.0f}M", LABEL[m],
                r.io_time / base, r.roundtrip_time / base,
                r.compute_time / base, total / base,
            ])
            if m is Strategy.WITH_ROUND_TRIP:
                shares.append(r.roundtrip_time / total)
    return rows, shares


def test_fig09_breakdown(benchmark, device):
    rows, rt_shares = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 9", "execution-time breakdown (normalized to "
                 "w/ round trip)", device)
    print(format_table(
        ["elements", "method", "input/output", "round trip", "compute", "total"],
        rows, width=14))

    avg_rt = sum(rt_shares) / len(rt_shares)
    cmp = PaperComparison("Fig 9")
    cmp.add("round-trip share of w/-round-trip total (%)", 54.0, avg_rt * 100)
    cmp.print()

    # the structural claims
    by_size = {}
    for r in rows:
        by_size.setdefault(r[0], {})[r[1]] = r
    for size, methods in by_size.items():
        io = [m[2] for m in methods.values()]
        assert max(io) - min(io) < 0.01 * max(io)   # same i/o everywhere
        assert methods["w/ round trip"][3] > 0
        assert methods["w/o round trip"][3] == 0
        assert methods["fused"][3] == 0
        assert methods["fused"][4] < methods["w/o round trip"][4]  # less compute
    assert 0.35 < avg_rt < 0.65

"""Figure 11(a): sensitivity of fusion to the number of fused kernels.

Paper: fusing three SELECTs achieves 2.35x throughput vs. unfused; fusing
two achieves 1.80x (GPU compute only) -- more fusion, more benefit.
"""

from repro.bench import PaperComparison, format_series, print_header
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain

SIZES = [25_000_000, 100_000_000, 200_000_000, 400_000_000]
PAPER = {2: 1.80, 3: 2.35}


def _measure():
    curves = {}
    speedups = {}
    for k in (2, 3):
        fused, unfused = [], []
        for n in SIZES:
            rf = run_select_chain(n, k, 0.5, Strategy.FUSED, include_transfers=False)
            ru = run_select_chain(n, k, 0.5, Strategy.SERIAL, include_transfers=False)
            fused.append(n * 4 / rf.makespan / 1e9)
            unfused.append(n * 4 / ru.makespan / 1e9)
        curves[f"fusion {k} SELECTs"] = fused
        curves[f"no fusion {k} SELECTs"] = unfused
        speedups[k] = sum(f / u for f, u in zip(fused, unfused)) / len(SIZES)
    return curves, speedups


def test_fig11a_number_of_fused_kernels(benchmark, device):
    curves, speedups = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 11(a)", "sensitivity to the number of fused kernels",
                 device)
    xs = [n // 10**6 for n in SIZES]
    for name, ys in curves.items():
        print(format_series(name, xs, ys, unit="GB/s over Melem"))

    cmp = PaperComparison("Fig 11(a) fused-vs-unfused throughput ratio")
    for k in (2, 3):
        cmp.add(f"fusing {k} SELECTs (x)", PAPER[k], speedups[k])
    cmp.print()

    assert speedups[3] > speedups[2] > 1.3
    for i in range(len(SIZES)):
        assert curves["fusion 3 SELECTs"][i] > curves["fusion 2 SELECTs"][i] * 0.95

"""Figure 8: two back-to-back SELECTs (50% each) under three methods.

(a) end-to-end throughput of *with round trip*, *without round trip*, and
*fused* -- paper averages: fused +49.9% over with-round-trip, +6.2% over
without-round-trip.
(b) GPU-compute-only comparison -- paper: fused +79.9% over unfused.

Note (recorded in EXPERIMENTS.md): the paper's own Fig 9 breakdown (round
trip = 54% of the with-round-trip total) implies a larger fused advantage
over with-round-trip than its quoted +49.9% average; our simulator
reproduces the breakdown, so the measured (a) ratio lands above the quoted
average.
"""

import numpy as np

from repro.bench import PaperComparison, format_series, print_header
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain

SIZES = [4_194_304, 50_000_000, 100_000_000, 205_520_896, 415_236_096]
METHODS = [Strategy.WITH_ROUND_TRIP, Strategy.SERIAL, Strategy.FUSED]
LABEL = {Strategy.WITH_ROUND_TRIP: "w/ round trip",
         Strategy.SERIAL: "w/o round trip", Strategy.FUSED: "fused"}


def _measure():
    tput = {m: [] for m in METHODS}
    compute = {m: [] for m in METHODS}
    for n in SIZES:
        for m in METHODS:
            r = run_select_chain(n, 2, 0.5, m)
            tput[m].append(r.throughput / 1e9)
            rc = run_select_chain(n, 2, 0.5, m, include_transfers=False)
            compute[m].append(n * 4 / rc.makespan / 1e9)
    return tput, compute


def test_fig08_fusion_throughput(benchmark, device):
    tput, compute = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 8(a)", "2x SELECT end-to-end throughput", device)
    xs = [n // 10**6 for n in SIZES]
    for m in METHODS:
        print(format_series(LABEL[m], xs, tput[m], unit="GB/s over Melem"))

    def avg_gain(a, b):
        return float(np.mean([x / y - 1 for x, y in zip(tput[a], tput[b])])) * 100

    cmp = PaperComparison("Fig 8(a) average throughput gains")
    cmp.add("fused vs w/ round trip (%)", 49.9,
            avg_gain(Strategy.FUSED, Strategy.WITH_ROUND_TRIP))
    cmp.add("fused vs w/o round trip (%)", 6.2,
            avg_gain(Strategy.FUSED, Strategy.SERIAL))
    cmp.print()

    print_header("Figure 8(b)", "2x SELECT GPU-compute-only throughput", device)
    for m in (Strategy.SERIAL, Strategy.FUSED):
        print(format_series(LABEL[m], xs, compute[m], unit="GB/s over Melem"))
    comp_gain = float(np.mean(
        [f / u - 1 for f, u in zip(compute[Strategy.FUSED],
                                   compute[Strategy.SERIAL])])) * 100
    cmp_b = PaperComparison("Fig 8(b) compute-only gain")
    cmp_b.add("fused vs w/o round trip, compute only (%)", 79.9, comp_gain)
    cmp_b.print()

    # orderings
    for i in range(len(SIZES)):
        assert (tput[Strategy.FUSED][i] > tput[Strategy.SERIAL][i]
                > tput[Strategy.WITH_ROUND_TRIP][i])
        assert compute[Strategy.FUSED][i] > compute[Strategy.SERIAL][i]
    assert comp_gain > 40.0

"""Cluster scaling: makespan vs device count for TPC-H Q1 and Q21.

The same distributed plans the cluster CI smoke runs, swept over 1/2/4/8
devices behind one shared host (docs/CLUSTER.md).  Per-device staging
bandwidth is ``min(link_bw, host_bw / devices)``, so the curves are
link-limited (near-linear) up to the host-memory crossover at ~4 devices
and bend past it -- the shape the shared-host contention model predicts.

Emits ``BENCH_cluster.json`` (``--json PATH`` redirects it):
per-query makespans at each device count plus the plain single-device
Executor reference.  The 4-device makespan must be strictly below the
1-device cluster makespan for both queries -- the subsystem's acceptance
criterion.
"""

from repro.bench import emit_json, format_table, json_output_path, print_header
from repro.cluster import ClusterConfig, ClusterExecutor, single_device_makespan
from repro.tpch import (
    build_q1_plan,
    build_q21_plan,
    q1_source_rows,
    q21_source_rows,
)

DEVICE_SWEEP = (1, 2, 4, 8)
N_LINEITEM = 6_000_000
SCHEME = "hash"
SEED = 0


def _cases():
    n = N_LINEITEM
    return [
        ("q1", build_q1_plan(), q1_source_rows(n)),
        ("q21", build_q21_plan(),
         q21_source_rows(n, n // 4, max(1, n // 600))),
    ]


def _measure():
    points = []
    for name, plan, rows in _cases():
        by_devices = {}
        for devices in DEVICE_SWEEP:
            cx = ClusterExecutor(config=ClusterConfig(
                num_devices=devices, scheme=SCHEME, seed=SEED))
            result = cx.run(plan, rows)
            by_devices[devices] = result
        single = single_device_makespan(plan, rows)
        points.append((name, single, by_devices))
    return points


def test_cluster_scaling(benchmark, device):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Cluster: makespan vs device count",
                 f"TPC-H Q1/Q21 at {N_LINEITEM/1e6:.0f}M lineitems, "
                 f"{SCHEME} partitioning", device)
    rows = []
    payload = {"device_sweep": list(DEVICE_SWEEP),
               "n_lineitem": N_LINEITEM, "scheme": SCHEME, "seed": SEED,
               "queries": {}}
    for name, single, by_devices in points:
        row = [name, round(single * 1e3, 3)]
        entry = {"single_device_makespan_s": round(single, 9),
                 "suffix_mode": by_devices[1].dist.suffix_mode,
                 "by_devices": {}}
        for devices in DEVICE_SWEEP:
            result = by_devices[devices]
            row.append(round(result.makespan * 1e3, 3))
            entry["by_devices"][str(devices)] = {
                "makespan_s": round(result.makespan, 9),
                "speedup_vs_1": round(
                    by_devices[1].makespan / result.makespan, 6),
                "exchange_out_bytes": round(result.exchange_out_bytes, 3),
                "merge_bytes": round(result.merge_bytes, 3),
            }
        payload["queries"][name] = entry
        rows.append(row)
    print(format_table(
        ["query", "1-dev exec ms"]
        + [f"{d} dev ms" for d in DEVICE_SWEEP], rows, width=13))

    out = emit_json("cluster", payload,
                    path=json_output_path("cluster") or "BENCH_cluster.json")
    print(f"wrote {out}")

    for name, single, by_devices in points:
        # the acceptance criterion: 4 devices strictly beat 1, for both
        # queries, and the cluster never loses to the plain Executor
        assert by_devices[4].makespan < by_devices[1].makespan, name
        assert by_devices[4].makespan < single, name
        # scaling is monotone up to the host-memory crossover
        assert by_devices[2].makespan < by_devices[1].makespan, name

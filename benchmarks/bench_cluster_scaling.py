"""Cluster scaling: makespan vs device count for TPC-H Q1 and Q21.

The same distributed plans the cluster CI smoke runs, swept over 1/2/4/8
devices behind one shared host (docs/CLUSTER.md).  Per-device staging
bandwidth is capped at ``host_bw / devices``, the exchange pre-aggregates
decomposable suffixes below the frontier cut and streams partial-state
chunks while the local phase still runs, and per-device merge buffers
combine up a pairwise tree -- so the curves stay monotone through 8
devices instead of regressing at the host-memory crossover.

Emits ``BENCH_cluster.json`` (``--json PATH`` redirects it):
per-query makespans at each device count plus the plain single-device
Executor reference.  ``speedup_vs_1`` is reported against
``single_device_makespan_s`` (the 1-device cluster is asserted equal to
it, so the ratio is also the vs-cluster-of-one speedup).

Assertions (the subsystem's acceptance criteria):

* the 1-device cluster matches the plain Executor exactly;
* both queries scale monotonically 1 -> 2 -> 4 -> 8, strictly at 8;
* Q1 reaches >= 6.5x at 8 devices;
* per-device outbound exchange volume *decreases* as devices are added
  (partial states, not raw frontier rows, cross the wire).
"""

from repro.bench import emit_json, format_table, json_output_path, print_header
from repro.cluster import ClusterConfig, ClusterExecutor, single_device_makespan
from repro.tpch import (
    build_q1_plan,
    build_q21_plan,
    q1_source_rows,
    q21_source_rows,
)

DEVICE_SWEEP = (1, 2, 4, 8)
N_LINEITEM = 6_000_000
SCHEME = "hash"
SEED = 0

#: Q1's acceptance floor at 8 devices, vs the plain single-device Executor
Q1_SPEEDUP_FLOOR_AT_8 = 6.5


def _cases():
    n = N_LINEITEM
    return [
        ("q1", build_q1_plan(), q1_source_rows(n)),
        ("q21", build_q21_plan(),
         q21_source_rows(n, n // 4, max(1, n // 600))),
    ]


def _measure():
    points = []
    for name, plan, rows in _cases():
        by_devices = {}
        for devices in DEVICE_SWEEP:
            cx = ClusterExecutor(config=ClusterConfig(
                num_devices=devices, scheme=SCHEME, seed=SEED))
            result = cx.run(plan, rows)
            by_devices[devices] = result
        single = single_device_makespan(plan, rows)
        points.append((name, single, by_devices))
    return points


def test_cluster_scaling(benchmark, device):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Cluster: makespan vs device count",
                 f"TPC-H Q1/Q21 at {N_LINEITEM/1e6:.0f}M lineitems, "
                 f"{SCHEME} partitioning", device)
    rows = []
    payload = {"device_sweep": list(DEVICE_SWEEP),
               "n_lineitem": N_LINEITEM, "scheme": SCHEME, "seed": SEED,
               "queries": {}}
    for name, single, by_devices in points:
        row = [name, round(single * 1e3, 3)]
        entry = {"single_device_makespan_s": round(single, 9),
                 "suffix_mode": by_devices[1].dist.suffix_mode,
                 "preagg": int(by_devices[8].dist.preagg is not None),
                 "merge_strategy": by_devices[8].dist.merge,
                 "by_devices": {}}
        for devices in DEVICE_SWEEP:
            result = by_devices[devices]
            row.append(round(result.makespan * 1e3, 3))
            entry["by_devices"][str(devices)] = {
                "makespan_s": round(result.makespan, 9),
                "speedup_vs_1": round(single / result.makespan, 6),
                "exchange_out_bytes": round(
                    result.exchange_out_per_device, 3),
                "exchange_total_bytes": round(result.exchange_out_bytes, 3),
                "merge_bytes": round(result.merge_bytes, 3),
            }
        payload["queries"][name] = entry
        rows.append(row)
    print(format_table(
        ["query", "1-dev exec ms"]
        + [f"{d} dev ms" for d in DEVICE_SWEEP], rows, width=13))

    out = emit_json("cluster", payload,
                    path=json_output_path("cluster") or "BENCH_cluster.json")
    print(f"wrote {out}")

    for name, single, by_devices in points:
        # the 1-device cluster bypasses partitioning/exchange entirely
        assert by_devices[1].makespan == single, name
        # monotone scaling through the host-memory crossover, strict at 8
        m = {d: by_devices[d].makespan for d in DEVICE_SWEEP}
        assert m[2] <= m[1] and m[4] <= m[2] and m[8] <= m[4], name
        assert m[8] < m[4], name
        assert m[4] < single, name
    q1 = {d: r for d, r in points[0][2].items()}
    assert points[0][0] == "q1"
    assert points[0][1] / q1[8].makespan >= Q1_SPEEDUP_FLOOR_AT_8
    # partial aggregate states cross the exchange, so per-device outbound
    # volume shrinks as the cluster widens
    per_dev = {d: q1[d].exchange_out_per_device for d in (2, 4, 8)}
    assert per_dev[8] <= per_dev[4] <= per_dev[2]
    assert per_dev[8] < per_dev[2]

"""Figure 2: census of the common operator combinations (a)-(h).

The paper derives eight fusable patterns from the 22 TPC-H queries.  This
bench runs the detector over the reproduced Q1/Q21 plans plus a synthetic
suite modeled on the figure, and prints the per-pattern census.
"""

from repro.bench import format_table, print_header
from repro.plans import Plan, pattern_census
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Const, Field
from repro.tpch import build_q1_plan, build_q21_plan


def synthetic_pattern_suite() -> Plan:
    """One plan exhibiting every Figure-2 pattern at least once."""
    plan = Plan(name="fig2_suite")
    t = plan.source("t", row_nbytes=8)
    u = plan.source("u", row_nbytes=8)
    # (a) + (c): two select chains off one input
    a1 = plan.select(t, Field("x") < 10, name="a1")
    a2 = plan.select(a1, Field("x") < 5, name="a2")
    c2 = plan.select(t, Field("x") > 90, name="c2")
    # (f): join of two selected tables, then (b): join cascade
    sb = plan.select(u, Field("y") < 10, name="sb")
    f = plan.join(a2, sb, name="fjoin")
    b = plan.join(f, plan.source("v", row_nbytes=8), name="bjoin")
    # (d) select and (e) arith on join output
    d = plan.select(b, Field("x") < 3, name="dsel")
    e = plan.arith(b, {"disc": (Const(1.0) - Field("discount")) * Field("price")},
                   name="earith")
    # (h): project keeps only the arith result
    plan.project(e, ["disc"], name="hproj")
    # (g): aggregation on selected data
    plan.aggregate(d, [], {"n": AggSpec("count")}, name="gagg")
    return plan


def _measure():
    return {
        "synthetic suite": pattern_census(synthetic_pattern_suite()),
        "TPC-H Q1": pattern_census(build_q1_plan()),
        "TPC-H Q21": pattern_census(build_q21_plan()),
    }


def test_fig02_pattern_census(benchmark, device):
    census = benchmark.pedantic(_measure, rounds=3, iterations=1)

    print_header("Figure 2", "census of fusable operator patterns (a)-(h)",
                 device)
    headers = ["plan"] + list("abcdefgh")
    rows = [[name] + [c[p] for p in "abcdefgh"] for name, c in census.items()]
    print(format_table(headers, rows, width=10))

    # the synthetic suite exhibits every pattern
    assert all(census["synthetic suite"][p] >= 1 for p in "abcdefgh")
    # Q1 is dominated by the join cascade (pattern b)
    assert census["TPC-H Q1"]["b"] >= 5
    # Q21 contains join-like chains
    assert census["TPC-H Q21"]["b"] >= 1

"""Figure 4(b): PCIe 2.0 bandwidth measurement, pinned vs paged x WR/RD.

Paper observations: all curves well under the theoretical 8 GB/s; pinned
above paged; the pinned advantage shrinks for very large buffers.
"""

from repro.bench import PaperComparison, format_series, print_header
from repro.simgpu import Direction, HostMemory, PcieModel

SIZES_ELEMS = [25_000_000, 50_000_000, 100_000_000, 200_000_000, 400_000_000]
CURVES = [
    ("CPU WR GPU (PINNED)", Direction.H2D, HostMemory.PINNED),
    ("CPU WR GPU (PAGED)", Direction.H2D, HostMemory.PAGED),
    ("CPU RD GPU (PINNED)", Direction.D2H, HostMemory.PINNED),
    ("CPU RD GPU (PAGED)", Direction.D2H, HostMemory.PAGED),
]
#: approximate plateau values read off the paper's figure (GB/s)
PAPER_PLATEAUS = {
    "CPU WR GPU (PINNED)": 5.9,
    "CPU WR GPU (PAGED)": 4.0,
    "CPU RD GPU (PINNED)": 6.3,
    "CPU RD GPU (PAGED)": 3.2,
}


def _measure(device):
    pcie = PcieModel(device.calib.pcie)
    out = {}
    for name, direction, memory in CURVES:
        out[name] = [pcie.effective_bandwidth(n * 4, direction, memory) / 1e9
                     for n in SIZES_ELEMS]
    return out


def test_fig04b_pcie_bandwidth(benchmark, device):
    curves = benchmark.pedantic(lambda: _measure(device), rounds=3, iterations=1)

    print_header("Figure 4(b)", "PCIe 2.0 bandwidth, pinned/paged x WR/RD", device)
    for name in curves:
        print(format_series(name, [n // 10**6 for n in SIZES_ELEMS],
                            curves[name], unit="GB/s over Melem"))

    cmp = PaperComparison("Fig 4(b) plateau bandwidths")
    for name, values in curves.items():
        cmp.add(name, PAPER_PLATEAUS[name], values[-2])
    cmp.print()

    for i, n in enumerate(SIZES_ELEMS):
        assert curves["CPU WR GPU (PINNED)"][i] > curves["CPU WR GPU (PAGED)"][i]
        assert curves["CPU RD GPU (PINNED)"][i] > curves["CPU RD GPU (PAGED)"][i]
        for name in curves:
            assert curves[name][i] < 8.0  # below theoretical

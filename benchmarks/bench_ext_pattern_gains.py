"""Extension: fusion benefit per Figure-2 pattern.

The paper evaluates fusion on pattern (a) (SELECT chains) and, within
Q1/Q21, on (b)/(e)/(g)/(h).  This bench builds a representative plan for
*each* pattern and measures the compute-only fusion gain, quantifying
which combinations pay the most.
"""

from repro.bench import format_table, print_header
from repro.plans import Plan
from repro.ra import AggSpec, Const, Field
from repro.runtime import ExecutionConfig, Executor, Strategy

N = 100_000_000


def _plans():
    out = {}

    # (a) SELECT -> SELECT
    p = Plan(name="a")
    n = p.source("t", row_nbytes=4)
    n = p.select(n, Field("x") < 1, selectivity=0.5, name="s0")
    p.select(n, Field("x") < 2, selectivity=0.5, name="s1")
    out["a: select->select"] = (p, {"t": N})

    # (b) JOIN -> JOIN (gather joins, as Q1's column merges)
    p = Plan(name="b")
    n = p.source("t", row_nbytes=4)
    c1 = p.source("c1", row_nbytes=4)
    c2 = p.source("c2", row_nbytes=4)
    n = p.join(n, c1, gather=True, out_row_nbytes=8, name="j0")
    p.join(n, c2, gather=True, out_row_nbytes=12, name="j1")
    out["b: join->join"] = (p, {"t": N, "c1": N, "c2": N})

    # (d) JOIN -> SELECT
    p = Plan(name="d")
    n = p.source("t", row_nbytes=4)
    c = p.source("c", row_nbytes=4)
    n = p.join(n, c, gather=True, out_row_nbytes=8, name="j")
    p.select(n, Field("x") < 1, selectivity=0.5, name="s")
    out["d: join->select"] = (p, {"t": N, "c": N})

    # (e) JOIN -> ARITH
    p = Plan(name="e")
    n = p.source("t", row_nbytes=4)
    c = p.source("c", row_nbytes=4)
    n = p.join(n, c, gather=True, out_row_nbytes=8, name="j")
    p.arith(n, {"y": Field("x") * Const(2.0)}, name="ar")
    out["e: join->arith"] = (p, {"t": N, "c": N})

    # (g) SELECT -> AGGREGATE
    p = Plan(name="g")
    n = p.source("t", row_nbytes=4)
    n = p.select(n, Field("x") < 1, selectivity=0.5, name="s")
    p.aggregate(n, [], {"n": AggSpec("count")}, name="agg")
    out["g: select->aggregate"] = (p, {"t": N})

    # (h) ARITH -> PROJECT
    p = Plan(name="h")
    n = p.source("t", row_nbytes=8)
    n = p.arith(n, {"total": (Const(1.0) - Field("discount")) * Field("price")},
                name="ar")
    p.project(n, ["total"], out_row_nbytes=8, name="proj")
    out["h: arith->project"] = (p, {"t": N})

    return out


def _measure(executor):
    rows_out = []
    cfg = dict(include_transfers=False)
    for label, (plan, rows) in _plans().items():
        serial = executor.run(plan, rows,
                              ExecutionConfig(strategy=Strategy.SERIAL, **cfg))
        fused = executor.run(plan, rows,
                             ExecutionConfig(strategy=Strategy.FUSED, **cfg))
        rows_out.append([label, serial.makespan * 1e3, fused.makespan * 1e3,
                         serial.makespan / fused.makespan])
    return rows_out


def test_ext_pattern_fusion_gains(benchmark, executor, device):
    rows = benchmark.pedantic(lambda: _measure(executor), rounds=1, iterations=1)

    print_header("Extension: per-pattern fusion gains",
                 "compute-only speedup for each Figure-2 pattern", device)
    print(format_table(["pattern", "unfused ms", "fused ms", "speedup"],
                       rows, width=22))

    gains = {r[0].split(":")[0]: r[3] for r in rows}
    # every pattern benefits
    assert all(g > 1.1 for g in gains.values()), gains
    # chains whose intermediate is wide (join -> consumer) benefit most:
    # fusing avoids materializing the joined tuple
    assert gains["d"] > gains["a"]
    assert max(gains.values()) > 1.8

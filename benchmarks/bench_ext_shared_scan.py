"""Extension: shared-scan fusion for Figure 2's pattern (c).

Several SELECTs filtering the *same* input (possibly from different
queries -- the paper notes fusion applies "across queries") can share a
single scan.  This bench measures the multi-output kernel against K
separate SELECT pipelines and shows the win grows with K until register
pressure bites.
"""

from repro.bench import format_table, print_header
from repro.core.multifusion import SharedScanGroup, chain_for_shared_scan
from repro.core.opmodels import chain_for_region
from repro.plans import Plan
from repro.ra import Field

N = 200_000_000


def _measure(device):
    rows = []
    for k in (2, 3, 4, 6, 8):
        plan = Plan()
        src = plan.source("t", row_nbytes=4)
        selects = [plan.select(src, Field("x") < 10, selectivity=0.2,
                               name=f"q{i}") for i in range(k)]
        shared_chain = chain_for_shared_scan(SharedScanGroup(src, tuple(selects)))
        shared = shared_chain.total_duration(N, device)
        separate = sum(chain_for_region([s]).total_duration(N, device)
                       for s in selects)
        regs = max(kk.regs_per_thread for kk in shared_chain.kernels)
        rows.append([k, regs, separate * 1e3, shared * 1e3, separate / shared])
    return rows


def test_ext_shared_scan(benchmark, device):
    rows = benchmark.pedantic(lambda: _measure(device), rounds=1, iterations=1)

    print_header("Extension: shared-scan fusion (pattern c)",
                 "K SELECTs over one input, 200M elements", device)
    print(format_table(["K selects", "regs/thread", "separate ms",
                        "shared ms", "speedup"], rows, width=14))

    speed = {r[0]: r[4] for r in rows}
    assert speed[2] > 1.2
    assert speed[3] > speed[2]
    # register pressure eventually erodes the win
    assert speed[8] < max(speed.values())

"""Extension: fusion across queries (SS III-A).

K analytic queries filter the same fact table.  Comparing the three
sharing regimes quantifies what the paper's "apply kernel fusion across
queries" remark is worth: deduplicating the upload, then sharing the scan
itself via pattern-(c) multi-output kernels.
"""

from repro.bench import format_table, print_header
from repro.plans import Plan
from repro.ra import AggSpec, Field
from repro.runtime.workload import QueryWorkload, WorkloadScheduler

N = 200_000_000


def _query(i):
    plan = Plan(name=f"query{i}")
    t = plan.source("lineitem", row_nbytes=4)
    node = plan.select(t, Field("x") < 10 * (i + 1), selectivity=0.2,
                       name="filter")
    plan.aggregate(node, [], {"n": AggSpec("count")}, name="count")
    return plan


def _measure():
    sched = WorkloadScheduler()
    rows = {"lineitem": N}
    out = []
    for k in (2, 4, 6):
        workload = QueryWorkload(plans=[_query(i) for i in range(k)])
        results = sched.compare(workload, rows)
        iso = results["isolated"].makespan
        out.append([
            k,
            iso * 1e3,
            results["shared_source"].makespan * 1e3,
            results["cross_query_fused"].makespan * 1e3,
            iso / results["cross_query_fused"].makespan,
        ])
    return out


def test_ext_cross_query_fusion(benchmark, device):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Extension: cross-query fusion",
                 "K queries sharing one fact-table scan", device)
    print(format_table(
        ["K queries", "isolated ms", "shared src ms", "fused ms",
         "total speedup"], rows, width=14))

    speed = {r[0]: r[4] for r in rows}
    assert speed[2] > 1.5          # upload dedup alone is big
    assert speed[4] > speed[2]     # and grows with the number of queries
    for r in rows:
        assert r[3] < r[2] < r[1]  # fused < shared < isolated

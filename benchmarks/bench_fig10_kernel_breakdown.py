"""Figure 10: per-CUDA-kernel breakdown of the compute part, fused vs
unfused.

Paper: the fused filter kernel is 1.57x faster than the two separate
filters; the fused gather is 3.03x faster than the two separate gathers.
"""

from repro.bench import PaperComparison, format_table, print_header
from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain

SIZES = [4_194_304, 205_520_896, 415_236_096]


def _kernel_split(result):
    filt = sum(v for k, v in result.kernel_times().items() if "compute" in k)
    gath = sum(v for k, v in result.kernel_times().items() if "gather" in k)
    return filt, gath


def _measure():
    rows = []
    ratios = []
    for n in SIZES:
        ru = run_select_chain(n, 2, 0.5, Strategy.SERIAL, include_transfers=False)
        rf = run_select_chain(n, 2, 0.5, Strategy.FUSED, include_transfers=False)
        fu, gu = _kernel_split(ru)
        ff, gf = _kernel_split(rf)
        base = fu + gu
        rows.append([f"{n/1e6:.0f}M", "UNFUSED", fu / base, gu / base, 1.0])
        rows.append([f"{n/1e6:.0f}M", "FUSED", ff / base, gf / base,
                     (ff + gf) / base])
        ratios.append((fu / ff, gu / gf, base / (ff + gf)))
    return rows, ratios


def test_fig10_kernel_breakdown(benchmark, device):
    rows, ratios = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 10", "compute breakdown by CUDA kernel "
                 "(normalized to unfused)", device)
    print(format_table(["elements", "config", "filter", "gather", "total"],
                       rows, width=12))

    avg_f = sum(r[0] for r in ratios) / len(ratios)
    avg_g = sum(r[1] for r in ratios) / len(ratios)
    avg_t = sum(r[2] for r in ratios) / len(ratios)
    cmp = PaperComparison("Fig 10 fused-kernel speedups")
    cmp.add("fused filter vs separate filters (x)", 1.57, avg_f)
    cmp.add("fused gather vs separate gathers (x)", 3.03, avg_g)
    cmp.add("overall compute (x)", 1.80, avg_t)
    cmp.print()

    assert 1.2 < avg_f < 2.2
    assert 2.3 < avg_g < 3.8
    assert avg_g > avg_f  # gather benefits most: it fully collapses

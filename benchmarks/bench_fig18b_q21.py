"""Figure 18(b): TPC-H Q21 -- not optimized vs fusion vs fusion+fission.

Paper: Q21 has many more relational operators and several barriers
(sorts/aggregations) bounding fusion, so the total improvement is smaller
than Q1's: 13.2% overall; the fusable blocks alone speed up 1.22x.
"""

from repro.bench import PaperComparison, format_table, print_header
from repro.core.fusion import fuse_plan
from repro.runtime import ExecutionConfig, Strategy
from repro.tpch import build_q21_plan, q21_source_rows

ROWS = q21_source_rows(6_000_000, 1_500_000, 10_000)


def _measure(executor):
    plan = build_q21_plan()
    res = {s: executor.run(plan, ROWS, ExecutionConfig(strategy=s))
           for s in (Strategy.SERIAL, Strategy.FUSED, Strategy.FUSED_FISSION)}

    # fused-block speedup: compare the fused regions' kernel time against
    # the same operators run unfused
    fr = fuse_plan(plan)
    fused_ops = {n.name for r in fr.regions if r.fused for n in r.nodes}

    def ops_time(r):
        return sum(v for k, v in r.kernel_times().items()
                   if any(op in k for op in fused_ops))

    block_ratio = (ops_time(res[Strategy.SERIAL])
                   / max(ops_time(res[Strategy.FUSED]), 1e-12))
    return res, block_ratio


def test_fig18b_q21(benchmark, executor, device):
    res, block_ratio = benchmark.pedantic(
        lambda: _measure(executor), rounds=1, iterations=1)

    base = res[Strategy.SERIAL].makespan
    rows = [[name, res[s].makespan / base]
            for name, s in [("Not Optimized", Strategy.SERIAL),
                            ("Fusion", Strategy.FUSED),
                            ("Fusion + Fission", Strategy.FUSED_FISSION)]]
    print_header("Figure 18(b)", "TPC-H Q21 normalized execution time", device)
    print(format_table(["method", "normalized time"], rows, width=20))

    total_pct = (base / res[Strategy.FUSED_FISSION].makespan - 1) * 100
    cmp = PaperComparison("Fig 18(b) TPC-H Q21")
    cmp.add("total improvement (%)", 13.2, total_pct)
    cmp.add("fused-block speedup (x)", 1.22, block_ratio)
    cmp.print()

    assert 5 < total_pct < 35
    assert block_ratio > 1.05
    # Q21's gain is smaller than Q1's (fewer kernels can fuse)
    from repro.tpch import build_q1_plan, q1_source_rows
    q1 = build_q1_plan()
    q1_serial = executor.run(q1, q1_source_rows(6_000_000),
                             ExecutionConfig(strategy=Strategy.SERIAL))
    q1_fused = executor.run(q1, q1_source_rows(6_000_000),
                            ExecutionConfig(strategy=Strategy.FUSED))
    q1_fusion_pct = (q1_serial.makespan / q1_fused.makespan - 1) * 100
    q21_fusion_pct = (base / res[Strategy.FUSED].makespan - 1) * 100
    assert q21_fusion_pct < q1_fusion_pct

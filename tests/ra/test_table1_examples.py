"""The paper's Table I operator examples, verified verbatim.

Each test constructs exactly the relations of Table I and checks the
operator result against the tuple set the paper prints.
"""

from repro.ra import (
    Field,
    Relation,
    difference,
    intersection,
    join,
    product,
    project,
    select,
    union,
)


def rel(*tuples):
    return Relation.from_tuples(list(tuples))


class TestTable1:
    def test_union(self):
        x = rel((3, "a"), (4, "a"), (2, "b"))
        y = rel((0, "a"), (2, "b"))
        assert union(x, y).to_tuple_set() == {(3, "a"), (4, "a"), (2, "b"), (0, "a")}

    def test_intersection(self):
        x = rel((3, "a"), (4, "a"), (2, "b"))
        y = rel((0, "a"), (2, "b"))
        assert intersection(x, y).to_tuple_set() == {(2, "b")}

    def test_product(self):
        x = rel((3, "a"), (4, "a"))
        y = rel((True, 2))
        assert product(x, y).to_tuple_set() == {(3, "a", True, 2), (4, "a", True, 2)}

    def test_difference(self):
        x = rel((3, "a"), (4, "a"), (2, "b"))
        y = rel((4, "a"), (3, "a"))
        assert difference(x, y).to_tuple_set() == {(2, "b")}

    def test_join(self):
        x = rel((3, "a"), (4, "a"), (2, "b"))
        y = rel((2, "f"), (3, "c"))
        assert join(x, y).to_tuple_set() == {(3, "a", "c"), (2, "b", "f")}

    def test_projection(self):
        x = rel((3, True, "a"), (4, True, "a"), (2, False, "b"))
        assert project(x, [0, 2]).to_tuple_set() == {(3, "a"), (4, "a"), (2, "b")}

    def test_select(self):
        x = rel((3, True, "a"), (4, True, "a"), (2, False, "b"))
        assert select(x, Field("f0").eq(2)).to_tuple_set() == {(2, False, "b")}

    def test_key_is_first_field(self):
        x = rel((3, "a"), (4, "a"))
        assert x.key == "f0"
        assert list(x.key_column) == [3, 4]

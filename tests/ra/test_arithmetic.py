"""Tests for ARITH and AGGREGATION."""

import numpy as np
import pytest

from repro.errors import RelationError
from repro.ra import AggSpec, Const, Field, Relation, aggregate, arith


@pytest.fixture
def prices():
    return Relation({
        "group": np.array([0, 0, 1, 1, 1]),
        "price": np.array([100.0, 200.0, 50.0, 150.0, 100.0]),
        "discount": np.array([0.1, 0.0, 0.5, 0.0, 0.2]),
    })


class TestArith:
    def test_disc_price(self, prices):
        out = arith(prices, {
            "disc_price": Field("price") * (Const(1.0) - Field("discount"))})
        assert np.allclose(out["disc_price"], [90, 200, 25, 150, 80])

    def test_keeps_inputs_by_default(self, prices):
        out = arith(prices, {"x": Field("price") + 1})
        assert set(prices.fields) <= set(out.fields)

    def test_keep_subset(self, prices):
        out = arith(prices, {"x": Field("price") + 1}, keep=["group"])
        assert out.fields == ["group", "x"]

    def test_keep_unknown_field(self, prices):
        with pytest.raises(RelationError):
            arith(prices, {"x": Field("price")}, keep=["zzz"])

    def test_expression_over_unknown_field(self, prices):
        with pytest.raises(RelationError):
            arith(prices, {"x": Field("nope") + 1})

    def test_multiple_outputs(self, prices):
        out = arith(prices, {
            "a": Field("price") * 2,
            "b": Field("price") / 2,
        })
        assert np.allclose(out["a"], prices["price"] * 2)
        assert np.allclose(out["b"], prices["price"] / 2)

    def test_constant_output_broadcast(self, prices):
        out = arith(prices, {"c": Const(7.0) * Const(2.0)})
        assert np.allclose(out["c"], 14.0)
        assert len(out["c"]) == prices.num_rows


class TestAggSpec:
    def test_unknown_func(self):
        with pytest.raises(RelationError):
            AggSpec("median", "x")

    def test_sum_needs_field(self):
        with pytest.raises(RelationError):
            AggSpec("sum")

    def test_count_needs_no_field(self):
        assert AggSpec("count").field is None


class TestAggregate:
    def test_grouped_sums(self, prices):
        out = aggregate(prices, ["group"], {
            "total": AggSpec("sum", "price"),
            "n": AggSpec("count"),
        })
        assert out.num_rows == 2
        by_group = {int(g): (float(t), int(n))
                    for g, t, n in zip(out["group"], out["total"], out["n"])}
        assert by_group == {0: (300.0, 2), 1: (300.0, 3)}

    def test_mean_min_max(self, prices):
        out = aggregate(prices, ["group"], {
            "avg": AggSpec("mean", "price"),
            "lo": AggSpec("min", "price"),
            "hi": AggSpec("max", "price"),
        })
        row = {int(g): (a, l, h)
               for g, a, l, h in zip(out["group"], out["avg"], out["lo"], out["hi"])}
        assert row[0] == (150.0, 100.0, 200.0)
        assert row[1] == (100.0, 50.0, 150.0)

    def test_global_aggregate_no_groups(self, prices):
        out = aggregate(prices, [], {"total": AggSpec("sum", "price")})
        assert out.num_rows == 1
        assert float(out["total"][0]) == 600.0

    def test_multi_field_group(self):
        r = Relation({
            "a": [0, 0, 1, 1],
            "b": ["x", "y", "x", "x"],
            "v": [1.0, 2.0, 3.0, 4.0],
        })
        out = aggregate(r, ["a", "b"], {"s": AggSpec("sum", "v")})
        assert out.num_rows == 3
        got = {(int(a), str(b)): float(s)
               for a, b, s in zip(out["a"], out["b"], out["s"])}
        assert got == {(0, "x"): 1.0, (0, "y"): 2.0, (1, "x"): 7.0}

    def test_no_outputs_rejected(self, prices):
        with pytest.raises(RelationError):
            aggregate(prices, ["group"], {})

    def test_unknown_group_field(self, prices):
        with pytest.raises(RelationError):
            aggregate(prices, ["nope"], {"n": AggSpec("count")})

    def test_counts_sum_to_rows(self, rng):
        r = Relation({"g": rng.integers(0, 7, 500), "v": rng.random(500)})
        out = aggregate(r, ["g"], {"n": AggSpec("count")})
        assert int(out["n"].sum()) == 500

    def test_matches_numpy_reference(self, rng):
        g = rng.integers(0, 13, 1000)
        v = rng.random(1000)
        out = aggregate(Relation({"g": g, "v": v}), ["g"],
                        {"s": AggSpec("sum", "v"), "m": AggSpec("mean", "v")})
        for gg, s, m in zip(out["g"], out["s"], out["m"]):
            mask = g == gg
            assert np.isclose(s, v[mask].sum())
            assert np.isclose(m, v[mask].mean())

    def test_group_keys_sorted(self, rng):
        r = Relation({"g": rng.integers(0, 100, 300), "v": rng.random(300)})
        out = aggregate(r, ["g"], {"n": AggSpec("count")})
        keys = list(out["g"])
        assert keys == sorted(keys)

"""Tests for relation persistence."""

import numpy as np
import pytest

from repro.errors import RelationError
from repro.ra import Relation
from repro.ra.io import load_relation, save_relation


@pytest.fixture
def rel(rng):
    return Relation({
        "k": rng.integers(0, 100, 500).astype(np.int32),
        "price": rng.random(500),
        "flag": rng.integers(0, 2, 500).astype(np.int8),
    }, key="k")


class TestRoundTrip:
    def test_identical_after_reload(self, rel, tmp_path):
        path = str(tmp_path / "rel.npz")
        save_relation(rel, path)
        loaded = load_relation(path)
        assert loaded.fields == rel.fields
        assert loaded.key == rel.key
        for f in rel.fields:
            assert np.array_equal(loaded[f], rel[f])
            assert loaded[f].dtype == rel[f].dtype

    def test_extension_appended(self, rel, tmp_path):
        base = str(tmp_path / "rel")
        save_relation(rel, base)          # numpy appends .npz
        loaded = load_relation(base)      # loader finds it
        assert loaded.num_rows == rel.num_rows

    def test_non_default_key_preserved(self, tmp_path):
        rel = Relation({"a": [1, 2], "b": [3, 4]}, key="b")
        path = str(tmp_path / "r.npz")
        save_relation(rel, path)
        assert load_relation(path).key == "b"

    def test_reserved_field_name_rejected(self, tmp_path):
        rel = Relation({"__repro_key__": [1]})
        with pytest.raises(RelationError):
            save_relation(rel, str(tmp_path / "bad.npz"))

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez_compressed(str(path), x=np.arange(3))
        with pytest.raises(RelationError):
            load_relation(str(path))

    def test_tpch_table_roundtrip(self, tpch_tiny, tmp_path):
        path = str(tmp_path / "lineitem.npz")
        save_relation(tpch_tiny.lineitem, path)
        loaded = load_relation(path)
        assert loaded.same_tuples(tpch_tiny.lineitem)

"""Unit tests for the RA operators beyond the Table I examples."""

import numpy as np
import pytest

from repro.errors import RelationError
from repro.ra import (
    Field,
    Relation,
    anti_join,
    difference,
    intersection,
    join,
    product,
    project,
    select,
    semi_join,
    union,
)


def rel(*tuples, fields=None):
    return Relation.from_tuples(list(tuples), fields=fields)


class TestSelect:
    def test_empty_result(self):
        r = rel((1,), (2,))
        assert select(r, Field("f0") > 10).num_rows == 0

    def test_all_pass(self):
        r = rel((1,), (2,))
        assert select(r, Field("f0") >= 0).num_rows == 2

    def test_compound_predicate(self):
        r = Relation({"a": [1, 2, 3, 4], "b": [4, 3, 2, 1]})
        out = select(r, (Field("a") > 1) & (Field("b") > 1))
        assert out.to_tuples() == [(2, 3), (3, 2)]

    def test_or_predicate(self):
        r = Relation({"a": [1, 2, 3]})
        out = select(r, (Field("a").eq(1)) | (Field("a").eq(3)))
        assert out.to_tuples() == [(1,), (3,)]

    def test_field_vs_field(self):
        r = Relation({"a": [1, 5], "b": [2, 4]})
        assert select(r, Field("a") > Field("b")).to_tuples() == [(5, 4)]

    def test_preserves_order(self):
        r = Relation({"a": [5, 1, 4, 2]})
        assert select(r, Field("a") > 1).to_tuples() == [(5,), (4,), (2,)]


class TestProject:
    def test_reorders_fields(self):
        r = Relation({"a": [1], "b": [2], "c": [3]})
        out = project(r, ["c", "a"])
        assert out.fields == ["c", "a"]
        assert out.key == "c"

    def test_by_index(self):
        r = Relation({"a": [1], "b": [2]})
        assert project(r, [1]).fields == ["b"]

    def test_unknown_field(self):
        with pytest.raises(RelationError):
            project(Relation({"a": [1]}), ["zz"])

    def test_empty_fields(self):
        with pytest.raises(RelationError):
            project(Relation({"a": [1]}), [])


class TestJoin:
    def test_duplicate_keys_cross_product(self):
        x = rel((1, "a"), (1, "b"))
        y = rel((1, "x"), (1, "y"))
        out = join(x, y)
        assert out.num_rows == 4
        assert out.to_tuple_set() == {
            (1, "a", "x"), (1, "a", "y"), (1, "b", "x"), (1, "b", "y")}

    def test_no_matches(self):
        assert join(rel((1, "a")), rel((2, "b"))).num_rows == 0

    def test_empty_side(self):
        x = rel((1, "a"))
        y = Relation.empty_like(rel((9, "z")))
        assert join(x, y).num_rows == 0

    def test_field_clash_renamed(self):
        x = Relation({"k": [1], "v": [10]})
        y = Relation({"k": [1], "v": [20]})
        out = join(x, y)
        assert out.fields == ["k", "v", "v_r"]
        assert out.to_tuples() == [(1, 10, 20)]

    def test_join_on_named_field(self):
        x = Relation({"id": [1, 2], "nk": [7, 8]})
        y = Relation({"nk": [8], "name": ["x"]})
        out = join(x, y, on="nk")
        assert out.to_tuples() == [(2, 8, "x")]

    def test_missing_key_raises(self):
        with pytest.raises(RelationError):
            join(Relation({"a": [1]}), Relation({"b": [1]}), on="zz")

    def test_matches_numpy_reference(self, rng):
        lk = rng.integers(0, 50, 300)
        rk = rng.integers(0, 50, 200)
        x = Relation({"k": lk, "lv": np.arange(300)})
        y = Relation({"k": rk, "rv": np.arange(200)})
        out = join(x, y)
        expected = {(int(a), i, j)
                    for i, a in enumerate(lk) for j, b in enumerate(rk) if a == b}
        got = {(int(k), int(l), int(r))
               for k, l, r in zip(out["k"], out["lv"], out["rv"])}
        assert got == expected


class TestSemiAntiJoin:
    def test_semi_keeps_matching(self):
        x = rel((1, "a"), (2, "b"), (3, "c"))
        y = rel((2,), (3,))
        assert semi_join(x, y).to_tuple_set() == {(2, "b"), (3, "c")}

    def test_anti_keeps_non_matching(self):
        x = rel((1, "a"), (2, "b"), (3, "c"))
        y = rel((2,), (3,))
        assert anti_join(x, y).to_tuple_set() == {(1, "a")}

    def test_semi_anti_partition(self, rng):
        x = Relation({"k": rng.integers(0, 20, 100)})
        y = Relation({"k": rng.integers(0, 20, 10)})
        assert semi_join(x, y).num_rows + anti_join(x, y).num_rows == 100

    def test_semi_no_duplication(self):
        x = rel((1, "a"))
        y = rel((1,), (1,), (1,))
        assert semi_join(x, y).num_rows == 1


class TestSetOps:
    def test_union_dedups_within_inputs(self):
        x = rel((1, "a"), (1, "a"))
        y = rel((2, "b"), (2, "b"))
        assert union(x, y).num_rows == 2

    def test_union_positional_schema_matching(self):
        x = Relation({"a": [1]})
        y = Relation({"b": [2]})
        assert union(x, y).to_tuple_set() == {(1,), (2,)}

    def test_union_arity_mismatch(self):
        with pytest.raises(RelationError):
            union(Relation({"a": [1]}), rel((1, 2)))

    def test_intersection_dedups(self):
        x = rel((1,), (1,))
        y = rel((1,),)
        assert intersection(x, y).num_rows == 1

    def test_difference_with_empty(self):
        x = rel((1,), (2,))
        y = Relation.empty_like(x)
        assert difference(x, y).to_tuple_set() == {(1,), (2,)}

    def test_difference_of_self_is_empty(self):
        x = rel((1,), (2,))
        assert difference(x, x).num_rows == 0

    def test_intersection_empty(self):
        x = rel((1,),)
        y = rel((2,),)
        assert intersection(x, y).num_rows == 0

    def test_whole_tuple_semantics(self):
        # same key, different value: NOT equal tuples
        x = rel((1, "a"))
        y = rel((1, "b"))
        assert intersection(x, y).num_rows == 0
        assert difference(x, y).num_rows == 1


class TestProduct:
    def test_sizes(self):
        x = rel((1,), (2,), (3,))
        y = rel((10,), (20,))
        assert product(x, y).num_rows == 6

    def test_empty(self):
        x = rel((1,),)
        y = Relation.empty_like(rel((0,),))
        assert product(x, y).num_rows == 0

    def test_field_clash(self):
        x = Relation({"a": [1]})
        y = Relation({"a": [2]})
        out = product(x, y)
        assert out.fields == ["a", "a_r"]

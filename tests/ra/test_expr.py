"""Tests for the expression / predicate ASTs."""

import numpy as np
import pytest

from repro.ra.expr import (
    And,
    BinOp,
    Compare,
    Const,
    Field,
    Not,
    Or,
    TruePredicate,
    conjoin,
)

COLS = {"a": np.array([1.0, 2.0, 3.0]), "b": np.array([3.0, 2.0, 1.0])}


class TestExprEval:
    def test_field(self):
        assert list(Field("a").evaluate(COLS)) == [1.0, 2.0, 3.0]

    def test_const(self):
        assert Const(5).evaluate(COLS) == 5

    def test_add(self):
        assert list((Field("a") + Field("b")).evaluate(COLS)) == [4.0, 4.0, 4.0]

    def test_sub_mul_div(self):
        e = (Field("a") - 1) * 2
        assert list(e.evaluate(COLS)) == [0.0, 2.0, 4.0]
        assert list((Field("a") / 2).evaluate(COLS)) == [0.5, 1.0, 1.5]

    def test_reflected_ops(self):
        assert list((1 - Field("a")).evaluate(COLS)) == [0.0, -1.0, -2.0]
        assert list((2 * Field("a")).evaluate(COLS)) == [2.0, 4.0, 6.0]
        assert list((10 + Field("a")).evaluate(COLS)) == [11.0, 12.0, 13.0]

    def test_nested_expression(self):
        # the paper's Fig 2(h): (1 - discount) * price
        cols = {"discount": np.array([0.1, 0.5]), "price": np.array([100.0, 200.0])}
        e = (Const(1.0) - Field("discount")) * Field("price")
        assert np.allclose(e.evaluate(cols), [90.0, 100.0])

    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("%", Field("a"), Const(2))

    def test_fields_collected(self):
        e = (Field("a") + Field("b")) * Field("a")
        assert e.fields() == {"a", "b"}

    def test_instruction_estimates(self):
        assert Field("a").instruction_estimate() == 1
        assert Const(1).instruction_estimate() == 0
        assert (Field("a") + 1).instruction_estimate() == 2


class TestPredicates:
    def test_compare_ops(self):
        assert list((Field("a") < 2).evaluate(COLS)) == [True, False, False]
        assert list((Field("a") <= 2).evaluate(COLS)) == [True, True, False]
        assert list((Field("a") > 2).evaluate(COLS)) == [False, False, True]
        assert list((Field("a") >= 2).evaluate(COLS)) == [False, True, True]
        assert list(Field("a").eq(2).evaluate(COLS)) == [False, True, False]
        assert list(Field("a").ne(2).evaluate(COLS)) == [True, False, True]

    def test_field_vs_field_compare(self):
        assert list((Field("a") < Field("b")).evaluate(COLS)) == [True, False, False]

    def test_and_or_not(self):
        p = (Field("a") > 1) & (Field("b") > 1)
        assert list(p.evaluate(COLS)) == [False, True, False]
        q = (Field("a") < 2) | (Field("b") < 2)
        assert list(q.evaluate(COLS)) == [True, False, True]
        assert list((~(Field("a") < 2)).evaluate(COLS)) == [False, True, True]

    def test_unknown_cmp_rejected(self):
        with pytest.raises(ValueError):
            Compare("<>", Field("a"), Const(1))

    def test_true_predicate(self):
        assert list(TruePredicate().evaluate(COLS)) == [True, True, True]
        assert TruePredicate().fields() == set()
        assert TruePredicate().instruction_estimate() == 0

    def test_conjoin_empty(self):
        assert isinstance(conjoin([]), TruePredicate)

    def test_conjoin_single(self):
        p = Field("a") < 2
        assert conjoin([p]) is p

    def test_conjoin_many(self):
        p = conjoin([Field("a") < 3, Field("b") < 3, Field("a") > 0])
        assert list(p.evaluate(COLS)) == [False, True, False]

    def test_predicate_fields(self):
        p = (Field("a") < 1) & (Field("b") > 1)
        assert p.fields() == {"a", "b"}
        assert Not(p).fields() == {"a", "b"}
        assert Or(p, Field("a").eq(0)).fields() == {"a", "b"}

    def test_predicate_instruction_estimate_grows(self):
        p1 = Field("a") < 1
        p2 = p1 & (Field("b") > 1)
        assert p2.instruction_estimate() > p1.instruction_estimate()

    def test_equality_and_hash(self):
        assert (Field("a") < 1) == (Field("a") < 1)
        assert hash(Field("a")) == hash(Field("a"))
        assert Field("a") != Field("b")

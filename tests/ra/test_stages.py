"""Tests for the multi-stage (partition/filter/buffer/gather) skeleton.

The key property (paper Fig 3 / Fig 6): the staged pipeline -- fused or
not -- computes exactly what the logical SELECT computes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RelationError
from repro.ra import (
    Field,
    Relation,
    buffer_stage,
    conjoin,
    filter_stage,
    gather_stage,
    partition,
    select,
    staged_select,
    unfused_select_chain,
)


class TestPartition:
    def test_covers_all_rows(self):
        chunks = partition(100, 7)
        assert chunks[0].start == 0
        assert chunks[-1].stop == 100
        total = sum(c.stop - c.start for c in chunks)
        assert total == 100

    def test_contiguous_non_overlapping(self):
        chunks = partition(1000, 13)
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop == b.start

    def test_more_ctas_than_rows(self):
        chunks = partition(3, 8)
        total = sum(c.stop - c.start for c in chunks)
        assert total == 3

    def test_zero_rows(self):
        chunks = partition(0, 4)
        assert all(c.start == c.stop for c in chunks)

    def test_invalid_cta_count(self):
        with pytest.raises(RelationError):
            partition(10, 0)

    @given(st.integers(0, 10_000), st.integers(1, 256))
    def test_partition_properties(self, n, ctas):
        chunks = partition(n, ctas)
        assert len(chunks) == ctas
        assert sum(c.stop - c.start for c in chunks) == n
        assert all(c.stop >= c.start for c in chunks)


class TestStages:
    def test_filter_stage_local_mask(self, small_relation):
        chunk = slice(100, 200)
        mask = filter_stage(small_relation, chunk, Field("key") < 500)
        expected = small_relation["key"][100:200] < 500
        assert np.array_equal(mask, expected)

    def test_buffer_stage_global_indices(self):
        mask = np.array([True, False, True])
        buf = buffer_stage(slice(10, 13), mask)
        assert list(buf.indices) == [10, 12]

    def test_gather_preserves_cta_order(self, small_relation):
        chunks = partition(small_relation.num_rows, 4)
        bufs = [buffer_stage(c, filter_stage(small_relation, c, Field("key") < 500))
                for c in chunks]
        out = gather_stage(small_relation, bufs)
        # gathered indices must be in ascending global order (CTA order)
        ref = select(small_relation, Field("key") < 500)
        assert out.to_tuples() == ref.to_tuples()


class TestStagedSelect:
    def test_equals_logical_select(self, small_relation):
        pred = Field("key") < 300
        staged = staged_select(small_relation, [pred])
        logical = select(small_relation, pred)
        assert staged.to_tuples() == logical.to_tuples()

    def test_fused_equals_conjoined_select(self, small_relation):
        preds = [Field("key") < 700, Field("value") < 300]
        fused = staged_select(small_relation, preds)
        logical = select(small_relation, conjoin(preds))
        assert fused.to_tuples() == logical.to_tuples()

    def test_fused_equals_unfused_chain(self, small_relation):
        preds = [Field("key") < 700, Field("value") < 500, Field("key") > 100]
        fused = staged_select(small_relation, preds)
        chained = unfused_select_chain(small_relation, preds)
        assert fused.same_tuples(chained)

    def test_no_predicates_rejected(self, small_relation):
        with pytest.raises(RelationError):
            staged_select(small_relation, [])

    def test_single_cta(self, small_relation):
        pred = Field("key") < 500
        assert staged_select(small_relation, [pred], num_ctas=1).same_tuples(
            select(small_relation, pred))

    def test_many_ctas(self, small_relation):
        pred = Field("key") < 500
        assert staged_select(small_relation, [pred], num_ctas=997).same_tuples(
            select(small_relation, pred))

    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=200),
        st.lists(st.integers(0, 1000), min_size=1, max_size=3),
        st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_fusion_correctness_property(self, values, thresholds, ctas):
        """Fused N-filter pipeline == N back-to-back SELECT kernels, for any
        data, any thresholds, any CTA count (the paper's Fig 6 claim)."""
        rel = Relation({"key": np.array(values)})
        preds = [Field("key") < t for t in thresholds]
        fused = staged_select(rel, preds, num_ctas=ctas)
        chained = unfused_select_chain(rel, preds, num_ctas=ctas)
        assert fused.to_tuples() == chained.to_tuples()

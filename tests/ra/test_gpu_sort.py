"""Tests for the staged (GPU-style) sort and unique."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RelationError
from repro.ra import Relation, is_sorted
from repro.ra.gpu_sort import expected_merge_passes, staged_sort, staged_unique
from repro.ra.sort import sort as ref_sort, unique as ref_unique


class TestStagedSort:
    def test_matches_reference_sort(self, rng):
        rel = Relation({"k": rng.integers(0, 1000, 5000).astype(np.int32),
                        "v": rng.integers(0, 10, 5000).astype(np.int32)})
        out, _ = staged_sort(rel)
        assert out.to_tuples() == ref_sort(rel).to_tuples()

    def test_multi_field(self, rng):
        rel = Relation({"a": rng.integers(0, 5, 2000).astype(np.int32),
                        "b": rng.integers(0, 5, 2000).astype(np.int32)})
        out, _ = staged_sort(rel, by=["a", "b"])
        assert out.to_tuples() == ref_sort(rel, by=["a", "b"]).to_tuples()

    def test_stability(self):
        rel = Relation({"k": [1, 1, 1, 0], "tag": ["a", "b", "c", "z"]})
        out, _ = staged_sort(rel, by=["k"])
        assert list(out["tag"]) == ["z", "a", "b", "c"]

    def test_single_row(self):
        rel = Relation({"k": [42]})
        out, stats = staged_sort(rel)
        assert out.to_tuples() == [(42,)]
        assert stats.total_passes == 0

    def test_unknown_field(self):
        with pytest.raises(RelationError):
            staged_sort(Relation({"k": [1]}), by=["zzz"])

    def test_pass_count_matches_prediction(self, rng):
        for n, ctas in [(1000, 16), (777, 8), (4096, 4), (50, 64)]:
            rel = Relation({"k": rng.integers(0, 100, n).astype(np.int32)})
            _, stats = staged_sort(rel, num_ctas=ctas)
            assert stats.merge_passes == expected_merge_passes(n, ctas)
            assert stats.local_sort_passes == 1

    def test_pass_count_logarithmic(self):
        # 4096 elements / 16 CTAs = 256-long runs; 256 -> 4096 is 4 doublings
        assert expected_merge_passes(1 << 12, num_ctas=16) == 4
        assert expected_merge_passes(16, num_ctas=16) == 4  # runs of 1 -> 16

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 5)),
                    min_size=1, max_size=300),
           st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_property_equals_lexsort(self, tuples, ctas):
        rel = Relation.from_tuples(tuples)
        out, _ = staged_sort(rel, by=["f0", "f1"], num_ctas=ctas)
        assert out.to_tuples() == ref_sort(rel, by=["f0", "f1"]).to_tuples()
        assert is_sorted(out, by=["f0", "f1"])


class TestStagedUnique:
    def test_set_equals_reference(self, rng):
        rel = Relation({"k": rng.integers(0, 30, 2000).astype(np.int32),
                        "v": rng.integers(0, 3, 2000).astype(np.int32)})
        out, _ = staged_unique(rel)
        assert out.to_tuple_set() == ref_unique(rel).to_tuple_set()
        assert out.num_rows == ref_unique(rel).num_rows

    def test_output_sorted(self, rng):
        rel = Relation({"k": rng.integers(0, 30, 500).astype(np.int32)})
        out, _ = staged_unique(rel)
        assert is_sorted(out, by=["k"])

    def test_all_duplicates(self):
        rel = Relation({"k": [7] * 100})
        out, _ = staged_unique(rel)
        assert out.to_tuples() == [(7,)]

    def test_all_distinct(self, rng):
        vals = rng.permutation(200).astype(np.int32)
        out, _ = staged_unique(Relation({"k": vals}))
        assert out.num_rows == 200

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_python_set(self, values):
        rel = Relation({"k": np.array(values, dtype=np.int32)})
        out, _ = staged_unique(rel)
        assert out.to_tuple_set() == {(v,) for v in values}

"""Unit tests for the columnar Relation data model."""

import numpy as np
import pytest

from repro.errors import RelationError
from repro.ra.relation import Relation


class TestConstruction:
    def test_basic(self):
        r = Relation({"k": [1, 2, 3], "v": [4.0, 5.0, 6.0]})
        assert r.num_rows == 3
        assert r.fields == ["k", "v"]
        assert r.key == "k"

    def test_explicit_key(self):
        r = Relation({"a": [1], "b": [2]}, key="b")
        assert r.key == "b"
        assert list(r.key_column) == [2]

    def test_empty_columns_rejected(self):
        with pytest.raises(RelationError):
            Relation({})

    def test_ragged_columns_rejected(self):
        with pytest.raises(RelationError):
            Relation({"a": [1, 2], "b": [1]})

    def test_unknown_key_rejected(self):
        with pytest.raises(RelationError):
            Relation({"a": [1]}, key="nope")

    def test_2d_columns_rejected(self):
        with pytest.raises(RelationError):
            Relation({"a": np.zeros((2, 2))})

    def test_object_strings_normalized(self):
        r = Relation({"s": np.array(["x", "yy"], dtype=object)})
        assert r["s"].dtype.kind == "U"


class TestFromTuples:
    def test_default_field_names(self):
        r = Relation.from_tuples([(1, "a"), (2, "b")])
        assert r.fields == ["f0", "f1"]

    def test_custom_field_names(self):
        r = Relation.from_tuples([(1, 2)], fields=["x", "y"])
        assert r.fields == ["x", "y"]

    def test_roundtrip(self):
        tuples = [(3, "a"), (4, "a"), (2, "b")]
        assert Relation.from_tuples(tuples).to_tuples() == tuples

    def test_ragged_tuples_rejected(self):
        with pytest.raises(RelationError):
            Relation.from_tuples([(1, 2), (3,)])

    def test_empty_rejected(self):
        with pytest.raises(RelationError):
            Relation.from_tuples([])

    def test_name_count_mismatch(self):
        with pytest.raises(RelationError):
            Relation.from_tuples([(1, 2)], fields=["only_one"])


class TestAccessors:
    def test_len(self):
        assert len(Relation({"a": [1, 2]})) == 2

    def test_getitem(self):
        r = Relation({"a": [1, 2]})
        assert list(r["a"]) == [1, 2]

    def test_missing_column(self):
        with pytest.raises(RelationError):
            Relation({"a": [1]}).column("b")

    def test_nbytes(self):
        r = Relation({"a": np.zeros(10, dtype=np.int32),
                      "b": np.zeros(10, dtype=np.float64)})
        assert r.nbytes == 10 * 4 + 10 * 8
        assert r.row_nbytes == 12

    def test_empty_like(self):
        r = Relation({"a": [1, 2], "b": ["x", "y"]}, key="b")
        e = Relation.empty_like(r)
        assert e.num_rows == 0
        assert e.fields == r.fields
        assert e.key == "b"


class TestDerived:
    def test_take_indices(self):
        r = Relation({"a": [10, 20, 30]})
        assert Relation.to_tuples(r.take(np.array([2, 0]))) == [(30,), (10,)]

    def test_take_mask(self):
        r = Relation({"a": [10, 20, 30]})
        assert r.take(np.array([True, False, True])).to_tuples() == [(10,), (30,)]

    def test_with_columns(self):
        r = Relation({"a": [1, 2]})
        r2 = r.with_columns({"b": np.array([3, 4])})
        assert r2.fields == ["a", "b"]
        assert r.fields == ["a"]  # original untouched

    def test_with_columns_wrong_length(self):
        with pytest.raises(RelationError):
            Relation({"a": [1, 2]}).with_columns({"b": np.array([1])})

    def test_rename(self):
        r = Relation({"a": [1], "b": [2]})
        r2 = r.rename({"a": "x"})
        assert r2.fields == ["x", "b"]
        assert r2.key == "x"

    def test_rename_collision(self):
        with pytest.raises(RelationError):
            Relation({"a": [1], "b": [2]}).rename({"a": "b"})


class TestComparison:
    def test_same_tuples_order_insensitive(self):
        a = Relation({"k": [1, 2, 3], "v": [4, 5, 6]})
        b = a.take(np.array([2, 0, 1]))
        assert a.same_tuples(b)

    def test_same_tuples_multiset(self):
        a = Relation({"k": [1, 1, 2]})
        b = Relation({"k": [1, 2, 2]})
        assert not a.same_tuples(b)

    def test_same_tuples_different_fields(self):
        a = Relation({"k": [1]})
        b = Relation({"j": [1]})
        assert not a.same_tuples(b)

    def test_same_tuples_different_length(self):
        a = Relation({"k": [1, 1]})
        b = Relation({"k": [1]})
        assert not a.same_tuples(b)

    def test_repr_contains_fields(self):
        assert "fields" in repr(Relation({"a": [1]}))

"""Property-based tests of relational-algebra laws (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ra import (
    Field,
    Relation,
    anti_join,
    conjoin,
    difference,
    intersection,
    join,
    select,
    semi_join,
    union,
)

# strategy: small relations of (int key, int value) tuples
tuples_st = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 5)), min_size=1, max_size=40)


def mk(tuples):
    return Relation.from_tuples(tuples)


@given(tuples_st, tuples_st)
def test_union_commutative_as_sets(a, b):
    x, y = mk(a), mk(b)
    assert union(x, y).to_tuple_set() == union(y, x).to_tuple_set()


@given(tuples_st, tuples_st)
def test_intersection_commutative(a, b):
    x, y = mk(a), mk(b)
    assert intersection(x, y).to_tuple_set() == intersection(y, x).to_tuple_set()


@given(tuples_st, tuples_st)
def test_union_matches_python_sets(a, b):
    assert union(mk(a), mk(b)).to_tuple_set() == set(a) | set(b)


@given(tuples_st, tuples_st)
def test_intersection_matches_python_sets(a, b):
    assert intersection(mk(a), mk(b)).to_tuple_set() == set(a) & set(b)


@given(tuples_st, tuples_st)
def test_difference_matches_python_sets(a, b):
    assert difference(mk(a), mk(b)).to_tuple_set() == set(a) - set(b)


@given(tuples_st, tuples_st)
def test_difference_subset_of_left(a, b):
    assert difference(mk(a), mk(b)).to_tuple_set() <= set(a)


@given(tuples_st, tuples_st)
def test_inclusion_exclusion(a, b):
    x, y = mk(a), mk(b)
    u = len(union(x, y).to_tuple_set())
    i = len(intersection(x, y).to_tuple_set())
    assert u + i == len(set(a)) + len(set(b))


@given(tuples_st)
def test_union_idempotent(a):
    x = mk(a)
    assert union(x, x).to_tuple_set() == set(a)


@given(tuples_st, tuples_st)
def test_semi_plus_anti_is_identity_partition(a, b):
    x, y = mk(a), mk(b)
    s = semi_join(x, y)
    t = anti_join(x, y)
    assert s.num_rows + t.num_rows == x.num_rows
    assert s.to_tuple_set() | t.to_tuple_set() == x.to_tuple_set()
    keys = set(int(k) for k in y.key_column)
    assert all(int(k) in keys for k in s.key_column)
    assert all(int(k) not in keys for k in t.key_column)


@given(tuples_st, tuples_st)
@settings(max_examples=50)
def test_join_key_set_is_intersection_of_keys(a, b):
    x, y = mk(a), mk(b)
    out = join(x, y)
    expected = set(int(k) for k in x.key_column) & set(int(k) for k in y.key_column)
    assert set(int(k) for k in out.key_column) == expected


@given(tuples_st, st.integers(0, 15), st.integers(0, 15))
def test_select_conjunction_equals_chained_select(a, t1, t2):
    """The fusion correctness property at the logical level: filtering with
    p1 AND p2 equals SELECT(p1) then SELECT(p2)."""
    x = mk(a)
    p1, p2 = Field("f0") < t1, Field("f0") < t2
    fused = select(x, conjoin([p1, p2]))
    chained = select(select(x, p1), p2)
    assert fused.same_tuples(chained)


@given(tuples_st, st.integers(0, 15))
def test_select_partition(a, t):
    x = mk(a)
    lo = select(x, Field("f0") < t)
    hi = select(x, Field("f0") >= t)
    assert lo.num_rows + hi.num_rows == x.num_rows


@given(tuples_st, tuples_st)
@settings(max_examples=50)
def test_join_row_count_from_key_histograms(a, b):
    x, y = mk(a), mk(b)
    xk = [int(k) for k in x.key_column]
    yk = [int(k) for k in y.key_column]
    expected = sum(xk.count(k) * yk.count(k) for k in set(xk))
    assert join(x, y).num_rows == expected

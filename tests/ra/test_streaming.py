"""Tests for functional segmented execution (fission's functional side)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RelationError
from repro.ra import Field, Relation, conjoin, select
from repro.ra.streaming import SegmentResult, host_gather, split_rows, streamed_select_chain


@pytest.fixture
def rel(rng):
    return Relation({"k": rng.integers(0, 100, 30_000).astype(np.int32),
                     "v": rng.integers(0, 100, 30_000).astype(np.int32)})

PREDS = [Field("k") < 70, Field("v") < 50]


class TestSplitRows:
    def test_covers_exactly(self):
        parts = split_rows(100, 30)
        assert parts == [(0, 30), (30, 30), (60, 30), (90, 10)]

    def test_single_segment(self):
        assert split_rows(10, 100) == [(0, 10)]

    def test_zero_rows(self):
        assert split_rows(0, 10) == []

    def test_invalid_segment_size(self):
        with pytest.raises(RelationError):
            split_rows(10, 0)

    @given(st.integers(0, 10_000), st.integers(1, 3000))
    def test_partition_property(self, n, seg):
        parts = split_rows(n, seg)
        assert sum(length for _, length in parts) == n
        pos = 0
        for start, length in parts:
            assert start == pos and length > 0
            pos += length


class TestHostGather:
    def test_restores_segment_order(self, rel):
        a = SegmentResult(1, 10, rel.take(np.array([1])))
        b = SegmentResult(0, 0, rel.take(np.array([0])))
        out = host_gather([a, b])  # completion order != segment order
        assert out.to_tuples() == rel.take(np.array([0, 1])).to_tuples()

    def test_empty_rejected(self):
        with pytest.raises(RelationError):
            host_gather([])


class TestStreamedChain:
    def test_equals_unsegmented(self, rel):
        ref = select(rel, conjoin(PREDS))
        out = streamed_select_chain(rel, PREDS, segment_rows=7_000)
        assert out.to_tuples() == ref.to_tuples()

    def test_unfused_segments_equal_too(self, rel):
        ref = select(rel, conjoin(PREDS))
        out = streamed_select_chain(rel, PREDS, segment_rows=4_000, fused=False)
        assert out.to_tuples() == ref.to_tuples()

    def test_segment_size_irrelevant(self, rel):
        outs = [streamed_select_chain(rel, PREDS, segment_rows=s).to_tuples()
                for s in (1_000, 9_999, 30_000, 100_000)]
        assert all(o == outs[0] for o in outs)

    def test_needs_predicates(self, rel):
        with pytest.raises(RelationError):
            streamed_select_chain(rel, [], segment_rows=100)

    @given(st.integers(1, 5000), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_segmentation_commutes_property(self, seg, t1, t2):
        """The property that makes SELECT fission-able: filtering commutes
        with segmentation for any segment size and thresholds."""
        rng = np.random.default_rng(7)
        rel = Relation({"k": rng.integers(0, 100, 4000).astype(np.int32),
                        "v": rng.integers(0, 100, 4000).astype(np.int32)})
        preds = [Field("k") < t1, Field("v") < t2]
        ref = select(rel, conjoin(preds))
        out = streamed_select_chain(rel, preds, segment_rows=seg)
        assert out.to_tuples() == ref.to_tuples()

    def test_sort_does_not_commute_with_segmentation(self, rel):
        """The reason SORT cannot fission: per-segment sorting + concat is
        NOT a global sort."""
        from repro.ra.sort import is_sorted, sort as ra_sort
        seg_sorted_parts = []
        for i, (start, length) in enumerate(split_rows(rel.num_rows, 5_000)):
            chunk = rel.take(np.arange(start, start + length))
            seg_sorted_parts.append(SegmentResult(i, start, ra_sort(chunk, by=["k"])))
        stitched = host_gather(seg_sorted_parts)
        assert not is_sorted(stitched, by=["k"])

"""Tests for the staged hash join."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RelationError
from repro.ra import Relation, join
from repro.ra.hash_join import TABLE_LOAD_FACTOR, build_hash_table, staged_hash_join


class TestBuild:
    def test_table_size_matches_cost_model(self):
        r = Relation({"k": np.arange(100, dtype=np.int32)})
        t = build_hash_table(r)
        assert t.n_slots == int(100 * TABLE_LOAD_FACTOR)

    def test_all_rows_inserted(self):
        r = Relation({"k": np.arange(50, dtype=np.int32)})
        t = build_hash_table(r)
        assert (t.rows >= 0).sum() == 50

    def test_duplicate_keys_all_present(self):
        r = Relation({"k": np.array([7, 7, 7], dtype=np.int32)})
        t = build_hash_table(r)
        assert (t.keys == 7).sum() == 3

    def test_missing_key_raises(self):
        with pytest.raises(RelationError):
            build_hash_table(Relation({"k": [1]}), on="zzz")

    def test_collisions_counted(self):
        # identical keys guarantee probe collisions
        r = Relation({"k": np.zeros(20, dtype=np.int32)})
        t = build_hash_table(r)
        assert t.build_probes > 0


class TestProbeJoin:
    def test_matches_reference_join(self, rng):
        x = Relation({"k": rng.integers(0, 30, 400).astype(np.int32),
                      "lv": np.arange(400, dtype=np.int32)})
        y = Relation({"k": rng.integers(0, 30, 100).astype(np.int32),
                      "rv": np.arange(100, dtype=np.int32)})
        got = staged_hash_join(x, y)
        ref = join(x, y)
        assert got.same_tuples(ref)

    def test_no_matches(self):
        x = Relation({"k": np.array([1, 2], dtype=np.int32)})
        y = Relation({"k": np.array([9], dtype=np.int32), "v": np.array([0])})
        out = staged_hash_join(x, y)
        assert out.num_rows == 0
        assert out.fields == ["k", "v"]

    def test_duplicates_cross_product(self):
        x = Relation.from_tuples([(1, "a"), (1, "b")])
        y = Relation.from_tuples([(1, "x"), (1, "y")])
        out = staged_hash_join(x, y)
        assert out.num_rows == 4

    def test_named_key(self):
        x = Relation({"id": np.array([5], dtype=np.int32),
                      "nk": np.array([2], dtype=np.int32)})
        y = Relation({"nk": np.array([2], dtype=np.int32),
                      "name": np.array(["x"])})
        out = staged_hash_join(x, y, on="nk")
        assert out.to_tuples() == [(5, 2, "x")]

    def test_cta_count_irrelevant(self, rng):
        x = Relation({"k": rng.integers(0, 10, 200).astype(np.int32)})
        y = Relation({"k": rng.integers(0, 10, 40).astype(np.int32),
                      "v": np.arange(40, dtype=np.int32)})
        a = staged_hash_join(x, y, num_ctas=1)
        b = staged_hash_join(x, y, num_ctas=64)
        assert a.same_tuples(b)

    @given(st.lists(st.integers(0, 12), min_size=1, max_size=60),
           st.lists(st.integers(0, 12), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_property_equals_sort_merge_join(self, lk, rk):
        x = Relation({"k": np.array(lk, dtype=np.int32),
                      "li": np.arange(len(lk), dtype=np.int32)})
        y = Relation({"k": np.array(rk, dtype=np.int32),
                      "ri": np.arange(len(rk), dtype=np.int32)})
        assert staged_hash_join(x, y).same_tuples(join(x, y))

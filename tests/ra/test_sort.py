"""Tests for SORT / UNIQUE."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import RelationError
from repro.ra import Relation, is_sorted, sort, unique


class TestSort:
    def test_sorts_by_key_by_default(self):
        r = Relation({"k": [3, 1, 2], "v": ["c", "a", "b"]})
        out = sort(r)
        assert out.to_tuples() == [(1, "a"), (2, "b"), (3, "c")]

    def test_sort_descending(self):
        r = Relation({"k": [3, 1, 2]})
        assert sort(r, descending=True).to_tuples() == [(3,), (2,), (1,)]

    def test_multi_field_sort(self):
        r = Relation({"a": [1, 0, 1, 0], "b": [0, 1, 1, 0]})
        out = sort(r, by=["a", "b"])
        assert out.to_tuples() == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_sort_is_stable(self):
        r = Relation({"k": [1, 1, 1], "tag": ["first", "second", "third"]})
        out = sort(r, by=["k"])
        assert list(out["tag"]) == ["first", "second", "third"]

    def test_unknown_field(self):
        with pytest.raises(RelationError):
            sort(Relation({"a": [1]}), by=["zz"])

    def test_empty_by_list(self):
        with pytest.raises(RelationError):
            sort(Relation({"a": [1]}), by=[])

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=60))
    def test_matches_numpy_sort(self, values):
        r = Relation({"k": np.array(values)})
        assert list(sort(r)["k"]) == sorted(values)

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=1, max_size=40))
    def test_is_sorted_after_sort(self, tuples):
        r = Relation.from_tuples(tuples)
        assert is_sorted(sort(r, by=["f0", "f1"]), by=["f0", "f1"])


class TestUnique:
    def test_removes_duplicates(self):
        r = Relation.from_tuples([(1, "a"), (1, "a"), (2, "b")])
        assert unique(r).num_rows == 2

    def test_keeps_first_occurrence_order(self):
        r = Relation.from_tuples([(2, "b"), (1, "a"), (2, "b"), (1, "a")])
        assert unique(r).to_tuples() == [(2, "b"), (1, "a")]

    def test_distinct_key_same_value_kept(self):
        r = Relation.from_tuples([(1, "a"), (2, "a")])
        assert unique(r).num_rows == 2

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 3)),
                    min_size=1, max_size=50))
    def test_matches_python_set(self, tuples):
        r = Relation.from_tuples(tuples)
        out = unique(r)
        assert out.to_tuple_set() == set(tuples)
        assert out.num_rows == len(set(tuples))

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=40))
    def test_idempotent(self, values):
        r = Relation({"k": np.array(values)})
        once = unique(r)
        twice = unique(once)
        assert once.to_tuples() == twice.to_tuples()


class TestIsSorted:
    def test_single_row(self):
        assert is_sorted(Relation({"a": [5]}))

    def test_detects_unsorted(self):
        assert not is_sorted(Relation({"a": [2, 1]}))

    def test_non_strict(self):
        assert is_sorted(Relation({"a": [1, 1, 2]}))

"""Chaos x optimizer: faults on the chosen strategy walk the degradation
ladder, the landing rung is recorded, and the cached decision is
invalidated instead of pinning the failed strategy.

``REPRO_CHAOS_RATE`` (default 1.0) scales the injected OOM-storm rate so
CI can dial the pressure without editing the test.
"""

import os

from repro.faults import FaultKind, FaultPlan
from repro.optimizer import Optimizer, PlanCache
from repro.runtime.select_chain import select_chain_plan

CHAOS_RATE = float(os.environ.get("REPRO_CHAOS_RATE", "1.0"))

#: enough repeated OOM at every allocation site to defeat every GPU rung
OOM_STORM = FaultPlan(seed=0, rates={FaultKind.DEVICE_OOM: CHAOS_RATE},
                      budget=256)

PLAN_ROWS = {"input": 1_000_000}


def test_degraded_run_records_rung_and_invalidates_cache():
    cache = PlanCache()
    opt = Optimizer(cache=cache)
    plan = select_chain_plan(2)
    result, decision = opt.run(plan, PLAN_ROWS, include_cpubase=False,
                               faults=OOM_STORM)
    # the ladder walked off the chosen strategy and said where it landed
    assert result.degraded_to is not None
    assert result.faults_injected > 0
    # the decision that just faulted must not be served to the next query
    assert decision.cache_key not in cache
    assert cache.invalidations >= 1
    fresh = opt.choose(plan, PLAN_ROWS, include_cpubase=False)
    assert not fresh.cache_hit


def test_clean_run_keeps_cached_decision():
    cache = PlanCache()
    opt = Optimizer(cache=cache)
    plan = select_chain_plan(2)
    result, decision = opt.run(plan, PLAN_ROWS, include_cpubase=False)
    assert result.degraded_to is None
    assert decision.cache_key in cache
    assert opt.choose(plan, PLAN_ROWS, include_cpubase=False).cache_hit


def test_chaos_choice_deterministic_with_same_seed():
    plan = select_chain_plan(2)
    a = Optimizer(cache=PlanCache()).run(plan, PLAN_ROWS,
                                         include_cpubase=False,
                                         faults=OOM_STORM)
    b = Optimizer(cache=PlanCache()).run(plan, PLAN_ROWS,
                                         include_cpubase=False,
                                         faults=OOM_STORM)
    assert a[0].degraded_to == b[0].degraded_to
    assert a[0].makespan == b[0].makespan
    assert a[1].chosen.label == b[1].chosen.label

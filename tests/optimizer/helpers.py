"""Shared functional-execution mapping for the differential harness.

Every optimizer :class:`~repro.optimizer.StrategyOption` maps to a real
functional execution path that computes actual tuples: the memory-managed
:class:`~repro.runtime.GpuRuntime` for single-device strategies and the
host baseline, :meth:`~repro.cluster.ClusterExecutor.functional` for
cluster shapes.  The harness runs chosen *and* rejected options through
this mapping and asserts byte-identical results.
"""

from repro.cluster import ClusterConfig, ClusterExecutor
from repro.runtime import GpuRuntime, Strategy

#: strategy -> GpuRuntime constructor knobs (all modes produce identical
#: tuples by construction; only the simulated schedule differs)
MODES = {
    Strategy.SERIAL: dict(fuse=False, mode="resident"),
    Strategy.FUSED: dict(fuse=True, mode="resident"),
    Strategy.FISSION: dict(fuse=False, mode="fission"),
    Strategy.FUSED_FISSION: dict(fuse=True, mode="fission"),
    Strategy.WITH_ROUND_TRIP: dict(fuse=True, mode="chunked"),
}


def run_option(option, plan, sources):
    """Execute one priced option functionally; returns {sink: Relation}."""
    if option.kind == "cpubase":
        return GpuRuntime(mode="cpubase").run(plan, sources).results
    if option.kind == "single":
        return GpuRuntime(**MODES[option.strategy]).run(plan, sources).results
    cfg = ClusterConfig(num_devices=option.devices, scheme=option.scheme,
                        preagg=option.preagg, merge=option.merge)
    return ClusterExecutor(config=cfg).functional(plan, sources)

"""Compiled-plan cache correctness: hits, perturbation misses, eviction,
corruption.

The load-bearing properties: a hit is only served for a byte-identical
(plan, stats, platform, cluster shape) key; *any* perturbation of those
inputs re-keys; an evicted or corrupted entry recomputes to a
byte-identical decision rather than serving stale or damaged state.
"""

import dataclasses
import json

import pytest

from repro.optimizer import Optimizer, PlanCache, calibration_fingerprint
from repro.runtime.select_chain import select_chain_plan
from repro.simgpu import DeviceSpec

ROWS = {"input": 1_000_000}


def _summary_json(decision) -> str:
    return json.dumps(decision.summary(), sort_keys=True)


class TestPlanCacheUnit:
    def test_roundtrip_and_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refreshes a's recency
        cache.put("c", 3)               # evicts b, the LRU entry
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_invalidate_and_counters(self):
        cache = PlanCache()
        cache.put("k", "v")
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert cache.invalidations == 1
        assert cache.get("k") is None
        assert cache.stats()["cache.misses"] == 1

    def test_corrupted_entry_is_a_miss_not_a_value(self):
        cache = PlanCache()
        cache.put("k", {"answer": 42})
        cache._corrupt("k")
        assert cache.get("k") is None
        assert cache.corruptions == 1
        assert "k" not in cache         # dropped, not served


class TestDecisionCacheHits:
    def test_repeat_choose_hits_and_matches(self):
        opt = Optimizer(cache=PlanCache())
        plan = select_chain_plan(2)
        first = opt.choose(plan, ROWS)
        second = opt.choose(plan, ROWS)
        assert not first.cache_hit and second.cache_hit
        assert _summary_json(first) == _summary_json(second)

    def test_stats_perturbation_misses(self):
        opt = Optimizer(cache=PlanCache())
        plan = select_chain_plan(2)
        opt.choose(plan, ROWS)
        perturbed = opt.choose(plan, {"input": ROWS["input"] + 1})
        assert not perturbed.cache_hit
        assert perturbed.stats_digest != opt.choose(plan, ROWS).stats_digest

    def test_calibration_perturbation_misses(self):
        cache = PlanCache()
        plan = select_chain_plan(2)
        base = DeviceSpec()
        Optimizer(base, cache=cache).choose(plan, ROWS)
        gpu = dataclasses.replace(
            base.calib.gpu,
            mem_bw_efficiency=base.calib.gpu.mem_bw_efficiency / 2)
        slower = dataclasses.replace(
            base, calib=dataclasses.replace(base.calib, gpu=gpu))
        assert (calibration_fingerprint(slower)
                != calibration_fingerprint(base))
        retuned = Optimizer(slower, cache=cache).choose(plan, ROWS)
        assert not retuned.cache_hit

    def test_cluster_spec_perturbation_misses(self):
        cache = PlanCache()
        plan = select_chain_plan(2)
        opt = Optimizer(cache=cache)
        opt.choose(plan, ROWS, max_devices=1)
        assert not opt.choose(plan, ROWS, max_devices=2).cache_hit
        sharers = Optimizer(cache=cache, pcie_sharers=4)
        assert not sharers.choose(plan, ROWS, max_devices=1).cache_hit

    def test_eviction_recomputes_byte_identical(self):
        cache = PlanCache(capacity=1)
        opt = Optimizer(cache=cache)
        first = opt.choose(select_chain_plan(2), ROWS)
        opt.choose(select_chain_plan(3), ROWS)   # evicts the first decision
        assert first.cache_key not in cache
        recomputed = opt.choose(select_chain_plan(2), ROWS)
        assert not recomputed.cache_hit
        assert _summary_json(recomputed) == _summary_json(first)

    def test_corruption_detected_and_recomputed(self):
        cache = PlanCache()
        opt = Optimizer(cache=cache)
        first = opt.choose(select_chain_plan(2), ROWS)
        cache._corrupt(first.cache_key)
        recomputed = opt.choose(select_chain_plan(2), ROWS)
        assert not recomputed.cache_hit
        assert cache.corruptions == 1
        assert _summary_json(recomputed) == _summary_json(first)
        # and the repaired entry serves hits again
        assert opt.choose(select_chain_plan(2), ROWS).cache_hit


class TestCompiledArtifactCache:
    def test_executor_reuses_compiled_fusion(self):
        from repro.runtime import ExecutionConfig, Executor, Strategy
        cache = PlanCache()
        ex = Executor(plan_cache=cache)
        plan = select_chain_plan(2)
        cfg = ExecutionConfig(strategy=Strategy.FUSED)
        a = ex.run(plan, ROWS, cfg)
        hits_before = cache.hits
        b = ex.run(plan, ROWS, cfg)
        assert cache.hits > hits_before
        assert a.makespan == b.makespan


class TestMergeStats:
    """Pooled hit-rate accounting (docs/SERVING.md: worker caches are
    process-private; rates must merge by counts, not by ratio)."""

    def _stats(self, hits, misses, size=0, capacity=256):
        cache = PlanCache(capacity=capacity)
        cache.hits, cache.misses = hits, misses
        for i in range(size):
            cache.put(f"k{i}", i)
        return cache.stats()

    def test_counts_sum_and_rate_recomputes(self):
        merged = PlanCache.merge_stats([
            self._stats(99, 1),        # 99% on 100 lookups
            self._stats(5_000, 5_000),  # 50% on 10,000 lookups
        ])
        assert merged["cache.hits"] == 5_099
        assert merged["cache.misses"] == 5_001
        # lookup-weighted, NOT the 74.5% a ratio average would claim
        assert merged["cache.hit_rate"] == pytest.approx(0.504852, abs=1e-6)
        assert merged["cache.capacity"] == 512

    def test_empty_parts(self):
        merged = PlanCache.merge_stats([])
        assert merged["cache.hit_rate"] == 0.0
        assert merged["cache.hits"] == 0

    def test_merge_matches_single_cache_semantics(self):
        whole = self._stats(30, 10)
        split = PlanCache.merge_stats([self._stats(20, 5),
                                       self._stats(10, 5)])
        for key in ("cache.hits", "cache.misses", "cache.hit_rate"):
            assert split[key] == whole[key]

"""Deprecation shims: the old autostrategy / estimates entry points keep
working, warn, and agree with the optimizer they now delegate to."""

import pytest

from repro.optimizer import DataStats, Optimizer
from repro.plans.fuzz import random_plan_case
from repro.runtime.autostrategy import StrategyChoice, choose_strategy, run_auto
from repro.runtime.estimates import observed_stats, profile_estimates
from repro.runtime.select_chain import select_chain_plan

ROWS = {"input": 50_000_000}


class TestAutostrategyShim:
    def test_choose_strategy_warns(self):
        with pytest.warns(DeprecationWarning, match="choose_strategy"):
            choice = choose_strategy(select_chain_plan(2), ROWS)
        assert isinstance(choice, StrategyChoice)

    def test_choice_matches_optimizer(self):
        plan = select_chain_plan(2)
        with pytest.warns(DeprecationWarning):
            choice = choose_strategy(plan, ROWS)
        decision = Optimizer().choose(plan, ROWS, include_cpubase=False)
        assert choice.strategy is decision.chosen.option.strategy
        assert any("optimizer" in r for r in choice.reasons)

    def test_run_auto_warns_and_runs_the_choice(self):
        plan = select_chain_plan(2)
        with pytest.warns(DeprecationWarning, match="run_auto"):
            result, choice = run_auto(plan, ROWS)
        assert result.strategy is choice.strategy
        assert result.makespan > 0


class TestEstimatesShim:
    def test_observed_stats_warns_and_delegates(self):
        case = random_plan_case(3)
        with pytest.warns(DeprecationWarning, match="observed_stats"):
            stats = observed_stats(case.plan, case.sources)
        assert stats == DataStats.from_relations(case.plan, case.sources)
        assert stats.total_rows > 0

    def test_profile_bridges_into_data_stats(self):
        case = random_plan_case(3)
        profile = profile_estimates(case.plan, case.sources)
        assert profile.data_stats() == DataStats.from_relations(
            case.plan, case.sources)

"""Property tests on the cost model and chooser.

Two invariants, each checked across a population of seeded stats
profiles (rows, widths, group cardinalities, skew all varied):

* **monotone in rows** -- scaling every table's cardinality up never
  makes any strategy's analytic estimate cheaper;
* **devices never hurt** -- opening the cluster space
  (``max_devices > 1``) never yields a worse chosen price than the best
  single-device decision, because the single-device options stay
  enumerated alongside the cluster shapes.
"""

import numpy as np
import pytest

from repro.optimizer import CostModel, DataStats, Optimizer, TableStats
from repro.optimizer.space import enumerate_options
from repro.runtime.select_chain import select_chain_plan
from repro.simgpu import DeviceSpec
from repro.tpch import build_q6_plan

PROFILE_SEEDS = list(range(12))

SCALES = (0.5, 1.0, 2.0, 4.0, 8.0)


def _profile(plan, seed: int) -> DataStats:
    """One seeded stats profile: random cardinality, group count, skew."""
    rng = np.random.default_rng(seed)
    base = DataStats.from_rows(
        plan, {s.name: int(rng.integers(10_000, 20_000_000))
               for s in plan.sources()})
    return DataStats(tables=tuple(
        (name, TableStats(
            rows=ts.rows, row_nbytes=ts.row_nbytes,
            distinct=(("k", int(rng.integers(2, 10_000))),),
            skew=float(rng.uniform(0.0, 0.9))))
        for name, ts in base.tables))


class TestMonotoneInRows:
    @pytest.mark.parametrize("seed", PROFILE_SEEDS)
    def test_every_strategy_estimate_is_monotone(self, seed):
        plan = build_q6_plan() if seed % 2 else select_chain_plan(3)
        stats = _profile(plan, seed)
        model = CostModel(DeviceSpec())
        for option in enumerate_options(plan, stats):
            prev = None
            for scale in SCALES:
                total = model.estimate(plan, stats.scaled(scale),
                                       option).total_s
                if prev is not None:
                    assert total >= prev - 1e-12, (
                        f"seed={seed} option={option.label}: estimate "
                        f"dropped from {prev} to {total} at x{scale}")
                prev = total


class TestDevicesNeverHurt:
    @pytest.mark.parametrize("rows", [200_000, 2_000_000, 6_000_000,
                                      20_000_000])
    def test_cluster_space_never_worse_than_single(self, rows):
        plan = build_q6_plan()
        opt = Optimizer()
        single = opt.choose(plan, {"lineitem": rows}, max_devices=1)
        multi = opt.choose(plan, {"lineitem": rows}, max_devices=4)
        assert multi.chosen.price_s <= single.chosen.price_s + 1e-12, (
            f"opening the cluster space at {rows} rows made the decision "
            f"worse: {multi.chosen.label} {multi.chosen.price_s} vs "
            f"{single.chosen.label} {single.chosen.price_s}")

    def test_single_options_still_enumerated_at_multi(self):
        plan = build_q6_plan()
        decision = Optimizer().choose(plan, {"lineitem": 1_000_000},
                                      max_devices=4)
        labels = {c.label for c in decision.candidates}
        assert {"serial", "fused", "fission", "fused_fission",
                "with_round_trip", "cpubase"} <= labels
        assert any(label.startswith("cluster") for label in labels)

"""The differential-testing harness: the optimizer is proven correct by
execution, not by assertion.

For every catalog query and a population of fuzzed plans, the harness
takes the optimizer's decision, then *functionally executes* the chosen
strategy AND the best rejected alternatives and checks byte-identical
results -- so a wrong cost model can change performance but never
answers.  It also bounds the regret: the chosen option's price must sit
within ``REGRET_BOUND`` of the best enumerated price.
"""

import pytest

from repro.optimizer import Optimizer
from repro.plans import evaluate_sinks
from repro.plans.fuzz import random_plan_case
from repro.tpch import (
    TpchConfig,
    build_q1_plan,
    build_q6_plan,
    build_q21_plan,
    generate,
    q1_column_relations,
)

from .helpers import run_option

#: chosen price must be within this factor of the best enumerated price
REGRET_BOUND = 1.2

FUZZ_SEEDS = list(range(20))


@pytest.fixture(scope="module")
def tpch_data():
    return generate(TpchConfig(scale_factor=0.002))


def _catalog_case(kind: str, data):
    if kind == "q1":
        return build_q1_plan(), q1_column_relations(data.lineitem)
    if kind == "q6":
        return build_q6_plan(), {"lineitem": data.lineitem}
    return build_q21_plan(), {
        "lineitem": data.lineitem, "orders": data.orders,
        "supplier": data.supplier, "nation": data.nation,
    }


def _assert_differential(plan, sources, max_devices):
    rows = {name: rel.num_rows for name, rel in sources.items()}
    decision = Optimizer().choose(plan, rows, max_devices=max_devices)

    # regret bound: the chosen price never strays from the best enumerated
    assert decision.chosen.price_s <= REGRET_BOUND * decision.best_price_s

    ref = evaluate_sinks(plan, sources)
    exercised = [decision.chosen] + decision.rejected(2)
    assert len(exercised) >= 3, "harness must execute rejected options too"
    for cand in exercised:
        got = run_option(cand.option, plan, sources)
        for name, want in ref.items():
            assert got[name].same_tuples(want), (
                f"strategy {cand.label} changed the answer of "
                f"{plan.name}:{name}")


class TestCatalogQueries:
    @pytest.mark.parametrize("kind", ["q1", "q6", "q21"])
    def test_chosen_and_rejected_agree(self, kind, tpch_data):
        plan, sources = _catalog_case(kind, tpch_data)
        _assert_differential(plan, sources, max_devices=4)


class TestFuzzedPlans:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_chosen_and_rejected_agree(self, seed):
        case = random_plan_case(seed)
        _assert_differential(case.plan, case.sources, max_devices=1)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:4])
    def test_cluster_options_agree(self, seed):
        """A few fuzz shapes priced with the cluster space open: whatever
        wins (or nearly wins), the sharded data path stays byte-exact."""
        case = random_plan_case(seed)
        _assert_differential(case.plan, case.sources, max_devices=2)


class TestChosenIsBestEnumerated:
    def test_chosen_equals_argmin_of_simulated_prices(self, tpch_data):
        plan, sources = _catalog_case("q6", tpch_data)
        rows = {name: rel.num_rows for name, rel in sources.items()}
        decision = Optimizer().choose(plan, rows, max_devices=4)
        feasible = [c for c in decision.candidates if c.feasible]
        assert decision.chosen.price_s == min(c.price_s for c in feasible)

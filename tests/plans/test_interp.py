"""Tests for the functional plan interpreter."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plans import Plan, evaluate, evaluate_sinks
from repro.ra import AggSpec, Const, Field, Relation
from repro.ra import operators as ops
from repro.ra.sort import sort as ra_sort, unique as ra_unique


@pytest.fixture
def data(rng):
    return {
        "t": Relation({"k": rng.integers(0, 50, 500),
                       "v": rng.integers(0, 100, 500)}),
        "d": Relation({"k": rng.integers(0, 50, 30),
                       "w": rng.integers(0, 9, 30)}),
    }


def two_sources(plan):
    return plan.source("t"), plan.source("d")


class TestEvaluate:
    def test_missing_source_binding(self):
        plan = Plan()
        plan.source("t")
        with pytest.raises(PlanError):
            evaluate(plan, {})

    def test_select_matches_direct_call(self, data):
        plan = Plan()
        t, _ = two_sources(plan)
        plan.select(t, Field("k") < 25, name="out")
        res = evaluate(plan, data)["out"]
        assert res.same_tuples(ops.select(data["t"], Field("k") < 25))

    def test_join_matches_direct_call(self, data):
        plan = Plan()
        t, d = two_sources(plan)
        plan.join(t, d, on="k", name="out")
        res = evaluate(plan, data)["out"]
        assert res.same_tuples(ops.join(data["t"], data["d"], on="k"))

    def test_semi_anti(self, data):
        plan = Plan()
        t, d = two_sources(plan)
        plan.semi_join(t, d, on="k", name="semi")
        plan.anti_join(t, d, on="k", name="anti")
        res = evaluate(plan, data)
        assert res["semi"].num_rows + res["anti"].num_rows == 500

    def test_sort_unique_arith_aggregate(self, data):
        plan = Plan()
        t, _ = two_sources(plan)
        n = plan.project(t, ["k"], name="proj")
        n = plan.unique(n, name="uni")
        n = plan.sort(n, name="srt")
        n = plan.arith(n, {"k2": Field("k") * Const(2)}, name="ar")
        plan.aggregate(n, [], {"total": AggSpec("sum", "k2")}, name="agg")
        res = evaluate(plan, data)
        expected_unique = ra_unique(ops.project(data["t"], ["k"]))
        assert res["uni"].num_rows == expected_unique.num_rows
        assert res["srt"].num_rows == res["uni"].num_rows
        expected_total = 2 * np.unique(data["t"]["k"]).sum()
        assert float(res["agg"]["total"][0]) == pytest.approx(expected_total)

    def test_set_ops(self, data):
        plan = Plan()
        t, _ = two_sources(plan)
        a = plan.select(t, Field("k") < 30, name="a")
        b = plan.select(t, Field("k") >= 20, name="b")
        plan.union(a, b, name="u")
        plan.intersection(a, b, name="i")
        plan.difference(a, b, name="diff")
        res = evaluate(plan, data)
        ra = res["a"].to_tuple_set()
        rb = res["b"].to_tuple_set()
        assert res["u"].to_tuple_set() == ra | rb
        assert res["i"].to_tuple_set() == ra & rb
        assert res["diff"].to_tuple_set() == ra - rb

    def test_product(self, data):
        plan = Plan()
        t, d = two_sources(plan)
        small = plan.select(d, Field("w").eq(1), name="small")
        plan.product(t, small, name="prod")
        res = evaluate(plan, data)
        assert res["prod"].num_rows == 500 * res["small"].num_rows

    def test_evaluate_sinks_only(self, data):
        plan = Plan()
        t, _ = two_sources(plan)
        mid = plan.select(t, Field("k") < 25, name="mid")
        plan.select(mid, Field("v") < 50, name="final")
        out = evaluate_sinks(plan, data)
        assert "final" in out
        assert "mid" not in out  # intermediates excluded ('d' is an unused
        # source and hence technically a sink)

    def test_chain_matches_manual_composition(self, data):
        plan = Plan()
        t, d = two_sources(plan)
        n = plan.select(t, Field("k") < 40, name="s1")
        n = plan.join(n, d, on="k", name="j")
        n = plan.select(n, Field("w") < 5, name="s2")
        plan.sort(n, by=["k"], name="out")
        res = evaluate(plan, data)["out"]
        manual = ra_sort(
            ops.select(
                ops.join(ops.select(data["t"], Field("k") < 40), data["d"], on="k"),
                Field("w") < 5),
            by=["k"])
        assert res.same_tuples(manual)

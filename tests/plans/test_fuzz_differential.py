"""Differential testing over randomly generated plans.

The strongest correctness statement in the repository: for thousands of
random plans, fusion (and the memory-managed runtime, and the rewrites)
never change what the query computes.
"""

import pytest

from repro.plans import evaluate_sinks, optimize_plan
from repro.plans.fuzz import random_plan_case
from repro.runtime import GpuRuntime
from repro.simgpu.compression import BITPACK, DICT, RLE

SEEDS = list(range(60))


def _sink_relations(plan, results):
    return {s.name: results[s.name] for s in plan.sinks()}


@pytest.mark.parametrize("seed", SEEDS)
def test_fused_runtime_matches_interpreter(seed):
    case = random_plan_case(seed)
    case.plan.validate()
    ref = evaluate_sinks(case.plan, case.sources)
    res = GpuRuntime(fuse=True).run(case.plan, case.sources)
    for name, rel in ref.items():
        assert res.results[name].same_tuples(rel), (
            f"seed={seed} plan={case.description} sink={name}")


@pytest.mark.parametrize("seed", SEEDS[:30])
def test_unfused_runtime_matches_interpreter(seed):
    case = random_plan_case(seed)
    ref = evaluate_sinks(case.plan, case.sources)
    res = GpuRuntime(fuse=False).run(case.plan, case.sources)
    for name, rel in ref.items():
        assert res.results[name].same_tuples(rel), (
            f"seed={seed} plan={case.description}")


@pytest.mark.parametrize("seed", SEEDS[:30])
def test_runtime_under_memory_pressure_matches(seed):
    case = random_plan_case(seed)
    budget = int(case.sources["main"].nbytes * 1.6)
    ref = evaluate_sinks(case.plan, case.sources)
    from repro.errors import DeviceOOMError
    try:
        res = GpuRuntime(fuse=True, memory_limit=budget).run(
            case.plan, case.sources)
    except DeviceOOMError:
        pytest.skip("plan legitimately needs more than the tiny budget")
    for name, rel in ref.items():
        assert res.results[name].same_tuples(rel), (
            f"seed={seed} plan={case.description}")


@pytest.mark.parametrize("seed", SEEDS[:30])
def test_rewrites_preserve_semantics(seed):
    case = random_plan_case(seed)
    opt = optimize_plan(case.plan)
    opt.validate()
    a = evaluate_sinks(case.plan, case.sources)
    b = evaluate_sinks(opt, case.sources)
    assert set(a) == set(b)
    for name in a:
        assert a[name].same_tuples(b[name]), (
            f"seed={seed} plan={case.description}")


@pytest.mark.no_chaos  # compares timings across two separately faulted runs
@pytest.mark.parametrize("seed", SEEDS[:20])
def test_fused_timing_never_worse_than_unfused(seed):
    """Fusion is only applied where the lowering saves work; on these
    chains the fused simulated time must not regress."""
    case = random_plan_case(seed)
    fused = GpuRuntime(fuse=True).run(case.plan, case.sources)
    unfused = GpuRuntime(fuse=False).run(case.plan, case.sources)
    assert fused.makespan <= unfused.makespan * 1.05, (
        f"seed={seed} plan={case.description}")


@pytest.mark.parametrize("seed", SEEDS[:30])
def test_fission_runtime_matches_interpreter(seed):
    """The segmented pipeline (kernel fission over pooled streams) must be
    invisible to the answer, including on plans it cannot stream (where it
    falls back to resident execution)."""
    case = random_plan_case(seed)
    ref = evaluate_sinks(case.plan, case.sources)
    res = GpuRuntime(mode="fission").run(case.plan, case.sources)
    for name, rel in ref.items():
        assert res.results[name].same_tuples(rel), (
            f"seed={seed} plan={case.description}")


@pytest.mark.parametrize("seed", SEEDS[:30])
def test_chunked_runtime_matches_interpreter(seed):
    """Eagerly staging every intermediate to the host (the forced round
    trip) changes the schedule, never the tuples."""
    case = random_plan_case(seed)
    ref = evaluate_sinks(case.plan, case.sources)
    res = GpuRuntime(mode="chunked").run(case.plan, case.sources)
    for name, rel in ref.items():
        assert res.results[name].same_tuples(rel), (
            f"seed={seed} plan={case.description}")


@pytest.mark.parametrize("scheme", [RLE, DICT, BITPACK], ids=lambda s: s.name)
@pytest.mark.parametrize("seed", SEEDS[:15])
def test_compressed_transfers_match_interpreter(seed, scheme):
    case = random_plan_case(seed)
    ref = evaluate_sinks(case.plan, case.sources)
    res = GpuRuntime(mode="compressed", compression=scheme).run(
        case.plan, case.sources)
    for name, rel in ref.items():
        assert res.results[name].same_tuples(rel), (
            f"seed={seed} plan={case.description} scheme={scheme.name}")


def test_compressed_mode_moves_fewer_wire_bytes():
    from repro.simgpu import EventKind
    case = random_plan_case(1)
    raw = GpuRuntime(mode="resident").run(case.plan, case.sources)
    comp = GpuRuntime(mode="compressed", compression=RLE).run(
        case.plan, case.sources)
    bytes_up = lambda r: sum(e.nbytes for e in r.timeline.filter(EventKind.H2D)
                             if e.tag.startswith("input."))
    assert bytes_up(comp) < bytes_up(raw)
    # and pays for it with decompress kernels
    assert any(e.tag.startswith("decompress.")
               for e in comp.timeline.events)


def test_generator_is_deterministic():
    a = random_plan_case(7)
    b = random_plan_case(7)
    assert a.description == b.description
    assert [n.name for n in a.plan.nodes] == [n.name for n in b.plan.nodes]


def test_generator_produces_variety():
    descriptions = {random_plan_case(s).description for s in range(40)}
    assert len(descriptions) > 20

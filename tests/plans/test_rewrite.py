"""Tests for the pre-fusion plan rewrites."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.plans import Plan, evaluate_sinks
from repro.plans.plan import OpType
from repro.plans.rewrite import merge_selects, optimize_plan, prune_projects, reorder_selects
from repro.ra import Field, Relation


def chain_plan(sels=(0.9, 0.2, 0.5)):
    plan = Plan()
    node = plan.source("t", row_nbytes=8)
    for i, s in enumerate(sels):
        node = plan.select(node, Field("k") < int(s * 100),
                           selectivity=s, name=f"s{i}")
    return plan


@pytest.fixture
def rel(rng):
    return Relation({"k": rng.integers(0, 100, 20_000).astype(np.int32),
                     "v": rng.integers(0, 100, 20_000).astype(np.int32)})


def sink_result(plan, rel):
    out = evaluate_sinks(plan, {"t": rel})
    return list(out.values())[0]


class TestReorderSelects:
    def test_most_selective_first(self):
        plan = reorder_selects(chain_plan((0.9, 0.2, 0.5)))
        selects = [n for n in plan.topological() if n.op is OpType.SELECT]
        assert [n.selectivity for n in selects] == [0.2, 0.5, 0.9]

    def test_preserves_semantics(self, rel):
        plan = chain_plan()
        opt = reorder_selects(plan)
        assert sink_result(opt, rel).same_tuples(sink_result(plan, rel))

    def test_original_untouched(self):
        plan = chain_plan((0.9, 0.2, 0.5))
        reorder_selects(plan)
        selects = [n for n in plan.topological() if n.op is OpType.SELECT]
        assert [n.selectivity for n in selects] == [0.9, 0.2, 0.5]

    def test_already_sorted_unchanged(self):
        plan = chain_plan((0.1, 0.5, 0.9))
        opt = reorder_selects(plan)
        selects = [n for n in opt.topological() if n.op is OpType.SELECT]
        assert [n.selectivity for n in selects] == [0.1, 0.5, 0.9]

    def test_multi_consumer_breaks_chain(self):
        plan = chain_plan((0.9, 0.2))
        mid = [n for n in plan.nodes if n.name == "s0"][0]
        plan.sort(mid, name="other_use")  # s0 now has 2 consumers
        opt = reorder_selects(plan)
        selects = [n for n in opt.topological() if n.op is OpType.SELECT]
        # no reorder across the shared node
        assert [n.selectivity for n in selects] == [0.9, 0.2]

    def test_reduces_simulated_time(self):
        from repro.runtime import Executor, ExecutionConfig, Strategy
        ex = Executor()
        cfg = ExecutionConfig(strategy=Strategy.SERIAL, include_transfers=False)
        bad = chain_plan((0.9, 0.1))
        good = reorder_selects(bad)
        t_bad = ex.run(bad, {"t": 10**8}, cfg).makespan
        t_good = ex.run(good, {"t": 10**8}, cfg).makespan
        assert t_good < t_bad


class TestMergeSelects:
    def test_chain_collapses(self):
        plan = merge_selects(chain_plan((0.5, 0.5, 0.5)))
        selects = [n for n in plan.nodes if n.op is OpType.SELECT]
        assert len(selects) == 1
        assert selects[0].selectivity == pytest.approx(0.125)

    def test_preserves_semantics(self, rel):
        plan = chain_plan()
        merged = merge_selects(plan)
        assert sink_result(merged, rel).same_tuples(sink_result(plan, rel))
        merged.validate()

    def test_consumers_rewired(self, rel):
        plan = chain_plan((0.5, 0.5))
        tail = [n for n in plan.nodes if n.name == "s1"][0]
        plan.sort(tail, name="downstream")
        merged = merge_selects(plan)
        merged.validate()
        assert sink_result(merged, rel).same_tuples(sink_result(plan, rel))


class TestPruneProjects:
    def test_nested_projects_collapse(self, rel):
        plan = Plan()
        t = plan.source("t", row_nbytes=8)
        p1 = plan.project(t, ["k", "v"], name="p1")
        plan.project(p1, ["k"], name="p2")
        pruned = prune_projects(plan)
        projects = [n for n in pruned.nodes if n.op is OpType.PROJECT]
        assert len(projects) == 1
        assert sink_result(pruned, rel).same_tuples(sink_result(plan, rel))

    def test_invalid_nesting_detected(self):
        plan = Plan()
        t = plan.source("t", row_nbytes=8)
        p1 = plan.project(t, ["k"], name="p1")
        plan.project(p1, ["v"], name="p2")  # v was dropped by p1
        with pytest.raises(PlanError):
            prune_projects(plan)

    def test_shared_inner_project_kept(self, rel):
        plan = Plan()
        t = plan.source("t", row_nbytes=8)
        p1 = plan.project(t, ["k", "v"], name="p1")
        plan.project(p1, ["k"], name="p2")
        plan.sort(p1, name="other")
        pruned = prune_projects(plan)
        assert len([n for n in pruned.nodes if n.op is OpType.PROJECT]) == 2


class TestOptimizePipeline:
    @given(st.lists(st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9]),
                    min_size=2, max_size=5),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_semantics_preserved_property(self, sels, seed):
        rng = np.random.default_rng(seed)
        rel = Relation({"k": rng.integers(0, 100, 2000).astype(np.int32)})
        plan = Plan()
        node = plan.source("t", row_nbytes=4)
        for i, s in enumerate(sels):
            node = plan.select(node, Field("k") < int(s * 100),
                               selectivity=s, name=f"s{i}")
        opt = optimize_plan(plan)
        opt.validate()
        a = sink_result(plan, rel)
        b = sink_result(opt, rel)
        assert a.same_tuples(b)

    def test_optimized_plan_still_fuses(self):
        from repro.core.fusion import fuse_plan
        opt = optimize_plan(chain_plan((0.9, 0.2, 0.5)))
        fr = fuse_plan(opt)
        assert fr.num_fused_regions == 1
        assert len(fr.regions[0].nodes) == 3

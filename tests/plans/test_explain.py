"""Tests for the EXPLAIN renderer."""

from repro.plans.explain import explain
from repro.runtime.select_chain import select_chain_plan
from repro.tpch import build_q1_plan, q1_source_rows


class TestExplain:
    def test_contains_nodes(self):
        text = explain(select_chain_plan(2))
        assert "SELECT select0" in text
        assert "SOURCE input" in text

    def test_shows_predicates(self):
        text = explain(select_chain_plan(1))
        assert "value <" in text

    def test_shows_sizes_when_given(self):
        text = explain(select_chain_plan(2), source_rows={"input": 1000})
        assert "rows~1,000" in text
        assert "rows~250" in text  # 2 x 50% selectivity

    def test_fusion_overlay(self):
        text = explain(select_chain_plan(3))
        assert "fused region" in text
        assert "1 fused region(s)" in text

    def test_barrier_labeled(self):
        text = explain(build_q1_plan(), source_rows=q1_source_rows(1000))
        assert "barrier" in text
        assert "SORT" in text

    def test_without_fusion_overlay(self):
        text = explain(select_chain_plan(2), fused=False)
        assert "fused region" not in text

    def test_q1_tree_shows_join_cascade(self):
        text = explain(build_q1_plan())
        assert text.count("JOIN") == 6
        assert "AGGREGATE" in text

    def test_side_inputs_marked(self):
        text = explain(build_q1_plan())
        assert "+= " in text  # non-primary inputs drawn differently


class TestDepAnnotations:
    def test_every_edge_is_classified(self):
        text = explain(select_chain_plan(2))
        # every non-sink line carries a dep= tag
        edge_lines = [ln for ln in text.splitlines()
                      if "<- " in ln or "+= " in ln]
        assert edge_lines
        assert all("dep=" in ln for ln in edge_lines)

    def test_chain_edges_are_elementwise(self):
        text = explain(select_chain_plan(2))
        assert "dep=elementwise" in text

    def test_join_build_side_is_barrier(self):
        text = explain(build_q1_plan())
        build_lines = [ln for ln in text.splitlines() if "+= " in ln]
        assert build_lines
        assert all("dep=barrier" in ln for ln in build_lines)

    def test_sink_line_has_no_dep(self):
        text = explain(select_chain_plan(1))
        sink_line = text.splitlines()[1]  # first line under the header
        assert "dep=" not in sink_line

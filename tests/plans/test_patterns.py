"""Tests for the Figure-2 operator-pattern detection."""

import pytest

from repro.plans.patterns import find_patterns, pattern_census
from repro.plans.plan import Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Const, Field
from repro.tpch import build_q1_plan, build_q21_plan


def patterns_of(plan):
    return {m.pattern for m in find_patterns(plan)}


class TestIndividualPatterns:
    def test_a_back_to_back_selects(self):
        plan = Plan()
        s = plan.source("t")
        a = plan.select(s, Field("x") < 1)
        plan.select(a, Field("x") < 2)
        assert "a" in patterns_of(plan)

    def test_b_join_cascade(self):
        plan = Plan()
        a, b, c = plan.source("a"), plan.source("b"), plan.source("c")
        j1 = plan.join(a, b)
        plan.join(j1, c)
        assert "b" in patterns_of(plan)

    def test_c_shared_input_selects(self):
        plan = Plan()
        s = plan.source("t")
        plan.select(s, Field("x") < 1)
        plan.select(s, Field("x") < 2)
        assert "c" in patterns_of(plan)

    def test_c_needs_two_selects(self):
        plan = Plan()
        s = plan.source("t")
        plan.select(s, Field("x") < 1)
        assert "c" not in patterns_of(plan)

    def test_d_select_after_join(self):
        plan = Plan()
        a, b = plan.source("a"), plan.source("b")
        j = plan.join(a, b)
        plan.select(j, Field("x") < 1)
        assert "d" in patterns_of(plan)

    def test_e_arith_after_join(self):
        plan = Plan()
        a, b = plan.source("a"), plan.source("b")
        j = plan.join(a, b)
        plan.arith(j, {"y": Field("x") + 1})
        assert "e" in patterns_of(plan)

    def test_f_join_of_two_selects(self):
        plan = Plan()
        a, b = plan.source("a"), plan.source("b")
        sa = plan.select(a, Field("x") < 1)
        sb = plan.select(b, Field("x") < 2)
        plan.join(sa, sb)
        assert "f" in patterns_of(plan)

    def test_g_aggregation_on_selected(self):
        plan = Plan()
        s = plan.source("t")
        sel = plan.select(s, Field("x") < 1)
        plan.aggregate(sel, [], {"n": AggSpec("count")})
        assert "g" in patterns_of(plan)

    def test_h_arith_project_discarding_sources(self):
        """Fig 2(h): sum((1-discount)*price); PROJECT keeps the result and
        discards the operands."""
        plan = Plan()
        s = plan.source("t")
        ar = plan.arith(s, {"total": (Const(1.0) - Field("discount")) * Field("price")})
        plan.project(ar, ["total"])
        assert "h" in patterns_of(plan)

    def test_h_not_matched_when_sources_kept(self):
        plan = Plan()
        s = plan.source("t")
        ar = plan.arith(s, {"total": Field("price") * 2})
        plan.project(ar, ["total", "price"])
        assert "h" not in patterns_of(plan)

    def test_empty_plan(self):
        assert find_patterns(Plan()) == []


class TestCensus:
    def test_census_counts(self):
        plan = Plan()
        s = plan.source("t")
        a = plan.select(s, Field("x") < 1)
        b = plan.select(a, Field("x") < 2)
        plan.select(b, Field("x") < 3)
        census = pattern_census(plan)
        assert census["a"] == 2
        assert sum(census.values()) == 2

    def test_census_keys_complete(self):
        census = pattern_census(Plan())
        assert sorted(census) == list("abcdefgh")

    def test_q1_contains_expected_patterns(self):
        census = pattern_census(build_q1_plan())
        assert census["b"] >= 5   # the JOIN cascade
        assert census["e"] == 0 or census["e"] >= 0  # structural sanity
        assert sum(census.values()) > 0

    def test_q21_contains_expected_patterns(self):
        census = pattern_census(build_q21_plan())
        assert census["g"] >= 0
        assert sum(census.values()) > 0

    def test_match_node_names(self):
        plan = Plan()
        s = plan.source("t")
        a = plan.select(s, Field("x") < 1, name="first")
        plan.select(a, Field("x") < 2, name="second")
        m = [m for m in find_patterns(plan) if m.pattern == "a"][0]
        assert m.node_names() == ("first", "second")

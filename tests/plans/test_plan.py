"""Tests for the logical-plan builder and graph utilities."""

import pytest

from repro.errors import PlanError
from repro.plans.plan import OpType, Plan, PlanNode
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field


class TestBuilder:
    def test_source(self):
        plan = Plan()
        s = plan.source("t", row_nbytes=8, n_rows=100)
        assert s.op is OpType.SOURCE
        assert s.out_row_nbytes == 8
        assert s.params["n_rows"] == 100

    def test_auto_names_unique(self):
        plan = Plan()
        s = plan.source("t")
        a = plan.select(s, Field("x") < 1)
        b = plan.select(a, Field("x") < 2)
        assert a.name != b.name

    def test_input_must_belong_to_plan(self):
        p1, p2 = Plan(), Plan()
        s = p1.source("t")
        with pytest.raises(PlanError):
            p2.select(s, Field("x") < 1)

    def test_negative_selectivity_rejected(self):
        with pytest.raises(PlanError):
            PlanNode(OpType.SELECT, "bad", [], selectivity=-0.1)

    def test_predicate_accessor(self):
        plan = Plan()
        s = plan.source("t")
        pred = Field("x") < 1
        sel = plan.select(s, pred)
        assert sel.predicate is pred
        assert s.predicate is None


class TestValidation:
    def test_valid_plan_passes(self):
        plan = Plan()
        s = plan.source("t")
        plan.select(s, Field("x") < 1)
        plan.validate()

    def test_arity_enforced(self):
        plan = Plan()
        s = plan.source("t")
        bad = PlanNode(OpType.JOIN, "j", [s])  # JOIN needs 2 inputs
        plan.nodes.append(bad)
        with pytest.raises(PlanError, match="needs 2 inputs"):
            plan.validate()

    def test_duplicate_names_rejected(self):
        plan = Plan()
        s = plan.source("t")
        plan.select(s, Field("x") < 1, name="same")
        plan.select(s, Field("x") < 2, name="same")
        with pytest.raises(PlanError, match="duplicate"):
            plan.validate()

    def test_cycle_detected(self):
        plan = Plan()
        s = plan.source("t")
        a = plan.select(s, Field("x") < 1)
        b = plan.select(a, Field("x") < 2)
        a.inputs[0] = b  # create a cycle
        with pytest.raises(PlanError, match="cycle"):
            plan.validate()


class TestGraphQueries:
    def _diamondish(self):
        plan = Plan()
        s = plan.source("t")
        a = plan.select(s, Field("x") < 1, name="a")
        b = plan.select(a, Field("x") < 2, name="b")
        c = plan.select(a, Field("x") < 3, name="c")
        return plan, s, a, b, c

    def test_consumers(self):
        plan, s, a, b, c = self._diamondish()
        assert set(n.name for n in plan.consumers(a)) == {"b", "c"}
        assert plan.consumers(b) == []

    def test_sinks(self):
        plan, s, a, b, c = self._diamondish()
        assert set(n.name for n in plan.sinks()) == {"b", "c"}

    def test_sources(self):
        plan, s, *_ = self._diamondish()
        assert plan.sources() == [s]

    def test_topological_order(self):
        plan, s, a, b, c = self._diamondish()
        order = [n.name for n in plan.topological()]
        assert order.index("t") < order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")

    def test_all_builders_validate(self):
        plan = Plan()
        l = plan.source("l", row_nbytes=8)
        r = plan.source("r", row_nbytes=8)
        n = plan.select(l, Field("x") < 1)
        n = plan.project(n, ["x"])
        n = plan.join(n, r)
        n = plan.semi_join(n, r)
        n = plan.anti_join(n, r)
        n = plan.product(n, r, right_rows=2)
        n = plan.arith(n, {"y": Field("x") + 1})
        n2 = plan.union(plan.select(l, Field("x") < 9), r)
        n3 = plan.intersection(n2, r)
        n3 = plan.difference(n3, r)
        n = plan.sort(n)
        n = plan.unique(n)
        plan.aggregate(n, [], {"c": AggSpec("count")})
        plan.validate()

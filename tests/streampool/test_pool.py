"""Tests for the Stream Pool runtime library (Table IV API)."""

import pytest

from repro.errors import SchedulingError
from repro.simgpu import DeviceSpec, EventKind, KernelLaunchSpec
from repro.simgpu.engine import HostCommand, SimEngine
from repro.streampool import StreamPool


@pytest.fixture
def pool():
    return StreamPool(DeviceSpec(), num_streams=3)


def kspec(name="k", n=10_000_000):
    return KernelLaunchSpec(name, n, 112, 256, 20, 4.0 * n, 2.0 * n, 40.0 * n)


class TestTable4Api:
    def test_get_available_stream_claims(self, pool):
        a = pool.get_available_stream()
        b = pool.get_available_stream()
        assert a is not b
        assert not a.available

    def test_round_robin_when_exhausted(self, pool):
        claimed = [pool.get_available_stream() for _ in range(3)]
        again = pool.get_available_stream()
        assert again in claimed  # reuses the least-loaded stream

    def test_set_stream_command(self, pool):
        s = pool.get_available_stream()
        pool.set_stream_command(s, HostCommand(tag="h", duration=0.1))
        tl = pool.wait_all()
        assert tl.total_time(EventKind.HOST) == pytest.approx(0.1)

    def test_foreign_stream_rejected(self, pool):
        other = StreamPool(DeviceSpec(), num_streams=1)
        foreign = other.get_available_stream()
        with pytest.raises(SchedulingError):
            pool.set_stream_command(foreign, HostCommand(tag="x"))

    def test_wait_all_resets_streams(self, pool):
        s = pool.get_available_stream()
        s.h2d(1e6)
        pool.wait_all()
        assert all(st.available for st in pool.streams)
        assert all(not st.sim.commands for st in pool.streams)

    def test_paper_spelling_aliases(self, pool):
        assert pool.getAvailableStream is not None
        assert pool.getAvailabeStream is not None  # Table IV's own typo
        s = pool.getAvailabeStream()
        s.h2d(1e6)
        pool.startStreams()
        tl = pool.waitAll()
        assert len(tl.events) == 1

    def test_terminate_drops_commands(self, pool):
        s = pool.get_available_stream()
        s.h2d(1e8)
        pool.terminate()
        with pytest.raises(SchedulingError):
            pool.wait_all()

    def test_commands_rejected_after_terminate(self, pool):
        s = pool.get_available_stream()
        pool.terminate()
        with pytest.raises(SchedulingError):
            s.h2d(1e6)

    def test_commands_rejected_after_start(self, pool):
        s = pool.get_available_stream()
        s.h2d(1e6)
        pool.start_streams()
        with pytest.raises(SchedulingError):
            s.h2d(1e6)

    def test_needs_at_least_one_stream(self):
        with pytest.raises(SchedulingError):
            StreamPool(DeviceSpec(), num_streams=0)


class TestSelectWait:
    def test_point_to_point_sync(self, pool):
        a = pool.get_available_stream()
        b = pool.get_available_stream()
        a.h2d(2e8, tag="upload")
        pool.select_wait(waiter=b, signaler=a)
        b.d2h(1e8, tag="download")
        tl = pool.wait_all()
        up = [e for e in tl.events if e.tag == "upload"][0]
        down = [e for e in tl.events if e.tag == "download"][0]
        assert down.start >= up.end

    def test_without_select_wait_they_overlap(self, pool):
        a = pool.get_available_stream()
        b = pool.get_available_stream()
        a.h2d(2e8, tag="upload")
        b.d2h(1e8, tag="download")
        tl = pool.wait_all()
        down = [e for e in tl.events if e.tag == "download"][0]
        assert down.start == 0.0


class TestPipelining:
    @pytest.mark.no_chaos  # asserts a tight timing margin
    def test_three_streams_overlap_transfers_and_compute(self, pool):
        """The Fig 13 pattern: per-segment h2d/kernel/d2h across 3 streams
        finishes well before the serial sum."""
        serial_time = 0.0
        for i in range(6):
            s = pool.streams[i % 3]
            s.h2d(5e7, tag=f"h{i}")
            s.kernel(kspec(f"k{i}", n=12_500_000))
            s.d2h(2.5e7, tag=f"d{i}")
        tl = pool.wait_all()
        serial_sum = sum(e.duration for e in tl.events)
        assert tl.makespan < 0.75 * serial_sum

    def test_reuse_pool_for_second_batch(self, pool):
        pool.get_available_stream().h2d(1e6)
        t1 = pool.wait_all()
        pool.get_available_stream().h2d(1e6)
        t2 = pool.wait_all()
        assert len(t1.events) == len(t2.events) == 1


class TestExhaustedFallback:
    def test_ties_rotate_across_streams(self, pool):
        """All claimed and equally loaded: repeated calls spread round-robin
        instead of piling everything onto stream 0."""
        for _ in range(3):
            pool.get_available_stream()
        fallbacks = [pool.get_available_stream() for _ in range(3)]
        assert len({s.stream_id for s in fallbacks}) == 3

    def test_prefers_shortest_queue(self, pool):
        claimed = [pool.get_available_stream() for _ in range(3)]
        claimed[0].h2d(1e6)
        claimed[1].h2d(1e6)
        assert pool.get_available_stream() is claimed[2]

    def test_rotation_survives_wait_all_cycles(self, pool):
        for _ in range(3):
            pool.get_available_stream()
        first = pool.get_available_stream()
        first.h2d(1e6)
        pool.wait_all()
        for _ in range(3):
            pool.get_available_stream()
        second = pool.get_available_stream()
        assert second.stream_id != first.stream_id


class TestMultiCycle:
    def test_select_wait_across_cycles(self, pool):
        """Event ids must stay unique when the pool runs several batches."""
        for tag in ("first", "second"):
            a = pool.get_available_stream()
            b = pool.get_available_stream()
            a.h2d(2e8, tag=f"up.{tag}")
            pool.select_wait(waiter=b, signaler=a)
            b.d2h(1e8, tag=f"down.{tag}")
            tl = pool.wait_all()
            up = [e for e in tl.events if e.tag == f"up.{tag}"][0]
            down = [e for e in tl.events if e.tag == f"down.{tag}"][0]
            assert down.start >= up.end

    def test_sync_events_fresh_each_cycle(self, pool):
        from repro.validate import validate_timeline
        for _ in range(3):
            a = pool.get_available_stream()
            b = pool.get_available_stream()
            a.h2d(1e7)
            pool.select_wait(waiter=b, signaler=a)
            b.d2h(1e7)
            tl = pool.wait_all()
            assert len(tl.filter(EventKind.SYNC)) == 2
            assert validate_timeline(tl, pool.device).ok


class TestTerminate:
    def test_terminate_is_idempotent(self, pool):
        pool.terminate()
        pool.terminate()
        with pytest.raises(SchedulingError):
            pool.get_available_stream()

    def test_terminate_mid_cycle_drops_later_batches(self, pool):
        pool.get_available_stream().h2d(1e6)
        pool.wait_all()
        pool.get_available_stream().h2d(1e6)
        pool.terminate()
        assert all(not s.sim.commands for s in pool.streams)
        with pytest.raises(SchedulingError):
            pool.wait_all()

    def test_select_wait_rejected_after_terminate(self, pool):
        a = pool.get_available_stream()
        b = pool.get_available_stream()
        pool.terminate()
        with pytest.raises(SchedulingError):
            pool.select_wait(waiter=b, signaler=a)


class TestFaultedPool:
    """Regressions for the stalled-stream path: wait_all must surface the
    unfinished backlog and terminate must drain it, never drop it."""

    @staticmethod
    def _faulted_pool(plan):
        from repro.faults import FaultInjector
        device = DeviceSpec()
        return StreamPool(device, num_streams=2,
                          engine=SimEngine(device, faults=FaultInjector(plan)))

    def test_wait_all_surfaces_pending_commands(self):
        from repro.errors import TransferFaultError
        from repro.faults import FaultKind, FaultPlan, RetryPolicy
        plan = FaultPlan(seed=0, site_rates={"input.a": 1.0}, budget=64,
                         retry=RetryPolicy(max_retries=1))
        pool = self._faulted_pool(plan)
        a = pool.get_available_stream()
        b = pool.get_available_stream()
        a.h2d(1e7, tag="input.a")
        a.kernel(kspec("stage.a"))
        b.host(1e-4, tag="side.work")
        with pytest.raises(TransferFaultError) as exc:
            pool.wait_all()
        err = exc.value
        assert err.site == "input.a"
        # the stalled stream's backlog is surfaced, keyed by stream id ...
        assert [c.tag for c in err.pending[a.stream_id]] == \
            ["input.a", "stage.a"]
        # ... the independent stream finished and owes nothing ...
        assert b.stream_id not in err.pending
        # ... and partial progress (the failed attempts + side work) is kept
        assert any(e.tag == "side.work" for e in pool.timeline.events)
        assert any(e.tag.startswith("fault.") for e in pool.timeline.events)

    def test_wait_all_can_retry_exactly_the_unfinished_work(self):
        from repro.errors import TransferFaultError
        from repro.faults import FaultKind, FaultPlan, RetryPolicy
        # one fault in the budget: the first wait_all fails, the second
        # completes the leftover commands fault-free
        plan = FaultPlan(seed=0, rates={FaultKind.H2D_FAIL: 1.0}, budget=1,
                         retry=RetryPolicy(max_retries=0))
        pool = self._faulted_pool(plan)
        s = pool.get_available_stream()
        s.h2d(1e7, tag="input.a")
        s.d2h(1e7, tag="output.a")
        with pytest.raises(TransferFaultError):
            pool.wait_all()
        assert [c.tag for c in s.sim.commands] == ["input.a", "output.a"]
        tl = pool.wait_all()
        assert [e.tag for e in tl.events] == ["input.a", "output.a"]
        assert all(not st.sim.commands for st in pool.streams)

    def test_terminate_returns_drained_backlog(self):
        from repro.errors import TransferFaultError
        from repro.faults import FaultPlan, RetryPolicy
        plan = FaultPlan(seed=0, site_rates={"input.a": 1.0}, budget=64,
                         retry=RetryPolicy(max_retries=0))
        pool = self._faulted_pool(plan)
        s = pool.get_available_stream()
        s.h2d(1e7, tag="input.a")
        s.kernel(kspec("stage.a"))
        with pytest.raises(TransferFaultError):
            pool.wait_all()
        drained = pool.terminate()
        assert [c.tag for c in drained] == ["input.a", "stage.a"]
        assert all(not st.sim.commands for st in pool.streams)

    def test_terminate_on_clean_pool_returns_queued_commands(self):
        pool = StreamPool(DeviceSpec(), num_streams=2)
        pool.get_available_stream().h2d(1e6, tag="queued")
        drained = pool.terminate()
        assert [c.tag for c in drained] == ["queued"]


class TestReset:
    def test_reset_drains_queued_commands(self, pool):
        s = pool.get_available_stream()
        s.h2d(1e6, tag="pending")
        drained = pool.reset()
        assert [c.tag for c in drained] == ["pending"]
        assert all(not st.sim.commands for st in pool.streams)

    def test_reset_reopens_after_terminate(self, pool):
        pool.terminate()
        pool.reset()
        s = pool.get_available_stream()
        s.h2d(1e6)
        tl = pool.wait_all()
        assert len(tl.events) == 1

    def test_reset_frees_claimed_streams(self, pool):
        for _ in range(3):
            pool.get_available_stream()
        pool.reset()
        assert all(st.available for st in pool.streams)

    def test_reset_recovers_from_fault_backlog(self):
        from repro.errors import FaultError
        from repro.faults import FaultInjector, FaultKind, FaultPlan, RetryPolicy

        plan = FaultPlan(rates={FaultKind.H2D_FAIL: 1.0},
                         retry=RetryPolicy(max_retries=1))
        device = DeviceSpec()
        pool = StreamPool(device, num_streams=2,
                          engine=SimEngine(device, faults=FaultInjector(plan)))
        s = pool.get_available_stream()
        s.h2d(1e6, tag="doomed")
        with pytest.raises(FaultError):
            pool.wait_all()
        drained = pool.reset()
        assert drained  # the unfinished work comes back out
        # a clean engine serves the next batch on the same pool
        pool.engine = SimEngine(device)
        s = pool.get_available_stream()
        s.h2d(1e6, tag="retry")
        tl = pool.wait_all()
        assert [e.tag for e in tl.events] == ["retry"]

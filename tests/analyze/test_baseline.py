"""Baseline / suppression files: parsing, glob matching, application to
reports, and the write/load round trip."""

from repro.analyze import (
    Analyzer,
    Baseline,
    Suppression,
    baseline_from_findings,
    write_baseline,
)
from repro.plans.plan import Plan
from repro.ra.expr import Field


def warned_plan():
    """A plan producing exactly one PLN009 warning."""
    plan = Plan(name="warned")
    src = plan.source("t", fields=["k", "v"])
    plan.select(src, Field("v") < 1, selectivity=1.5, name="sel")
    return plan


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        base = Baseline.parse(
            "# header comment\n"
            "\n"
            "PLN009 warned:node:sel   # trailing comment\n"
            "STR2*\n")
        assert base.suppressions == [
            Suppression("PLN009", "warned:node:sel"),
            Suppression("STR2*", "*"),
        ]

    def test_render_parse_round_trip(self):
        base = Baseline([Suppression("FUS106", "q21:region:*"),
                         Suppression("PLN005")])
        assert Baseline.parse(base.render()) == base


class TestMatching:
    def test_code_glob(self):
        plan = warned_plan()
        report = Analyzer().run(plan)
        (diag,) = report.diagnostics
        assert Suppression("PLN*").matches(diag)
        assert not Suppression("FUS*").matches(diag)

    def test_location_glob(self):
        plan = warned_plan()
        (diag,) = Analyzer().run(plan).diagnostics
        assert Suppression("PLN009", "warned:*").matches(diag)
        assert not Suppression("PLN009", "other:*").matches(diag)


class TestApplication:
    def test_matched_findings_move_to_suppressed(self):
        base = Baseline.parse("PLN009 warned:*\n")
        report = Analyzer(baseline=base).run(warned_plan())
        assert not report.diagnostics
        assert len(report.suppressed) == 1
        assert report.suppressed[0].code == "PLN009"
        assert report.summary()["suppressed"] == 1

    def test_suppressed_errors_do_not_fail_strict(self):
        plan = Plan(name="bad")
        src = plan.source("t", fields=["k"])
        plan.project(src, ["nope"], name="proj")
        base = Baseline.parse("PLN006 bad:*\n")
        report = Analyzer(baseline=base).run(plan, strict=True)  # no raise
        assert report.ok

    def test_unmatched_findings_stay(self):
        base = Baseline.parse("FUS106 *\n")
        report = Analyzer(baseline=base).run(warned_plan())
        assert len(report.diagnostics) == 1
        assert not report.suppressed


class TestRoundTrip:
    def test_write_then_load_suppresses_same_findings(self, tmp_path):
        report = Analyzer().run(warned_plan())
        path = str(tmp_path / "baseline.txt")
        write_baseline(path, report.diagnostics)
        loaded = Baseline.load(path)
        fresh = Analyzer(baseline=loaded).run(warned_plan())
        assert not fresh.diagnostics
        assert len(fresh.suppressed) == 1

    def test_baseline_from_findings_dedups(self):
        report = Analyzer().run(warned_plan())
        diags = report.diagnostics * 3
        base = baseline_from_findings(diags)
        assert len(base.suppressions) == 1

    def test_indexed_locations_round_trip(self):
        # stream diagnostics render as unit:stream:sN[index]; the [index]
        # must be escaped or fnmatch reads it as a character class
        from repro.simgpu.engine import SimStream
        s = SimStream(stream_id=0)
        s.host(1e-6, tag="k", reads=("ghost",))  # STR203 at s0[0]
        report = Analyzer().run([s], unit="u")
        (diag,) = report.diagnostics
        assert "[0]" in str(diag.location)
        base = baseline_from_findings([diag])
        assert base.matches(diag)

"""Plan lints (PLN0xx): every code fires on its planted defect, and the
messages match what ``Plan.validate`` raises for structural problems."""

import pytest

from repro.analyze import Analyzer, Severity
from repro.errors import AnalysisError, PlanError
from repro.plans.plan import OpType, Plan, PlanNode
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field


def lint(plan):
    return Analyzer().run(plan)


def schema_plan():
    plan = Plan(name="p")
    src = plan.source("t", fields=["k", "v"])
    return plan, src


class TestStructural:
    def test_pln001_arity(self):
        plan, src = schema_plan()
        plan.nodes.append(PlanNode(OpType.JOIN, "bad", [src]))
        report = lint(plan)
        assert report.has_code("PLN001")
        diag = next(d for d in report.errors if d.code == "PLN001")
        assert "needs 2 inputs" in diag.message
        assert "'bad'" in diag.message

    def test_pln002_duplicate_name(self):
        plan, src = schema_plan()
        plan.select(src, Field("k") < 1, name="dup")
        plan.select(src, Field("k") < 2, name="dup")
        report = lint(plan)
        assert report.has_code("PLN002")

    def test_pln003_cycle(self):
        plan, src = schema_plan()
        a = plan.select(src, Field("k") < 1, name="a")
        b = plan.select(a, Field("k") < 2, name="b")
        a.inputs[0] = b
        report = lint(plan)
        assert report.has_code("PLN003")
        diag = next(d for d in report.errors if d.code == "PLN003")
        assert "cycle" in diag.message

    def test_pln004_dangling_input(self):
        plan, src = schema_plan()
        other = PlanNode(OpType.SOURCE, "ghost", [])
        plan.nodes.append(PlanNode(OpType.SELECT, "sel", [other],
                                   params={"predicate": Field("k") < 1}))
        report = lint(plan)
        assert report.has_code("PLN004")
        diag = next(d for d in report.errors if d.code == "PLN004")
        assert "input #0" in diag.message and "'ghost'" in diag.message

    def test_messages_match_validate(self):
        plan, src = schema_plan()
        plan.nodes.append(PlanNode(OpType.JOIN, "bad", [src]))
        with pytest.raises(PlanError) as err:
            plan.validate()
        report = lint(plan)
        assert str(err.value) in {d.message for d in report.errors}


class TestColumnFlow:
    def test_pln006_project_unknown_field(self):
        plan, src = schema_plan()
        plan.project(src, ["k", "nope"], name="proj")
        report = lint(plan)
        assert report.has_code("PLN006")
        assert "'nope'" in str(report.errors[0]) or "nope" in str(
            report.errors[0])

    def test_pln007_join_key_missing_build_side(self):
        plan = Plan(name="p")
        left = plan.source("l", fields=["k", "v"])
        right = plan.source("r", fields=["other"])
        plan.join(left, right, on="k", name="j")
        report = lint(plan)
        assert report.has_code("PLN007")
        diag = next(d for d in report.errors if d.code == "PLN007")
        assert "build side" in diag.message

    def test_pln008_predicate_unknown_field(self):
        plan, src = schema_plan()
        plan.select(src, Field("missing") < 1, name="sel")
        report = lint(plan)
        assert report.has_code("PLN008")

    def test_pln008_sort_and_groupby(self):
        plan, src = schema_plan()
        plan.sort(src, by=["missing"], name="srt")
        assert lint(plan).has_code("PLN008")

        plan2, src2 = schema_plan()
        plan2.aggregate(src2, ["ghost"], {"n": AggSpec("count")}, name="agg")
        assert lint(plan2).has_code("PLN008")

    def test_unknown_schema_is_never_punished(self):
        plan = Plan(name="p")
        src = plan.source("opaque")  # no declared fields
        plan.select(src, Field("whatever") < 1, name="sel")
        report = lint(plan)
        assert not report.has_code("PLN008")
        assert report.ok

    def test_project_narrows_schema_downstream(self):
        plan, src = schema_plan()
        proj = plan.project(src, ["k"], name="proj")
        plan.select(proj, Field("v") < 1, name="sel")  # v was projected away
        assert lint(plan).has_code("PLN008")


class TestWarnings:
    def test_pln005_dead_source(self):
        plan, src = schema_plan()
        plan.source("unused", fields=["x"])
        plan.select(src, Field("k") < 1, name="sel")
        report = lint(plan)
        diag = next(d for d in report.diagnostics if d.code == "PLN005")
        assert diag.severity is Severity.WARNING
        assert "unused" in diag.message

    def test_pln009_selectivity_above_one(self):
        plan, src = schema_plan()
        plan.select(src, Field("k") < 1, selectivity=1.5, name="sel")
        report = lint(plan)
        assert report.has_code("PLN009")
        assert report.ok  # warning, not error

    def test_pln009_zero_selectivity(self):
        plan, src = schema_plan()
        plan.select(src, Field("k") < 1, selectivity=0.0, name="sel")
        assert lint(plan).has_code("PLN009")

    def test_pln009_bad_n_groups(self):
        plan, src = schema_plan()
        plan.aggregate(src, ["k"], {"n": AggSpec("count")}, n_groups=0,
                       name="agg")
        assert lint(plan).has_code("PLN009")


class TestStrict:
    def test_strict_raises_on_errors(self):
        plan, src = schema_plan()
        plan.project(src, ["nope"], name="proj")
        with pytest.raises(AnalysisError) as err:
            Analyzer().run(plan, strict=True)
        assert "PLN006" in str(err.value)
        assert err.value.diagnostics

    def test_strict_passes_on_warnings_only(self):
        plan, src = schema_plan()
        plan.select(src, Field("k") < 1, selectivity=2.0, name="sel")
        report = Analyzer().run(plan, strict=True)
        assert report.has_code("PLN009")

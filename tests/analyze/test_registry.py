"""The diagnostic-code registry is the single source of truth: every
pass's ``codes`` tuple, every code any pass emits, and every docs table
row must agree with it."""

import re
from pathlib import Path

from repro.analyze.diagnostics import REGISTRY, Severity, registered, \
    registry_table

DOCS = Path(__file__).resolve().parents[2] / "docs"

#: `| MEM701 | error | ... |` rows anywhere in docs/*.md
ROW = re.compile(r"^\|\s*([A-Z]{3}\d{3})\s*\|\s*(error|warning|info)\s*\|",
                 re.MULTILINE)


def documented_codes() -> dict[str, str]:
    """code -> severity string, from every markdown table under docs/."""
    out: dict[str, str] = {}
    for md in sorted(DOCS.glob("*.md")):
        for code, severity in ROW.findall(md.read_text()):
            assert out.get(code, severity) == severity, (
                f"{code} documented with conflicting severities")
            out[code] = severity
    return out


class TestRegistry:
    def test_lookup_and_table(self):
        info = registered("MEM701")
        assert info.severity is Severity.ERROR
        mem = registry_table("MEM")
        assert [i.code for i in mem] == [
            f"MEM70{k}" for k in range(1, 7)]
        assert len(registry_table()) == len(REGISTRY)

    def test_every_pass_declares_registered_codes(self):
        from repro.analyze.framework import Analyzer
        an = Analyzer()
        passes = [an.plan_lints, an.fusion_check, an.stream_check,
                  an.ir_lints, an.cluster_lints, an.opt_lints,
                  an.serve_lints, an.memory_check]
        declared = set()
        for p in passes:
            assert p.codes, p.name
            for code in p.codes:
                assert code in REGISTRY, f"{p.name} emits unregistered {code}"
            declared.update(p.codes)
        # the registry carries no orphan codes either
        assert declared == set(REGISTRY)

    def test_docs_tables_match_registry(self):
        docs = documented_codes()
        for code, severity in docs.items():
            assert code in REGISTRY, f"docs table row for unknown {code}"
            assert str(REGISTRY[code].severity) == severity, (
                f"{code}: docs say {severity}, registry says "
                f"{REGISTRY[code].severity}")

    def test_every_code_is_documented(self):
        docs = documented_codes()
        missing = sorted(set(REGISTRY) - set(docs))
        assert not missing, f"codes missing from docs tables: {missing}"

    def test_severity_renders_lowercase(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"
        assert str(Severity.INFO) == "info"

"""Opt-in analyzer pre-flight wiring: Executor, WorkloadScheduler, and
the serving loop all gate dispatch on the static checks."""

import pytest

from repro.analyze.corpus import select_chain_plan
from repro.errors import AnalysisError
from repro.plans.plan import Plan
from repro.tpch.q1 import build_q1_plan, q1_source_rows
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field
from repro.runtime.executor import ExecutionConfig, Executor, Strategy
from repro.runtime.workload import QueryWorkload, WorkloadScheduler
from repro.serve import ArrivalProcess, QueryServer, ServeConfig, TenantSpec

ROWS = {"t": 50_000, "lineitem": 100_000}


def bad_plan():
    plan = Plan(name="bad")
    src = plan.source("t", fields=["k", "v"])
    plan.project(src, ["nope"], name="proj")
    return plan


class TestExecutorPreflight:
    def test_clean_plan_attaches_analysis_summary(self, device):
        ex = Executor(device, analyze=True)
        result = ex.run(select_chain_plan(3), ROWS)
        assert result.analysis is not None
        assert result.analysis["errors"] == 0
        assert "plan-lints" in result.analysis["passes"]
        assert "fusion-check" in result.analysis["passes"]
        assert "stream-check" in result.analysis["passes"]

    def test_analyze_off_attaches_nothing(self, device):
        result = Executor(device).run(select_chain_plan(3), ROWS)
        assert result.analysis is None

    def test_bad_plan_aborts_dispatch(self, device):
        ex = Executor(device, analyze=True)
        with pytest.raises(AnalysisError) as err:
            ex.run(bad_plan(), ROWS)
        assert "PLN006" in str(err.value)

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_every_strategy_passes_preflight(self, device, strategy):
        ex = Executor(device, analyze=True)
        result = ex.run(build_q1_plan(), q1_source_rows(200_000),
                        ExecutionConfig(strategy=strategy))
        assert result.analysis is not None
        assert result.analysis["errors"] == 0

    def test_preflight_result_matches_unanalyzed_run(self, device):
        plan = select_chain_plan(3)
        base = Executor(device).run(plan, ROWS)
        checked = Executor(device, analyze=True).run(plan, ROWS)
        assert checked.makespan == pytest.approx(base.makespan)


class TestWorkloadPreflight:
    def test_batched_streams_race_check_passes(self, device):
        plans = []
        for i in range(3):
            plan = Plan(name=f"q{i}")
            src = plan.source("lineitem", fields=["k", "v"])
            sel = plan.select(src, Field("v") < 40 + i, name="sel")
            plan.aggregate(sel, ["k"], {"n": AggSpec("count")}, name="agg")
            plans.append(plan)
        sched = WorkloadScheduler(device, analyze=True)
        result = sched.run_batched_streams(QueryWorkload(plans=plans),
                                           {"lineitem": 100_000})
        assert result.makespan > 0


class TestServePreflight:
    def _trace(self):
        tenants = (TenantSpec("t0", mix=(("q6", 1.0),), weight=1.0,
                              priority=0, deadline_s=60.0,
                              elements=200_000),)
        return ArrivalProcess(qps=40, duration_s=0.3, tenants=tenants,
                              seed=3).trace()

    @pytest.mark.parametrize("mode", ["batched", "isolated"])
    def test_serving_with_analyze_completes(self, device, mode):
        server = QueryServer(device, ServeConfig(
            mode=mode, analyze=True, queue_capacity=4096))
        res = server.run(trace=self._trace())
        assert res.metrics.completed == res.metrics.offered
        assert res.metrics.analysis_warnings == 0
        assert "analysis_warnings" in res.metrics.summary()

"""IR lints (IRL3xx) over hand-built mini-PTX programs, plus the
guarantee that every generated Table III kernel is lint-clean."""

from repro.analyze import Analyzer, Severity
from repro.compilerlite import optimize
from repro.compilerlite.codegen import (
    FilterStatement,
    gen_fused_naive,
    gen_unfused,
)
from repro.compilerlite.ir import Instr, Program


def check(prog):
    return Analyzer().run(prog)


STMTS = [FilterStatement("lt", 10.0), FilterStatement("gt", 2.0)]


class TestGeneratedKernelsAreClean:
    def test_unfused_chain(self):
        for prog in gen_unfused(STMTS):
            report = check(prog)
            assert report.ok and not report.diagnostics, report.render()

    def test_fused_naive_and_optimized(self):
        prog = gen_fused_naive(STMTS)
        assert not check(prog).diagnostics
        assert not check(optimize(prog)).diagnostics


class TestPlantedDefects:
    def test_irl301_use_before_def(self):
        prog = Program("bad", [
            Instr("st", srcs=("out", "r1")),     # r1 never defined
            Instr("ret"),
        ])
        report = check(prog)
        assert report.has_code("IRL301")
        diag = next(d for d in report.errors if d.code == "IRL301")
        assert "'r1'" in diag.message

    def test_irl301_ld_address_is_not_a_use(self):
        # srcs[0] of ld is a memory location, not a register
        prog = Program("ok", [
            Instr("ld", dst="r1", srcs=("in",)),
            Instr("st", srcs=("out", "r1")),
            Instr("ret"),
        ])
        assert not check(prog).has_code("IRL301")

    def test_irl302_redefined_before_use(self):
        prog = Program("dead", [
            Instr("mov", dst="r1", srcs=(0.0,)),
            Instr("mov", dst="r1", srcs=(1.0,)),  # first def was dead
            Instr("st", srcs=("out", "r1")),
            Instr("ret"),
        ])
        report = check(prog)
        diag = next(d for d in report.diagnostics if d.code == "IRL302")
        assert diag.severity is Severity.WARNING
        assert "redefined" in diag.message
        assert report.ok  # warning only

    def test_irl302_never_used(self):
        prog = Program("dead2", [
            Instr("mov", dst="r1", srcs=(0.0,)),
            Instr("ret"),
        ])
        report = check(prog)
        diag = next(d for d in report.diagnostics if d.code == "IRL302")
        assert "never used" in diag.message

    def test_guard_counts_as_a_use(self):
        prog = Program("guarded", [
            Instr("ld", dst="r1", srcs=("in",)),
            Instr("setp", dst="p0", srcs=("r1", 10.0), cmp="lt"),
            Instr("st", srcs=("out", "r1"), guard="p0"),
            Instr("ret"),
        ])
        assert not check(prog).has_code("IRL302")

    def test_irl303_undefined_guard(self):
        prog = Program("noguard", [
            Instr("ld", dst="r1", srcs=("in",)),
            Instr("st", srcs=("out", "r1"), guard="!p9"),
            Instr("ret"),
        ])
        report = check(prog)
        assert report.has_code("IRL303")
        diag = next(d for d in report.errors if d.code == "IRL303")
        assert "'p9'" in diag.message

    def test_irl304_branch_to_nowhere(self):
        prog = Program("lost", [
            Instr("bra", srcs=("L_exit",)),
            Instr("ret"),
        ])
        report = check(prog)
        assert report.has_code("IRL304")

    def test_branch_to_real_label_is_fine(self):
        prog = Program("found", [
            Instr("bra", srcs=("L_exit",)),
            Instr("label", srcs=("L_exit",)),
            Instr("ret"),
        ])
        assert not check(prog).has_code("IRL304")

"""CLU4xx cluster lints: the rewrite's own output is clean, each code
fires on the hand-assembled distribution it guards against, and CLU
findings ride the baseline/suppression machinery like every other
family."""

import dataclasses

import pytest

from repro.analyze import (
    Analyzer,
    Baseline,
    ClusterLintPass,
    Severity,
    baseline_from_findings,
    write_baseline,
)
from repro.plans.distribute import distribute_plan
from repro.tpch import (
    build_q1_plan,
    build_q21_plan,
    q1_source_rows,
    q21_source_rows,
)

N = 2_000_000


@pytest.fixture(scope="module")
def q1d():
    return distribute_plan(build_q1_plan(), q1_source_rows(N), 4)


@pytest.fixture(scope="module")
def q21d():
    rows = q21_source_rows(N, N // 4, max(1, N // 600))
    return distribute_plan(build_q21_plan(), rows, 4)


def codes(report):
    return [d.code for d in report.diagnostics]


def force_supplier(dist, **changes):
    srcs = tuple(dataclasses.replace(s, **changes)
                 if s.name == "supplier" else s for s in dist.sources)
    return dataclasses.replace(dist, sources=srcs)


class TestCleanDistributions:
    def test_rewrite_output_is_lint_clean(self, q1d, q21d):
        assert codes(Analyzer().run(q1d)) == []
        assert codes(Analyzer().run(q21d)) == []

    def test_dispatch_runs_plan_lints_too(self, q21d):
        report = Analyzer().run(q21d)
        assert "cluster-lints" in report.summary()["passes"]
        assert "plan-lints" in report.summary()["passes"]


class TestCodesFire:
    def test_clu401_non_co_partitioned_build(self, q21d):
        # supplier declared partitioned on suppkey: every join that
        # builds from it now drops cross-shard matches
        bad = force_supplier(q21d, kind="partitioned", key=("suppkey",))
        report = Analyzer().run(bad)
        assert "CLU401" in codes(report)
        assert all(d.severity is Severity.ERROR for d in report.diagnostics
                   if d.code == "CLU401")
        assert not report.ok

    def test_clu402_skewed_shards(self, q21d):
        skewed = dataclasses.replace(
            q21d, driver_shard_rows=(1_700_000, 100_000, 100_000, 100_000))
        report = Analyzer().run(skewed)
        assert codes(report) == ["CLU402"]
        assert report.ok  # warning, not error

    def test_clu403_redundant_exchange(self, q1d):
        redundant = dataclasses.replace(
            q1d, partition_key=("returnflag", "linestatus"))
        assert codes(Analyzer().run(redundant)) == ["CLU403"]

    def test_clu404_oversized_replica(self, q21d):
        big = force_supplier(q21d, rows=10**9)
        assert codes(Analyzer().run(big)) == ["CLU404"]

    def test_clu405_single_shard(self):
        rows = q21_source_rows(N, N // 4, max(1, N // 600))
        one = distribute_plan(build_q21_plan(), rows, 1)
        report = Analyzer().run(one)
        assert codes(report) == ["CLU405"]
        (diag,) = report.diagnostics
        assert diag.severity is Severity.INFO

    def test_clu406_missed_preagg(self):
        # a distribution built with the lowering disabled ships raw
        # frontier rows even though the suffix aggregate decomposes
        raw = distribute_plan(build_q1_plan(), q1_source_rows(N), 4,
                              preagg=False)
        assert raw.preagg is None
        report = Analyzer().run(raw)
        assert "CLU406" in codes(report)
        assert report.ok  # warning, not error

    def test_clu407_flat_merge_on_wide_cluster(self, q1d):
        flat = dataclasses.replace(q1d, merge="flat")
        assert codes(Analyzer().run(flat)) == ["CLU407"]

    def test_clu407_silent_on_narrow_cluster(self):
        two = distribute_plan(build_q1_plan(), q1_source_rows(N), 2,
                              merge="flat")
        assert "CLU407" not in codes(Analyzer().run(two))


class TestBaselineRoundTrip:
    def test_clu_findings_suppress_and_reload(self, q21d, tmp_path):
        bad = force_supplier(q21d, kind="partitioned", key=("suppkey",))
        report = Analyzer().run(bad)
        assert not report.ok
        path = str(tmp_path / "baseline.txt")
        write_baseline(path, report.diagnostics)
        suppressed = Analyzer(baseline=Baseline.load(path)).run(bad)
        assert suppressed.ok
        assert not suppressed.diagnostics
        assert len(suppressed.suppressed) == len(report.diagnostics)

    def test_baseline_from_findings_matches_clu(self, q21d):
        bad = force_supplier(q21d, rows=10**9)
        (diag,) = Analyzer().run(bad).diagnostics
        assert baseline_from_findings([diag]).matches(diag)

    def test_strict_raises_on_clu_errors(self, q21d):
        from repro.errors import AnalysisError
        bad = force_supplier(q21d, kind="partitioned", key=("suppkey",))
        with pytest.raises(AnalysisError):
            Analyzer().run(bad, strict=True)


class TestPassMetadata:
    def test_registered_codes(self):
        assert ClusterLintPass.codes == (
            "CLU401", "CLU402", "CLU403", "CLU404", "CLU405",
            "CLU406", "CLU407")

    def test_locations_use_distributed_name(self, q21d):
        skewed = dataclasses.replace(
            q21d, driver_shard_rows=(1_700_000, 100_000, 100_000, 100_000))
        (diag,) = Analyzer().run(skewed).diagnostics
        assert str(diag.location).startswith(q21d.name)

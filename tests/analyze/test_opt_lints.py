"""OPT5xx optimizer lints: planted-defect detection on hand-forced
strategies."""

from repro.analyze import Analyzer, OptimizerLintPass, Severity
from repro.optimizer import StrategyTarget
from repro.runtime import Strategy
from repro.runtime.select_chain import select_chain_plan


def _codes(report):
    return [d.code for d in report.diagnostics]


class TestOpt501:
    def test_planted_defect_forced_round_trip_flagged(self):
        # the planted defect: a fusable 3-op chain at 50M rows, with the
        # paper's worst strategy hand-forced -- the analytic model prices
        # it far beyond 2x the best option
        target = StrategyTarget(select_chain_plan(3), {"input": 50_000_000},
                                Strategy.WITH_ROUND_TRIP)
        report = Analyzer().run(target)
        assert "OPT501" in _codes(report)
        diag = next(d for d in report.diagnostics if d.code == "OPT501")
        assert diag.severity is Severity.WARNING
        assert "with_round_trip" in str(diag.location)
        assert "x the best option" in diag.message

    def test_well_forced_strategy_is_clean(self):
        target = StrategyTarget(select_chain_plan(3), {"input": 50_000_000},
                                Strategy.FUSED_FISSION)
        report = Analyzer().run(target)
        assert "OPT501" not in _codes(report)

    def test_lints_never_error(self):
        """OPT5xx are advisory: a forced strategy is legal, so the strict
        corpus gate (errors only) must never trip on them."""
        target = StrategyTarget(select_chain_plan(3), {"input": 50_000_000},
                                Strategy.WITH_ROUND_TRIP)
        report = Analyzer().run(target, strict=True)  # must not raise
        assert report.errors == []


class TestOpt502:
    def test_cpu_side_input_with_forced_gpu_strategy(self):
        # 10k rows never amortize the PCIe round trip: the host baseline
        # wins and the info lint says so
        target = StrategyTarget(select_chain_plan(3), {"input": 10_000},
                                Strategy.FUSED)
        report = Analyzer().run(target)
        assert "OPT502" in _codes(report)
        diag = next(d for d in report.diagnostics if d.code == "OPT502")
        assert diag.severity is Severity.INFO

    def test_forced_cpubase_not_flagged(self):
        target = StrategyTarget(select_chain_plan(3), {"input": 10_000},
                                "cpubase")
        report = Analyzer().run(target)
        assert "OPT502" not in _codes(report)

    def test_large_input_not_flagged(self):
        target = StrategyTarget(select_chain_plan(3), {"input": 100_000_000},
                                Strategy.FUSED_FISSION)
        report = Analyzer().run(target)
        assert "OPT502" not in _codes(report)


class TestDispatch:
    def test_pass_registered_on_framework(self):
        an = Analyzer()
        assert isinstance(an.opt_lints, OptimizerLintPass)
        target = StrategyTarget(select_chain_plan(2), {"input": 1_000_000},
                                Strategy.SERIAL)
        report = an.run(target)
        assert "optimizer-lints" in report.passes_run

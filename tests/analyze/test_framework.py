"""Analyzer dispatch and report plumbing."""

import pytest

from repro.analyze import Analyzer, AnalysisReport, Severity
from repro.analyze.corpus import batched_stream_pool, select_chain_plan
from repro.compilerlite.codegen import FilterStatement, gen_fused_naive
from repro.core.fusion import fuse_plan
from repro.errors import AnalysisError
from repro.simgpu.engine import SimStream


class TestDispatch:
    def test_plan_runs_plan_lints(self):
        report = Analyzer().run(select_chain_plan(2))
        assert report.passes_run == ["plan-lints"]

    def test_fusion_result_runs_fusion_check(self):
        report = Analyzer().run(fuse_plan(select_chain_plan(2)))
        assert report.passes_run == ["fusion-check"]

    def test_program_runs_ir_lints(self):
        prog = gen_fused_naive([FilterStatement("lt", 1.0)])
        report = Analyzer().run(prog)
        assert report.passes_run == ["ir-lints"]

    def test_single_stream_runs_stream_check(self):
        report = Analyzer().run(SimStream(stream_id=0))
        assert report.passes_run == ["stream-check"]

    def test_stream_list_and_pool_duck_typing(self):
        pool = batched_stream_pool()
        via_pool = Analyzer().run(pool, unit="u")
        via_list = Analyzer().run(list(pool.streams), unit="u")
        assert via_pool.passes_run == ["stream-check"]
        assert [d.code for d in via_pool.diagnostics] == \
            [d.code for d in via_list.diagnostics]

    def test_garbage_raises_type_error(self):
        with pytest.raises(TypeError) as err:
            Analyzer().run(42)
        assert "cannot analyze int" in str(err.value)


class TestReports:
    def test_run_all_merges(self):
        report = Analyzer().run_all(
            [select_chain_plan(2), fuse_plan(select_chain_plan(2))])
        assert report.passes_run == ["plan-lints", "fusion-check"]

    def test_summary_shape(self):
        summary = Analyzer().run(select_chain_plan(2)).summary()
        assert set(summary) >= {"errors", "warnings", "infos",
                                "suppressed", "passes", "codes"}
        assert summary["errors"] == 0

    def test_strict_raise_carries_diagnostics(self):
        fusion = fuse_plan(select_chain_plan(3))
        mutated_regions = fusion.regions[:-1]
        from repro.core.fusion import FusionResult
        mutated = FusionResult(plan=fusion.plan, regions=mutated_regions,
                               decisions=[])
        with pytest.raises(AnalysisError) as err:
            Analyzer().run(mutated, strict=True)
        assert all(d.severity is Severity.ERROR
                   for d in err.value.diagnostics)

    def test_empty_report_is_ok(self):
        report = AnalysisReport()
        assert report.ok
        assert report.summary()["errors"] == 0

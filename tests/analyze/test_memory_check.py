"""Planted memory defects must earn their exact MEM7xx codes, and the
clean corpus must stay free of OOM findings at default budgets."""

import dataclasses

import pytest

from repro.analyze import Analyzer
from repro.analyze.corpus import memory_targets, select_chain_plan
from repro.analyze.memory_check import (MemoryTarget, check_strategy)
from repro.optimizer.stats import DataStats, TableStats
from repro.plans.distribute import distribute_plan
from repro.plans.plan import Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field
from repro.runtime.strategies import Strategy
from repro.simgpu.device import DEFAULT_CALIBRATION, DeviceSpec
from repro.tpch.q1 import build_q1_plan, q1_source_rows


def small_device(nbytes: int) -> DeviceSpec:
    return DeviceSpec(calib=dataclasses.replace(
        DEFAULT_CALIBRATION,
        gpu=dataclasses.replace(DEFAULT_CALIBRATION.gpu,
                                global_mem_bytes=nbytes)))


def barrier_plan(n_rows: int = 2_000_000) -> Plan:
    """SELECT -> SORT -> AGGREGATE: the sort barrier pins the whole
    working set, so chunking cannot rescue an oversized run."""
    plan = Plan(name="planted_barrier")
    src = plan.source("t", row_nbytes=20, n_rows=n_rows)
    sel = plan.select(src, Field("v") < 10, selectivity=0.9, name="sel")
    srt = plan.sort(sel, ["k"], name="srt")
    plan.aggregate(srt, ["k"], {"n": AggSpec("count")}, n_groups=64,
                   name="agg")
    return plan


def sort_first_plan(n_rows: int = 2_000_000) -> Plan:
    """SORT directly on the driver: fission has no streamable prefix, so
    it degenerates to serial chunking -- which the barrier blocks."""
    plan = Plan(name="planted_sortfirst")
    src = plan.source("t", row_nbytes=20, n_rows=n_rows)
    srt = plan.sort(src, ["k"], name="srt")
    plan.aggregate(srt, ["k"], {"n": AggSpec("count")}, n_groups=64,
                   name="agg")
    return plan


def side_heavy_plan() -> Plan:
    """Joins whose build sides *together* exceed a small budget: side
    inputs stay resident regardless of driver chunking, so no chunk
    count rescues the run."""
    plan = Plan(name="planted_side")
    fact = plan.source("fact", row_nbytes=40, n_rows=200_000)
    j = fact
    for i in range(3):
        dim = plan.source(f"dim{i}", row_nbytes=32, n_rows=190_000)
        j = plan.join(j, dim, on="k", match_rate=1.0, name=f"j{i}")
    return plan


class TestPlantedDefects:
    def test_oversized_fused_region_with_barrier_is_mem701(self):
        an = Analyzer(small_device(1 << 24))
        report = an.run(MemoryTarget(
            barrier_plan(), {"t": 2_000_000},
            strategies=(Strategy.FUSED,)))
        assert report.has_code("MEM701")
        [diag] = [d for d in report.diagnostics if d.code == "MEM701"]
        assert "barrier" in diag.message

    def test_under_chunked_fission_is_mem701(self):
        # the barrier sits directly on the driver, so fission has no
        # streamable prefix: it degenerates to serial chunking, which
        # the barrier blocks -> certain OOM under 'fission' itself
        an = Analyzer(small_device(1 << 24))
        report = an.run(MemoryTarget(
            sort_first_plan(), {"t": 2_000_000},
            strategies=(Strategy.FISSION,)))
        assert report.has_code("MEM701")
        [diag] = [d for d in report.diagnostics if d.code == "MEM701"]
        assert "fission" in str(diag.location)

    def test_side_inputs_overflow_is_mem701(self):
        an = Analyzer(small_device(1 << 24))
        report = an.run(MemoryTarget(
            side_heavy_plan(), None, strategies=(Strategy.SERIAL,)))
        [diag] = [d for d in report.diagnostics if d.code == "MEM701"]
        assert "side inputs alone" in diag.message

    def test_unknown_cardinality_is_mem702(self):
        plan = Plan(name="unknown_rows")
        src = plan.source("t", row_nbytes=20)      # no n_rows declared
        srt = plan.sort(src, ["k"], name="srt")
        plan.select(srt, Field("v") < 10, name="sel")
        an = Analyzer(small_device(1 << 24))
        report = an.run(MemoryTarget(plan, None,
                                     strategies=(Strategy.SERIAL,)))
        assert report.has_code("MEM702")
        assert not report.has_code("MEM701")

    def test_exchange_hot_shard_under_zipfian_stats_is_mem704(self):
        plan = build_q1_plan()
        rows = q1_source_rows(2_000_000)
        dist = distribute_plan(plan, rows, 4, preagg=False)
        stats = DataStats(tables=(
            ("lineitem", TableStats(rows=2_000_000, row_nbytes=36,
                                    skew=0.9)),))
        an = Analyzer(small_device(1 << 24))
        report = an.run(MemoryTarget(dist, rows, stats=stats,
                                     strategies=(Strategy.FUSED_FISSION,)))
        assert report.has_code("MEM704")
        [diag] = [d for d in report.diagnostics if d.code == "MEM704"]
        assert "exchange" in str(diag.location)

    def test_preagg_load_bearing_is_mem705(self):
        plan = build_q1_plan()
        rows = q1_source_rows(2_000_000)
        dist = distribute_plan(plan, rows, 4)      # preagg on
        assert dist.preagg is not None
        # raw hot-destination volume ~15.4 MB > the 15.1 MB budget;
        # partial-state blocks are ~KBs
        an = Analyzer(small_device(1 << 24))
        report = an.run(MemoryTarget(dist, rows,
                                     strategies=(Strategy.FUSED_FISSION,)))
        assert report.has_code("MEM705")
        [diag] = [d for d in report.diagnostics if d.code == "MEM705"]
        assert "load-bearing" in diag.message

    def test_savings_reported_as_mem706(self, device):
        an = Analyzer(device)
        report = an.run(MemoryTarget(build_q1_plan(),
                                     q1_source_rows(2_000_000)))
        assert report.has_code("MEM706")


class TestCleanCorpus:
    def test_memory_targets_clean_at_default_budget(self, device):
        an = Analyzer(device)
        for label, target in memory_targets():
            report = an.run(target, unit=label)
            assert not report.has_code("MEM701"), label
            assert not report.has_code("MEM702"), label

    def test_safe_verdict_for_every_default_strategy(self, device):
        rows = q1_source_rows(200_000)
        for strategy in (*Strategy, "cpubase"):
            v = check_strategy(build_q1_plan(), strategy, rows, device)
            assert v.verdict == "safe", strategy
            assert not v.certain_oom


class TestWiring:
    """Optimizer pruning, executor/cluster refusal, serve shedding."""

    def test_optimizer_prunes_mem701_options(self):
        from repro.optimizer import Optimizer
        from repro.optimizer.plancache import PlanCache
        cache = PlanCache()
        opt = Optimizer(small_device(1 << 24), cache=cache)
        decision = opt.choose(build_q1_plan(), q1_source_rows(2_000_000))
        pruned = {c.label for c in decision.candidates
                  if not c.feasible and any("MEM701" in n for n in c.notes)}
        assert "serial" in pruned and "with_round_trip" in pruned
        assert decision.chosen.label not in pruned
        assert "MEM701" in decision.explain()
        # pruned without simulating
        for cand in decision.candidates:
            if cand.label in pruned:
                assert cand.sim_makespan_s is None

    def test_optimizer_pruning_never_selects_certain_oom(self, device):
        from repro.optimizer import Optimizer
        for nbytes in (1 << 24, 1 << 26, 6 << 30):
            opt = Optimizer(small_device(nbytes))
            decision = opt.choose(build_q1_plan(),
                                  q1_source_rows(2_000_000))
            v = check_strategy(
                build_q1_plan(),
                decision.chosen.option.strategy
                if decision.chosen.option.kind == "single" else "cpubase",
                q1_source_rows(2_000_000), small_device(nbytes))
            assert not v.certain_oom

    def test_executor_preflight_refuses_certain_oom(self):
        from repro.errors import AnalysisError
        from repro.runtime.executor import ExecutionConfig, Executor
        ex = Executor(small_device(1 << 24), analyze=True)
        with pytest.raises(AnalysisError) as err:
            ex.run(build_q1_plan(), q1_source_rows(2_000_000),
                   ExecutionConfig(strategy=Strategy.SERIAL))
        assert "MEM701" in str(err.value)

    def test_cluster_preflight_refuses_certain_oom(self):
        from repro.cluster.executor import ClusterConfig, ClusterExecutor
        from repro.errors import AnalysisError
        cx = ClusterExecutor(small_device(1 << 22), config=ClusterConfig(
            num_devices=2, strategy=Strategy.SERIAL, analyze=True))
        with pytest.raises(AnalysisError) as err:
            cx.run(build_q1_plan(), q1_source_rows(2_000_000))
        assert "MEM701" in str(err.value)

    def test_cluster_preflight_passes_pipelined_strategy(self):
        from repro.cluster.executor import ClusterConfig, ClusterExecutor
        cx = ClusterExecutor(small_device(1 << 22), config=ClusterConfig(
            num_devices=2, analyze=True))
        res = cx.run(build_q1_plan(), q1_source_rows(2_000_000))
        assert res.makespan > 0

    def test_serve_sheds_statically_unsafe_batches(self):
        from repro.serve import (ArrivalProcess, QueryServer, ServeConfig,
                                 TenantSpec)
        tenants = (TenantSpec("t0", mix=(("q1", 1.0),), weight=1.0,
                              priority=0, deadline_s=60.0,
                              elements=2_000_000),)
        trace = ArrivalProcess(qps=20, duration_s=0.3, tenants=tenants,
                               seed=1).trace()
        server = QueryServer(small_device(1 << 24), ServeConfig(
            mode="isolated", shed_unsafe=True))
        res = server.run(trace=list(trace))
        assert res.metrics.shed_unsafe == res.metrics.offered
        assert res.metrics.completed == 0
        assert all(r.status == "shed_unsafe" for r in res.records)
        assert res.metrics.summary()["shed_unsafe"] == res.metrics.offered

    def test_serve_shed_flag_defaults_off_and_spares_safe_load(self, device):
        from repro.serve import ArrivalProcess, QueryServer, ServeConfig
        trace = ArrivalProcess(qps=30, duration_s=0.2, seed=5).trace()
        assert ServeConfig().shed_unsafe is False
        res = QueryServer(device, ServeConfig(shed_unsafe=True)).run(
            trace=list(trace))
        assert res.metrics.shed_unsafe == 0
        assert res.metrics.completed > 0

    def test_executor_preflight_keeps_makespan(self, device):
        from repro.runtime.executor import Executor
        plan = select_chain_plan(3)
        rows = {"t": 50_000}
        base = Executor(device).run(plan, rows)
        checked = Executor(device, analyze=True).run(plan, rows)
        assert checked.makespan == pytest.approx(base.makespan)
        assert "memory-check" in checked.analysis["passes"]

"""Interval abstract interpretation: algebra, envelope soundness, and
strategy footprints (docs/ANALYSIS.md, "Memory-safety analysis")."""

import math

import pytest

from repro.analyze.absint import (Interval, fusion_savings, plan_envelopes,
                                  split_for_fission, strategy_footprint)
from repro.analyze.corpus import pattern_plans, select_chain_plan
from repro.core.fusion import fuse_plan
from repro.plans.fuzz import random_plan_case
from repro.plans.plan import Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field
from repro.runtime.sizes import estimate_sizes
from repro.runtime.strategies import Strategy
from repro.tpch.q1 import build_q1_plan, q1_source_rows
from repro.tpch.q6 import build_q6_plan
from repro.tpch.q21 import build_q21_plan, q21_source_rows


class TestInterval:
    def test_exact_and_unknown(self):
        e = Interval.exact(7)
        assert e.is_exact and e.bounded and e.contains(7)
        u = Interval.unknown()
        assert not u.bounded and u.contains(1e18)

    def test_add_and_scale(self):
        a = Interval(1, 2) + Interval(10, 20)
        assert (a.lo, a.hi) == (11, 22)
        s = Interval(10, 20).scale(0.5)
        assert (s.lo, s.hi) == (5, 10)
        # inf * 0 must stay 0, not NaN
        z = Interval(0, math.inf).scale(0)
        assert (z.lo, z.hi) == (0, 0)

    def test_round_bracket_is_outward(self):
        r = Interval(1.2, 3.7).round_bracket()
        assert (r.lo, r.hi) == (1, 4)

    def test_hull_and_clamp(self):
        h = Interval(1, 3).hull(Interval(2, 9))
        assert (h.lo, h.hi) == (1, 9)
        c = Interval(-5, 3).clamp_min(0)
        assert (c.lo, c.hi) == (0, 3)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_render(self):
        assert Interval.exact(1234).render(" B") == "[1,234, 1,234] B"
        assert "inf" in Interval(0, math.inf).render()


def _envelope_brackets_estimates(plan: Plan, rows: dict) -> None:
    envs = plan_envelopes(plan, rows)
    sizes = estimate_sizes(plan, rows)
    for name, n in sizes.items():
        env = envs[name]
        assert env.rows.contains(n), (
            f"{plan.name}:{name}: {n} outside [{env.rows.lo}, {env.rows.hi}]")


class TestEnvelopeSoundness:
    """The interval semantics must bracket ``estimate_sizes`` exactly --
    the sizes the executor plans chunks (and OOMs) from."""

    def test_tpch(self):
        _envelope_brackets_estimates(build_q1_plan(), q1_source_rows(777_777))
        _envelope_brackets_estimates(build_q6_plan(), {"lineitem": 123_457})
        _envelope_brackets_estimates(
            build_q21_plan(), q21_source_rows(500_000, 125_000, 833))

    def test_patterns(self):
        rows = {"t": 99_991, "fact": 99_991, "dim": 1_000, "dim1": 1_000,
                "dim2": 1_000, "left": 50_000, "right": 20_000}
        for _, plan in pattern_plans():
            _envelope_brackets_estimates(plan, rows)

    @pytest.mark.parametrize("seed", range(25))
    def test_fuzz(self, seed):
        case = random_plan_case(seed)
        rows = {name: rel.num_rows for name, rel in case.sources.items()}
        _envelope_brackets_estimates(case.plan, rows)

    def test_unknown_sources_widen_not_crash(self):
        plan = select_chain_plan(3)
        envs = plan_envelopes(plan, None)
        sink = plan.sinks()[0]
        assert not envs[sink.name].rows.bounded
        assert envs[sink.name].rows.lo == 0

    def test_stats_seed_sources(self):
        from repro.optimizer.stats import DataStats
        plan = select_chain_plan(2)
        stats = DataStats.from_rows(plan, {"t": 4_000})
        envs = plan_envelopes(plan, None, stats)
        assert envs["t"].rows.is_exact
        assert envs["t"].rows.lo == 4_000


class TestStrategyFootprint:
    def test_serial_working_set_matches_regions(self, device):
        plan = build_q1_plan()
        rows = q1_source_rows(200_000)
        envs = plan_envelopes(plan, rows)
        fp = strategy_footprint(plan, Strategy.SERIAL, envs, device)
        assert fp.verdict == "safe"
        assert fp.peak_bytes.lo == pytest.approx(
            fp.side_bytes.lo + fp.working_bytes.lo)

    def test_fission_pipelined_on_chain(self, device):
        plan = select_chain_plan(3)
        envs = plan_envelopes(plan, {"t": 1_000_000})
        fp = strategy_footprint(plan, Strategy.FISSION, envs, device)
        assert fp.pipelined and fp.verdict == "safe"

    def test_cpubase_always_safe(self, device):
        envs = plan_envelopes(build_q1_plan(), q1_source_rows(10 ** 9))
        fp = strategy_footprint(build_q1_plan(), "cpubase", envs, device)
        assert fp.verdict == "safe"

    def test_split_for_fission_prefix(self):
        plan = select_chain_plan(3)
        driver = next(s for s in plan.sources() if s.name == "t")
        fusion = fuse_plan(plan, enable=False)
        prefix, phase_a, rest = split_for_fission(fusion.regions, driver)
        assert prefix, "pure select chain must have a streamable prefix"
        assert len(prefix) + len(phase_a) + len(rest) == len(fusion.regions)

    def test_barrier_blocks_prefix(self):
        plan = Plan(name="sorted_agg")
        src = plan.source("t", row_nbytes=8, n_rows=1_000)
        srt = plan.sort(src, ["k"], name="srt")
        plan.aggregate(srt, ["k"], {"n": AggSpec("count")}, n_groups=4,
                       name="agg")
        fusion = fuse_plan(plan, enable=False)
        prefix, _, _ = split_for_fission(fusion.regions, src)
        assert not prefix


class TestFusionSavings:
    def test_q1_savings_positive_and_tight(self):
        plan = build_q1_plan()
        rows = q1_source_rows(2_000_000)
        envs = plan_envelopes(plan, rows)
        savings = fusion_savings(fuse_plan(plan, enable=True), envs)
        # the README's headline number: ~300.9 MB of intermediates
        assert savings.lo > 300_000_000
        assert savings.hi < 301_000_000

    def test_unfused_plan_saves_nothing(self):
        plan = select_chain_plan(2)
        envs = plan_envelopes(plan, {"t": 1_000})
        savings = fusion_savings(fuse_plan(plan, enable=False), envs)
        assert savings.hi == 0

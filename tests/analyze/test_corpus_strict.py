"""The acceptance criterion: the analyzer finds zero error-severity
issues across the built-in corpus -- pattern plans, TPC-H, the seeded
fuzz corpus, their fused forms, the batched stream program, and every
generated IR kernel."""

from repro.analyze import Analyzer
from repro.analyze.corpus import default_corpus, fuzz_plans, tpch_plans


def test_default_corpus_has_no_errors():
    an = Analyzer()
    merged = an.run_all(
        target for _, target in default_corpus(n_fuzz_seeds=50))
    assert merged.ok, merged.render()
    assert not merged.errors


def test_corpus_covers_every_pass_family():
    labels = [label for label, _ in default_corpus(n_fuzz_seeds=2)]
    assert any(l.startswith("pattern_") for l in labels)
    assert any(l.startswith("tpch_") for l in labels)
    assert any(l.startswith("fuzz_") for l in labels)
    assert any(l.endswith(":fused") for l in labels)
    assert any(l.startswith("ir:") for l in labels)
    assert "batched_streams" in labels


def test_fuzz_corpus_is_deterministic():
    first = [p.name for _, p in fuzz_plans(n_seeds=5)]
    second = [p.name for _, p in fuzz_plans(n_seeds=5)]
    assert first == second


def test_tpch_plans_validate():
    for label, plan in tpch_plans():
        plan.validate()
        report = Analyzer().run(plan)
        assert report.ok, f"{label}: {report.render()}"

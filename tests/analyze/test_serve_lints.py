"""SRV6xx serving-pool lints over synthetic pool reports."""

from repro.analyze import Analyzer, Severity
from repro.analyze.serve_lints import ServeLintPass
from repro.workers import (
    Assignment,
    DispatchKey,
    DispatchRecord,
    PoolReport,
    RespawnEvent,
)


def record(batch_idx, worker, tenant="a", fp=None, token=None):
    fp = fp or "f" * 64
    key = DispatchKey(0, tenant, fp, batch_idx)
    return DispatchRecord(
        batch_idx=batch_idx, epoch=1, lane=0, worker=worker,
        tenant=tenant, key_token=token or key.token,
        query_fingerprint=fp, size=1, nbytes=8.0, makespan=1.0,
        degraded=False, faults=0, warnings=0)


def report(num_workers=2, assignments=(), dispatches=(), respawns=()):
    return PoolReport(
        num_workers=num_workers, rebalance="hash",
        assignments=list(assignments), dispatches=list(dispatches),
        outbox={}, respawns=list(respawns))


def balanced(n=8, workers=2):
    assignments = [Assignment(1 + i // workers, "ab"[i % workers],
                              i % workers, i) for i in range(n)]
    dispatches = [record(i, i % workers, tenant="ab"[i % workers])
                  for i in range(n)]
    return report(workers, assignments, dispatches)


def codes(rep):
    return [d.code for d in ServeLintPass().run(rep)]


class TestSrv601Skew:
    def test_balanced_pool_clean(self):
        assert "SRV601" not in codes(balanced())

    def test_all_on_one_worker_fires(self):
        n = 8
        assignments = [Assignment(1, "a", 0, i) for i in range(n)]
        dispatches = [record(i, 0) for i in range(n)]
        rep = report(2, assignments, dispatches)
        diags = [d for d in ServeLintPass().run(rep) if d.code == "SRV601"]
        assert len(diags) == 1
        assert diags[0].severity is Severity.WARNING
        assert "least-bytes" in diags[0].message

    def test_small_runs_exempt(self):
        assignments = [Assignment(1, "a", 0, i) for i in range(3)]
        rep = report(2, assignments, [record(i, 0) for i in range(3)])
        assert codes(rep) == []

    def test_single_worker_exempt(self):
        assignments = [Assignment(1, "a", 0, i) for i in range(20)]
        rep = report(1, assignments, [record(i, 0) for i in range(20)])
        assert "SRV601" not in codes(rep)


class TestSrv602Collisions:
    def test_colliding_keys_fire_error(self):
        shared = "deadbeef-token"
        rep = report(2, dispatches=[
            record(0, 0, token=shared, fp="a" * 64),
            record(1, 0, token=shared, fp="b" * 64),
        ])
        diags = [d for d in ServeLintPass().run(rep) if d.code == "SRV602"]
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR

    def test_distinct_keys_clean(self):
        assert "SRV602" not in codes(balanced())

    def test_replayed_copies_of_one_dispatch_are_not_collisions(self):
        rec = record(0, 0)
        again = record(0, 1)  # same dispatch, logged by its new owner
        rep = report(2, dispatches=[rec, again])
        assert "SRV602" not in codes(rep)


class TestSrv603ReplayGap:
    def test_short_replay_fires_error(self):
        rep = report(2, respawns=[
            RespawnEvent(worker=1, restored=2, redispatched=0, expected=4)])
        diags = [d for d in ServeLintPass().run(rep) if d.code == "SRV603"]
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR

    def test_full_replay_clean(self):
        rep = report(2, respawns=[
            RespawnEvent(worker=1, restored=3, redispatched=1, expected=4)])
        assert "SRV603" not in codes(rep)

    def test_routed_but_unlogged_dispatch_fires(self):
        assignments = [Assignment(1, "a", 0, 0), Assignment(1, "a", 0, 1)]
        rep = report(2, assignments, dispatches=[record(0, 0)])
        assert "SRV603" in codes(rep)


class TestFrameworkDispatch:
    def test_analyzer_routes_pool_reports(self):
        rep = Analyzer().run(balanced())
        assert rep.passes_run == ["serve-lints"]
        assert rep.diagnostics == []

"""The ``--json`` report schema is pinned: a fixed fixture run must
serialize byte-identically to the checked-in golden file.

Regenerate after an *intentional* schema change (and bump
``JSON_SCHEMA``) with::

    PYTHONPATH=src python tests/analyze/test_json_report.py --regen
"""

import dataclasses
import json
from pathlib import Path

from repro.analyze import Analyzer, AnalysisReport, Baseline
from repro.analyze.diagnostics import JSON_SCHEMA
from repro.analyze.memory_check import MemoryTarget
from repro.plans.plan import Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field
from repro.runtime.strategies import Strategy
from repro.simgpu.device import DEFAULT_CALIBRATION, DeviceSpec

GOLDEN = Path(__file__).with_name("goldens") / "report_v1.json"

BASELINE_TEXT = """\
# fixture baseline: one live suppression, one stale
PLN005 fixture:*
FUS999 nothing:matches:this
"""


def fixture_payload() -> dict:
    """A deterministic two-target run: one plan lint, one planted
    memory defect, one suppressed finding, one stale suppression."""
    device = DeviceSpec(calib=dataclasses.replace(
        DEFAULT_CALIBRATION,
        gpu=dataclasses.replace(DEFAULT_CALIBRATION.gpu,
                                global_mem_bytes=1 << 24)))

    lint_plan = Plan(name="fixture")
    src = lint_plan.source("t", row_nbytes=8, n_rows=10)
    lint_plan.source("orphan", row_nbytes=8, n_rows=10)   # PLN005
    lint_plan.select(src, Field("v") < 1, name="sel")

    oom_plan = Plan(name="fixture_oom")
    s2 = oom_plan.source("u", row_nbytes=20, n_rows=2_000_000)
    srt = oom_plan.sort(s2, ["k"], name="srt")
    oom_plan.aggregate(srt, ["k"], {"n": AggSpec("count")}, n_groups=8,
                       name="agg")

    baseline = Baseline.parse(BASELINE_TEXT)
    an = Analyzer(device, baseline=baseline)
    merged = AnalysisReport()
    merged.merge(an.run(lint_plan, unit="fixture"))
    merged.merge(an.run(MemoryTarget(oom_plan, {"u": 2_000_000},
                                     strategies=(Strategy.SERIAL,)),
                        unit="fixture_oom"))
    return merged.json_payload(targets=2,
                               stale=baseline.unused_suppressions())


def serialize(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class TestJsonReport:
    def test_matches_golden_byte_for_byte(self):
        assert serialize(fixture_payload()) == GOLDEN.read_text()

    def test_schema_is_pinned(self):
        payload = fixture_payload()
        assert payload["schema"] == JSON_SCHEMA == "repro.analyze.report/v1"
        assert sorted(payload) == ["diagnostics", "schema",
                                   "stale_suppressions", "summary",
                                   "targets"]
        for diag in payload["diagnostics"]:
            assert sorted(diag) == ["code", "location", "message", "pass",
                                    "severity"]

    def test_findings_sorted_and_stale_reported(self):
        payload = fixture_payload()
        keys = [(d["code"], d["location"], d["message"], d["pass"])
                for d in payload["diagnostics"]]
        assert keys == sorted(keys)
        assert payload["stale_suppressions"] == ["FUS999 nothing:matches:this"]
        assert payload["summary"]["suppressed"] == 1
        assert any(d["code"] == "MEM701" for d in payload["diagnostics"])
        assert not any(d["code"] == "PLN005"     # suppressed by baseline
                       for d in payload["diagnostics"])

    def test_repeated_fixture_runs_are_byte_identical(self):
        assert serialize(fixture_payload()) == serialize(fixture_payload())


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(exist_ok=True)
        GOLDEN.write_text(serialize(fixture_payload()))
        print(f"wrote {GOLDEN}")

"""Fusion-legality verifier (FUS1xx): clean fusion results pass, and each
planted defect -- including the barrier-spliced-into-a-region mutation --
trips its exact code."""

import pytest

from repro.analyze import Analyzer
from repro.core.fusion import FusionResult, Region, fuse_plan
from repro.errors import AnalysisError
from repro.plans.plan import Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field
from repro.analyze.corpus import pattern_plans, select_chain_plan


def check(fusion):
    return Analyzer().run(fusion)


def chain_plan(n=3):
    plan = Plan(name="chain")
    node = plan.source("t", fields=["k", "v"])
    for i in range(n):
        node = plan.select(node, Field("v") < 50 - i, name=f"s{i}")
    plan.aggregate(node, ["k"], {"n": AggSpec("count")}, name="agg")
    return plan


class TestCleanResults:
    def test_fused_chain_is_legal(self):
        report = check(fuse_plan(chain_plan()))
        assert report.ok
        assert not report.diagnostics

    def test_all_builtin_patterns_are_legal(self):
        for label, plan in pattern_plans():
            report = check(fuse_plan(plan))
            assert report.ok, f"{label}: {report.render()}"

    def test_unfused_result_is_legal(self):
        report = check(fuse_plan(chain_plan(), enable=False))
        assert report.ok


class TestPlantedDefects:
    def test_fus101_barrier_spliced_into_region(self):
        # the ISSUE's named planted defect: splice a SORT into the middle
        # of a fused region and the verifier must flag the exact node
        plan = Plan(name="spliced")
        src = plan.source("t", fields=["k", "v"])
        s0 = plan.select(src, Field("v") < 50, name="s0")
        srt = plan.sort(s0, by=["k"], name="srt")
        s1 = plan.select(srt, Field("v") < 40, name="s1")
        fusion = FusionResult(plan=plan, regions=[Region([s0, srt, s1])],
                              decisions=[])
        report = check(fusion)
        assert report.has_code("FUS101")
        diag = next(d for d in report.errors if d.code == "FUS101")
        assert "'srt'" in diag.message and "sort" in diag.message

    def test_fus102_chain_break(self):
        plan = Plan(name="broken")
        src = plan.source("t", fields=["k", "v"])
        s0 = plan.select(src, Field("v") < 50, name="s0")
        s1 = plan.select(src, Field("v") < 40, name="s1")  # also reads src
        fusion = FusionResult(plan=plan, regions=[Region([s0, s1])],
                              decisions=[])
        report = check(fusion)
        assert report.has_code("FUS102")

    def test_fus102_barrier_dependence(self):
        plan = Plan(name="aggdep")
        src = plan.source("t", fields=["k", "v"])
        agg = plan.aggregate(src, ["k"], {"n": AggSpec("count")}, name="agg")
        s0 = plan.select(agg, Field("n") < 5, name="s0")
        # AGGREGATE is in FUSABLE_OPS, but an AGGREGATE -> SELECT edge is
        # a barrier dependence: fusing across it changes results
        fusion = FusionResult(plan=plan, regions=[Region([agg, s0])],
                              decisions=[])
        report = check(fusion)
        assert report.has_code("FUS102")
        diag = next(d for d in report.errors if d.code == "FUS102")
        assert "barrier" in diag.message

    def test_fus103_multi_consumer_producer(self):
        plan = Plan(name="fanout")
        src = plan.source("t", fields=["k", "v"])
        s0 = plan.select(src, Field("v") < 50, name="s0")
        s1 = plan.select(s0, Field("v") < 40, name="s1")
        other = plan.select(s0, Field("v") < 30, name="other")
        fusion = FusionResult(
            plan=plan,
            regions=[Region([s0, s1]), Region([other])],
            decisions=[])
        report = check(fusion)
        assert report.has_code("FUS103")
        diag = next(d for d in report.errors if d.code == "FUS103")
        assert "other" in diag.message

    def test_fus105_regions_out_of_order(self):
        plan = Plan(name="ordered")
        src = plan.source("t", fields=["k", "v"])
        s0 = plan.select(src, Field("v") < 50, name="s0")
        srt = plan.sort(s0, by=["k"], name="srt")
        plan.select(srt, Field("v") < 40, name="s1")
        fusion = fuse_plan(plan)
        assert len(fusion.regions) >= 2
        mutated = FusionResult(plan=plan,
                               regions=list(reversed(fusion.regions)),
                               decisions=list(fusion.decisions))
        report = check(mutated)
        assert report.has_code("FUS105")

    def test_fus104_inter_region_cycle(self):
        plan = Plan(name="cyc")
        src = plan.source("t", fields=["k", "v"])
        a = plan.select(src, Field("v") < 50, name="a")
        b = plan.select(a, Field("v") < 40, name="b")
        c = plan.join(b, a, on="k", name="c")
        # region [a, c] side-reads region [b], which reads a back: cycle
        fusion = FusionResult(plan=plan,
                              regions=[Region([a, c]), Region([b])],
                              decisions=[])
        report = check(fusion)
        assert report.has_code("FUS104")

    def test_fus107_node_dropped_from_coverage(self):
        plan = chain_plan(2)
        fusion = fuse_plan(plan)
        mutated = FusionResult(plan=plan, regions=fusion.regions[:-1],
                               decisions=[])
        report = check(mutated)
        assert report.has_code("FUS107")
        diag = next(d for d in report.errors if d.code == "FUS107")
        assert "not covered" in diag.message

    def test_fus107_node_duplicated_across_regions(self):
        plan = chain_plan(1)
        fusion = fuse_plan(plan)
        dup = fusion.regions[0]
        mutated = FusionResult(plan=plan, regions=[*fusion.regions, dup],
                               decisions=[])
        report = check(mutated)
        assert report.has_code("FUS107")

    def test_strict_raises_with_code_in_message(self):
        plan = chain_plan(2)
        fusion = fuse_plan(plan)
        mutated = FusionResult(plan=plan, regions=fusion.regions[:-1],
                               decisions=[])
        with pytest.raises(AnalysisError) as err:
            Analyzer().run(mutated, strict=True)
        assert "FUS107" in str(err.value)


class TestRegisterBudget:
    def test_fus106_deep_select_chain_blows_budget(self):
        # 10 fused threshold filters model ~81 regs > the C2070's 63
        fusion = fuse_plan(select_chain_plan(10))
        report = check(fusion)
        assert report.has_code("FUS106")
        diag = next(d for d in report.diagnostics if d.code == "FUS106")
        assert "register" in diag.message
        assert report.ok  # warning, not error

    def test_shallow_chain_stays_under_budget(self):
        report = check(fuse_plan(select_chain_plan(3)))
        assert not report.has_code("FUS106")

"""Stream-program race detector (STR2xx): clean programs pass, and the
ISSUE's planted desync defects -- a stripped ``select_wait`` edge and a
use-before-upload -- raise their exact codes."""

from repro.analyze import Analyzer, Severity
from repro.analyze.corpus import batched_stream_pool
from repro.simgpu.engine import SimStream, WaitEventCommand


def streams(n=2):
    return [SimStream(stream_id=i) for i in range(n)]


def check(ss, unit="test"):
    return Analyzer().run(ss, unit=unit)


class TestCleanPrograms:
    def test_single_stream_pipeline(self):
        (s,) = streams(1)
        s.h2d(1024, writes=("t",))
        s.host(1e-6, tag="work", reads=("t",), writes=("out",))
        s.d2h(1024, reads=("out",))
        report = check([s])
        assert report.ok
        assert not report.diagnostics

    def test_signal_wait_orders_cross_stream_access(self):
        a, b = streams(2)
        a.h2d(1024, tag="input.t", writes=("t",))
        a.signal(7)
        b.wait_event(7)
        b.host(1e-6, tag="scan", reads=("t",), writes=("out",))
        b.d2h(1024, reads=("out",))
        report = check([a, b])
        assert report.ok
        assert not report.diagnostics

    def test_batched_pool_program_is_race_free(self):
        pool = batched_stream_pool()
        report = check(pool, unit="pool")
        assert report.ok
        # only left-resident infos (the serving path never downloads)
        assert all(d.code == "STR207" for d in report.diagnostics)


class TestPlantedDefects:
    def test_str202_stripped_select_wait_edge(self):
        # the ISSUE's named defect: build the real batched-streams program,
        # then delete its wait edges -- workers now race the lead upload
        pool = batched_stream_pool()
        sim_streams = [s.sim for s in pool.streams]
        for s in sim_streams:
            s.commands = [c for c in s.commands
                          if not isinstance(c, WaitEventCommand)]
        report = check(sim_streams, unit="desynced")
        assert report.has_code("STR202")
        assert not report.ok
        diag = next(d for d in report.errors if d.code == "STR202")
        assert "select_wait" in diag.message

    def test_str203_use_before_upload(self):
        (s,) = streams(1)
        s.host(1e-6, tag="scan", reads=("t",), writes=("out",))
        s.h2d(1024, tag="late", writes=("t",))  # upload after the read
        s.d2h(1024, reads=("out",))
        report = check([s])
        assert report.has_code("STR203")
        diag = next(d for d in report.errors if d.code == "STR203")
        assert "use before upload" in diag.message

    def test_str203_never_written(self):
        (s,) = streams(1)
        s.host(1e-6, tag="scan", reads=("ghost",), writes=("out",))
        s.d2h(1024, reads=("out",))
        report = check([s])
        diag = next(d for d in report.errors if d.code == "STR203")
        assert "before any upload" in diag.message

    def test_str201_unordered_write_write(self):
        a, b = streams(2)
        a.h2d(1024, tag="up.a", writes=("t",))
        b.h2d(1024, tag="up.b", writes=("t",))
        report = check([a, b])
        assert report.has_code("STR201")

    def test_str202_unordered_read_write(self):
        a, b = streams(2)
        a.h2d(1024, tag="up", writes=("t",))
        a.signal(1)
        b.wait_event(1)
        b.host(1e-6, tag="reader", reads=("t",))
        a.host(1e-6, tag="rewriter", writes=("t",))  # unordered vs reader
        report = check([a, b])
        assert report.has_code("STR202")

    def test_str204_download_of_nothing(self):
        (s,) = streams(1)
        s.d2h(1024, tag="dl", reads=("never",))
        report = check([s])
        assert report.has_code("STR204")

    def test_str205_wait_without_signal(self):
        (s,) = streams(1)
        s.wait_event(42)
        report = check([s])
        assert report.has_code("STR205")
        diag = next(d for d in report.errors if d.code == "STR205")
        assert "deadlock" in diag.message

    def test_str205_signal_after_wait(self):
        a, b = streams(2)
        a.wait_event(5)
        a.signal(6)
        b.wait_event(6)
        b.signal(5)  # only reachable after a's wait: circular
        report = check([a, b])
        assert report.has_code("STR205")


class TestAdvisories:
    def test_str206_upload_never_read(self):
        (s,) = streams(1)
        s.h2d(1024, tag="up", writes=("t",))
        report = check([s])
        diag = next(d for d in report.diagnostics if d.code == "STR206")
        assert diag.severity is Severity.WARNING
        assert report.ok

    def test_str207_left_resident(self):
        (s,) = streams(1)
        s.h2d(1024, writes=("t",))
        s.host(1e-6, tag="k", reads=("t",), writes=("out",))
        report = check([s])
        diag = next(d for d in report.diagnostics if d.code == "STR207")
        assert diag.severity is Severity.INFO

    def test_tag_inference_for_legacy_programs(self):
        (s,) = streams(1)
        s.h2d(1024, tag="input.t")           # no annotations at all
        s.d2h(1024, tag="output.ghost")
        report = check([s])
        assert report.has_code("STR204")     # ghost never written
        assert report.has_code("STR206")     # t uploaded, never read

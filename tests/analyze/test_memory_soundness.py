"""Differential soundness harness for the memory-safety analysis.

The contract (docs/ANALYSIS.md, "Memory-safety analysis") is enforced in
both directions against the real executor:

* **no false negatives** -- a (plan, rows, device, strategy) the analysis
  calls ``safe`` must never raise :class:`DeviceOOMError` at runtime;
* **no silent OOMs** -- every runtime :class:`DeviceOOMError` must have
  been flagged statically as certain (MEM701 / ``certain-oom``) or
  possible (MEM702 / ``possible-oom``).

The matrix covers the TPC-H queries, a fuzzed plan population, several
row scales, and device budgets from 16 MB up to the default 6 GB.
"""

import dataclasses

import pytest

from repro.analyze.memory_check import check_strategy
from repro.errors import DeviceOOMError
from repro.plans.fuzz import random_plan_case
from repro.runtime.executor import ExecutionConfig, Executor
from repro.runtime.strategies import Strategy
from repro.simgpu.device import DEFAULT_CALIBRATION, DeviceSpec
from repro.tpch.q1 import build_q1_plan, q1_source_rows
from repro.tpch.q6 import build_q6_plan
from repro.tpch.q21 import build_q21_plan, q21_source_rows

DEVICE_BYTES = (1 << 24, 1 << 26, 1 << 28, 6 << 30)
SCALES = (200_000, 2_000_000, 20_000_000)
FUZZ_SEEDS = range(20)
FUZZ_FACTORS = (1, 40, 1600)


def device_of(nbytes: int) -> DeviceSpec:
    return DeviceSpec(calib=dataclasses.replace(
        DEFAULT_CALIBRATION,
        gpu=dataclasses.replace(DEFAULT_CALIBRATION.gpu,
                                global_mem_bytes=nbytes)))


DEVICES = tuple(device_of(n) for n in DEVICE_BYTES)


def check_both_directions(plan, rows, device, strategy) -> str:
    """Run the analysis and the executor; assert they agree. Returns the
    static verdict so callers can count coverage."""
    verdict = check_strategy(plan, strategy, rows, device)
    oom = None
    try:
        Executor(device).run(plan, rows, ExecutionConfig(strategy=strategy))
    except DeviceOOMError as err:
        oom = err
    label = f"{plan.name}/{strategy.value}@{device.calib.gpu.global_mem_bytes}"
    if verdict.verdict == "safe":
        assert oom is None, (
            f"UNSOUND: {label} declared safe but raised {oom} "
            f"({verdict.detail})")
    if oom is not None:
        assert verdict.verdict in ("certain-oom", "possible-oom"), (
            f"SILENT OOM: {label} raised {oom} but verdict was "
            f"{verdict.verdict} ({verdict.detail})")
    return verdict.verdict


class TestTpchSoundness:
    @pytest.mark.parametrize("nbytes", DEVICE_BYTES)
    def test_q1(self, nbytes):
        device = device_of(nbytes)
        for n in SCALES:
            for strategy in Strategy:
                check_both_directions(build_q1_plan(), q1_source_rows(n),
                                      device, strategy)

    @pytest.mark.parametrize("nbytes", DEVICE_BYTES)
    def test_q6(self, nbytes):
        device = device_of(nbytes)
        for n in SCALES:
            for strategy in Strategy:
                check_both_directions(build_q6_plan(), {"lineitem": n},
                                      device, strategy)

    @pytest.mark.parametrize("nbytes", DEVICE_BYTES)
    def test_q21(self, nbytes):
        device = device_of(nbytes)
        for n in SCALES:
            rows = q21_source_rows(n, n // 4, max(1, n // 600))
            for strategy in Strategy:
                check_both_directions(build_q21_plan(), rows, device,
                                      strategy)


class TestFuzzSoundness:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fuzzed_plans(self, seed):
        case = random_plan_case(seed)
        base = {name: rel.num_rows for name, rel in case.sources.items()}
        for factor in FUZZ_FACTORS:
            rows = {name: n * factor for name, n in base.items()}
            for device in DEVICES:
                for strategy in Strategy:
                    check_both_directions(case.plan, rows, device, strategy)


class TestCoverage:
    def test_matrix_exercises_every_verdict(self):
        """The harness is only meaningful if all three verdicts actually
        occur in the matrix -- an all-safe sweep would prove nothing."""
        seen = set()
        for n in SCALES:
            for device in DEVICES:
                for strategy in Strategy:
                    seen.add(check_both_directions(
                        build_q1_plan(), q1_source_rows(n), device,
                        strategy))
        assert "safe" in seen
        assert "certain-oom" in seen

"""Tests for arithmetic codegen and common-subexpression elimination --
the Table III scope effect on Q1's fused ARITH block."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compilerlite import (
    common_subexpression_elimination,
    gen_arith_kernel,
    gen_unfused_arith,
    optimize,
    run_program,
)
from repro.compilerlite.ir import Instr, Program
from repro.errors import CompilerError
from repro.ra.expr import Const, Field

DISC_PRICE = Field("price") * (Const(1.0) - Field("discount"))
CHARGE = (Field("price") * (Const(1.0) - Field("discount"))
          * (Const(1.0) + Field("tax")))
Q1_ASSIGNMENTS = [("disc_price", DISC_PRICE), ("charge", CHARGE)]
MEM = {"price": 100.0, "discount": 0.1, "tax": 0.05}


class TestCodegen:
    def test_naive_counts(self):
        fused = gen_arith_kernel(Q1_ASSIGNMENTS)
        assert fused.count() == 16  # 6 + 10, nothing shared at O0

    def test_unfused_counts(self):
        progs = gen_unfused_arith(Q1_ASSIGNMENTS)
        assert [p.count() for p in progs] == [6, 10]

    def test_empty_rejected(self):
        with pytest.raises(CompilerError):
            gen_arith_kernel([])

    def test_executes_correctly(self):
        mem = run_program(gen_arith_kernel(Q1_ASSIGNMENTS), MEM)
        assert mem["disc_price"] == pytest.approx(90.0)
        assert mem["charge"] == pytest.approx(94.5)

    def test_render_has_arith_ops(self):
        src = gen_arith_kernel(Q1_ASSIGNMENTS).render()
        assert "mul" in src and "sub" in src and "add" in src


class TestCse:
    def test_shares_loads(self):
        prog = gen_arith_kernel(Q1_ASSIGNMENTS)
        opt = optimize(prog)
        loads = [i for i in opt.instrs if i.op == "ld"]
        assert len(loads) == 3  # price, discount, tax -- each once

    def test_shares_subexpression(self):
        """(1-discount)*price is computed once in the fused kernel."""
        opt = optimize(gen_arith_kernel(Q1_ASSIGNMENTS))
        subs = [i for i in opt.instrs if i.op == "sub"]
        muls = [i for i in opt.instrs if i.op == "mul"]
        assert len(subs) == 1
        assert len(muls) == 2  # disc_price, and disc_price*(1+tax)

    def test_fused_scope_beats_unfused(self):
        """The Table III effect on arithmetic: more instructions recovered
        when the assignments share one kernel."""
        fused = gen_arith_kernel(Q1_ASSIGNMENTS)
        unfused = gen_unfused_arith(Q1_ASSIGNMENTS)
        fused_o3 = optimize(fused).count()
        unfused_o3 = sum(optimize(p).count() for p in unfused)
        assert fused_o3 < unfused_o3

    def test_store_invalidates_location(self):
        prog = Program("k", [
            Instr("ld", dst="r0", srcs=("x",)),
            Instr("st", srcs=("x", "r0")),
            Instr("ld", dst="r1", srcs=("x",)),
            Instr("st", srcs=("out", "r1")),
        ])
        # the second load may still be CSE'd? no: the store rewrote x with
        # the same register -- but CSE must be conservative and reload
        out = common_subexpression_elimination(prog)
        assert [i.op for i in out.instrs if i.op == "ld"] == ["ld", "ld"]

    def test_label_resets_availability(self):
        prog = Program("k", [
            Instr("ld", dst="r0", srcs=("x",)),
            Instr("label", srcs=("L",)),
            Instr("ld", dst="r1", srcs=("x",)),
            Instr("st", srcs=("out", "r1")),
        ])
        out = common_subexpression_elimination(prog)
        assert sum(1 for i in out.instrs if i.op == "ld") == 2

    def test_guarded_defs_not_made_available(self):
        prog = Program("k", [
            Instr("ld", dst="r0", srcs=("x",), guard="p0"),
            Instr("ld", dst="r1", srcs=("x",)),
            Instr("st", srcs=("out", "r1")),
        ])
        out = common_subexpression_elimination(prog)
        assert sum(1 for i in out.instrs if i.op == "ld") == 2

    @given(st.floats(0.1, 1e4), st.floats(0.0, 0.99), st.floats(0.0, 0.5))
    @settings(max_examples=60, deadline=None)
    def test_semantics_preserved_property(self, price, discount, tax):
        mem = {"price": price, "discount": discount, "tax": tax}
        prog = gen_arith_kernel(Q1_ASSIGNMENTS)
        a = run_program(prog, mem)
        b = run_program(optimize(prog), mem)
        assert a["disc_price"] == pytest.approx(b["disc_price"])
        assert a["charge"] == pytest.approx(b["charge"])

    @given(st.integers(1, 9), st.integers(1, 9))
    @settings(max_examples=30, deadline=None)
    def test_random_shared_subexpressions(self, c1, c2):
        shared = Field("a") * Const(float(c1)) + Field("b")
        assignments = [("x", shared + Const(float(c2))),
                       ("y", shared * Const(2.0))]
        prog = gen_arith_kernel(assignments)
        opt = optimize(prog)
        assert opt.count() < prog.count()
        mem = {"a": 3.0, "b": 4.0}
        assert run_program(prog, mem)["x"] == pytest.approx(
            run_program(opt, mem)["x"])
        assert run_program(prog, mem)["y"] == pytest.approx(
            run_program(opt, mem)["y"])

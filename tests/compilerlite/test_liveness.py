"""Tests for IR liveness analysis / register pressure."""

import pytest

from repro.compilerlite import (
    FilterStatement,
    gen_arith_kernel,
    gen_fused_naive,
    gen_unfused,
    optimize,
)
from repro.compilerlite.ir import Instr, Program
from repro.compilerlite.liveness import analyze_liveness, register_pressure
from repro.ra.expr import Const, Field


class TestAnalysis:
    def test_empty_program(self):
        assert register_pressure(Program("k")) == 0

    def test_single_chain(self):
        p = Program("k", [
            Instr("ld", dst="r0", srcs=("in",)),
            Instr("st", srcs=("out", "r0")),
        ])
        assert register_pressure(p) == 1

    def test_two_values_live_simultaneously(self):
        p = Program("k", [
            Instr("ld", dst="r0", srcs=("a",)),
            Instr("ld", dst="r1", srcs=("b",)),
            Instr("add", dst="r2", srcs=("r0", "r1")),
            Instr("st", srcs=("out", "r2")),
        ])
        assert register_pressure(p) == 2

    def test_guard_is_a_use(self):
        p = Program("k", [
            Instr("setp", dst="p0", srcs=("r9", 1), cmp="lt"),
            Instr("ld", dst="r0", srcs=("in",)),
            Instr("st", srcs=("out", "r0"), guard="p0"),
        ])
        rep = analyze_liveness(p)
        assert rep.last_use["p0"] == 2
        assert rep.max_live == 2  # p0 and r0 live across the ld

    def test_dead_value_not_counted_after_last_use(self):
        p = Program("k", [
            Instr("ld", dst="r0", srcs=("a",)),
            Instr("st", srcs=("x", "r0")),
            Instr("ld", dst="r1", srcs=("b",)),
            Instr("st", srcs=("y", "r1")),
        ])
        assert register_pressure(p) == 1  # r0 dies before r1 is born


class TestFusionPressureClaim:
    def test_fused_filters_have_higher_pressure(self):
        """SS III-C at the IR level: the fused kernel keeps more live."""
        stmts = [FilterStatement("lt", 100.0), FilterStatement("lt", 50.0)]
        fused = optimize(gen_fused_naive(stmts))
        unfused = [optimize(p) for p in gen_unfused(stmts)]
        assert register_pressure(fused) >= max(
            register_pressure(p) for p in unfused)

    def test_fused_arith_pressure_exceeds_each_part(self):
        disc = Field("price") * (Const(1.0) - Field("discount"))
        charge = disc * (Const(1.0) + Field("tax"))
        fused = optimize(gen_arith_kernel([("d", disc), ("c", charge)]))
        single = optimize(gen_arith_kernel([("d", disc)]))
        assert register_pressure(fused) >= register_pressure(single)

    def test_pressure_grows_with_shared_values(self):
        """Sharing via CSE trades instructions for live ranges -- the
        values must stay in registers longer."""
        shared = Field("a") + Field("b")
        two = optimize(gen_arith_kernel([("x", shared * Const(2.0)),
                                         ("y", shared * Const(3.0))]))
        rep = analyze_liveness(two)
        assert rep.max_live >= 2

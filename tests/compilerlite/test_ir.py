"""Tests for the mini-IR."""

import pytest

from repro.errors import CompilerError
from repro.compilerlite.ir import Instr, Program


class TestInstr:
    def test_setp_requires_cmp(self):
        with pytest.raises(CompilerError):
            Instr("setp", dst="p0", srcs=("r0", 1))

    def test_label_not_counted(self):
        p = Program("k", [Instr("label", srcs=("L",)), Instr("ret")])
        assert p.count() == 1

    def test_render_forms(self):
        assert Instr("ld", dst="r0", srcs=("in",)).render() == "ld.global r0, [in]"
        assert Instr("st", srcs=("out", "r0")).render() == "st.global [out], r0"
        assert Instr("mov", dst="r1", srcs=(5,)).render() == "mov r1, 5"
        assert (Instr("setp", dst="p0", srcs=("r0", 5), cmp="lt").render()
                == "setp.lt p0, r0, 5")
        assert (Instr("bra", srcs=("L",), guard="!p0").render() == "@!p0 bra L")
        assert Instr("label", srcs=("L",)).render() == "L:"
        assert (Instr("and_pred", dst="p2", srcs=("p0", "p1")).render()
                == "and.pred p2, p0, p1")

    def test_unknown_op_render(self):
        with pytest.raises(CompilerError):
            Instr("frobnicate").render()

    def test_with_guard(self):
        i = Instr("st", srcs=("out", "r0"))
        assert i.with_guard("p0").guard == "p0"
        assert i.guard is None  # original immutable


class TestProgram:
    def _prog(self):
        return Program("k", [
            Instr("ld", dst="r0", srcs=("in",)),
            Instr("setp", dst="p0", srcs=("r0", 7), cmp="lt"),
            Instr("st", srcs=("out", "r0"), guard="p0"),
        ])

    def test_count(self):
        assert self._prog().count() == 3

    def test_render_contains_entry(self):
        assert ".entry k" in self._prog().render()

    def test_defs_and_uses(self):
        p = self._prog()
        assert p.defs_of("r0") == [0]
        assert p.uses_of("r0") == [1, 2]
        assert p.uses_of("p0") == [2]  # used as a guard

    def test_store_is_not_a_def(self):
        p = self._prog()
        assert p.defs_of("out") == []

    def test_copy_is_independent(self):
        p = self._prog()
        q = p.copy()
        q.instrs.pop()
        assert p.count() == 3
        assert q.count() == 2

"""Tests for the O3 pipeline and the Table III reproduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compilerlite import (
    FilterStatement,
    gen_filter_kernel,
    gen_fused_naive,
    gen_unfused,
    optimize,
    table3,
    visible_output,
)
from repro.compilerlite.ir import Instr, Program
from repro.compilerlite.optimizer import (
    branch_to_predication,
    constant_propagation,
    copy_propagation,
    dead_code_elimination,
    predicate_combination,
    store_load_forwarding,
)


class TestTable3:
    """The paper's Table III: 5x2 / 3x2 unfused, 10 / 3 fused."""

    def test_counts_match_paper(self):
        t = table3()
        assert t["unfused_o0"] == [5, 5]
        assert t["unfused_o3"] == [3, 3]
        assert t["fused_o0"] == 10
        assert t["fused_o3"] == 3

    def test_fused_o3_combines_thresholds(self):
        stmts = [FilterStatement("lt", 100.0), FilterStatement("lt", 50.0)]
        opt = optimize(gen_fused_naive(stmts))
        setps = [i for i in opt.instrs if i.op == "setp"]
        assert len(setps) == 1
        assert setps[0].srcs[1] == 50.0  # min of the two thresholds

    def test_gt_thresholds_combine_to_max(self):
        stmts = [FilterStatement("gt", 10.0), FilterStatement("gt", 30.0)]
        opt = optimize(gen_fused_naive(stmts))
        setps = [i for i in opt.instrs if i.op == "setp"]
        assert len(setps) == 1
        assert setps[0].srcs[1] == 30.0

    def test_mixed_directions_do_not_combine(self):
        stmts = [FilterStatement("lt", 100.0), FilterStatement("gt", 50.0)]
        opt = optimize(gen_fused_naive(stmts))
        setps = [i for i in opt.instrs if i.op == "setp"]
        assert len(setps) == 2  # a range check needs both compares

    def test_three_fused_filters_still_three_instrs(self):
        stmts = [FilterStatement("lt", t) for t in (100.0, 50.0, 75.0)]
        assert optimize(gen_fused_naive(stmts)).count() == 3


class TestIndividualPasses:
    def test_store_load_forwarding(self):
        p = Program("k", [
            Instr("ld", dst="r0", srcs=("in",)),
            Instr("st", srcs=("tmp0", "r0")),
            Instr("ld", dst="r1", srcs=("tmp0",)),
        ])
        out = store_load_forwarding(p)
        assert out.instrs[2].op == "mov"
        assert out.instrs[2].srcs == ("r0",)

    def test_forwarding_blocked_by_label(self):
        p = Program("k", [
            Instr("st", srcs=("tmp0", "r0")),
            Instr("label", srcs=("L",)),
            Instr("ld", dst="r1", srcs=("tmp0",)),
        ])
        out = store_load_forwarding(p)
        assert out.instrs[2].op == "ld"  # merge point: cannot forward

    def test_copy_propagation(self):
        p = Program("k", [
            Instr("ld", dst="r0", srcs=("in",)),
            Instr("mov", dst="r1", srcs=("r0",)),
            Instr("st", srcs=("out", "r1")),
        ])
        out = copy_propagation(p)
        assert out.instrs[2].srcs == ("out", "r0")

    def test_constant_propagation_into_setp(self):
        p = Program("k", [
            Instr("mov", dst="r1", srcs=(42,)),
            Instr("setp", dst="p0", srcs=("r0", "r1"), cmp="lt"),
        ])
        out = constant_propagation(p)
        assert out.instrs[1].srcs == ("r0", 42)

    def test_constant_propagation_skips_store_location(self):
        p = Program("k", [
            Instr("mov", dst="out", srcs=(1,)),
            Instr("st", srcs=("out", "r0")),
        ])
        out = constant_propagation(p)
        assert out.instrs[1].srcs[0] == "out"  # location untouched

    def test_dce_removes_unused_def(self):
        p = Program("k", [
            Instr("ld", dst="r0", srcs=("in",)),
            Instr("mov", dst="r9", srcs=(1,)),
            Instr("st", srcs=("out", "r0")),
        ])
        out = dead_code_elimination(p)
        assert all(i.dst != "r9" for i in out.instrs)

    def test_dce_removes_dead_temp_store(self):
        p = Program("k", [
            Instr("st", srcs=("tmp0", "r0")),
            Instr("st", srcs=("out", "r0")),
        ])
        out = dead_code_elimination(p)
        assert len(out.instrs) == 1
        assert out.instrs[0].srcs[0] == "out"

    def test_dce_keeps_loaded_temp_store(self):
        p = Program("k", [
            Instr("st", srcs=("tmp0", "r0")),
            Instr("ld", dst="r1", srcs=("tmp0",)),
            Instr("st", srcs=("out", "r1")),
        ])
        assert len(dead_code_elimination(p).instrs) == 3

    def test_dce_removes_orphan_label(self):
        p = Program("k", [Instr("label", srcs=("NOWHERE",)),
                          Instr("st", srcs=("out", "r0"))])
        assert len(dead_code_elimination(p).instrs) == 1

    def test_branch_to_predication(self):
        p = Program("k", [
            Instr("bra", srcs=("L",), guard="!p0"),
            Instr("st", srcs=("out", "r0")),
            Instr("label", srcs=("L",)),
        ])
        out = branch_to_predication(p)
        assert out.instrs[0].op == "st"
        assert out.instrs[0].guard == "p0"

    def test_branch_with_complex_body_untouched(self):
        p = Program("k", [
            Instr("bra", srcs=("L",), guard="!p0"),
            Instr("bra", srcs=("M",)),  # not a simple store
            Instr("label", srcs=("L",)),
            Instr("label", srcs=("M",)),
        ])
        assert branch_to_predication(p).instrs[0].op == "bra"

    def test_predicate_combination_requires_single_use(self):
        p = Program("k", [
            Instr("setp", dst="p0", srcs=("r0", 10), cmp="lt"),
            Instr("bra", srcs=("L",), guard="!p0"),
            Instr("st", srcs=("out", "r0"), guard="p0"),  # second use of p0
            Instr("setp", dst="p1", srcs=("r0", 5), cmp="lt"),
            Instr("label", srcs=("L",)),
        ])
        out = predicate_combination(p)
        assert sum(1 for i in out.instrs if i.op == "setp") == 2


class TestSemanticPreservation:
    """Optimization must never change what the kernel stores to [out]."""

    @given(st.floats(-1e6, 1e6), st.floats(-1e3, 1e3), st.floats(-1e3, 1e3),
           st.sampled_from(["lt", "le", "gt", "ge"]))
    @settings(max_examples=120, deadline=None)
    def test_fused_optimization_preserves_output(self, value, t1, t2, cmp):
        stmts = [FilterStatement(cmp, t1), FilterStatement(cmp, t2)]
        prog = gen_fused_naive(stmts)
        opt = optimize(prog)
        mem = {"in": value}
        assert visible_output(prog, mem) == visible_output(opt, mem)

    @given(st.floats(-1e6, 1e6), st.floats(-1e3, 1e3),
           st.sampled_from(["lt", "le", "gt", "ge", "eq", "ne"]))
    @settings(max_examples=80, deadline=None)
    def test_single_kernel_optimization_preserves_output(self, value, t, cmp):
        prog = gen_filter_kernel(FilterStatement(cmp, t))
        opt = optimize(prog)
        mem = {"in": value}
        assert visible_output(prog, mem) == visible_output(opt, mem)

    @given(st.floats(-100, 100),
           st.lists(st.floats(-50, 50), min_size=1, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_unfused_chain_equals_fused_chain(self, value, thresholds):
        """The compiler-level fusion-correctness property: running the
        unfused kernels back to back produces the same [out] as the fused
        kernel."""
        from repro.compilerlite import run_program
        from repro.errors import CompilerError
        stmts = [FilterStatement("lt", t) for t in thresholds]
        mem = {"in": value}
        unfused_out = None
        try:
            for prog in gen_unfused(stmts):
                mem = run_program(prog, mem)
            unfused_out = mem.get("out")
        except CompilerError:
            # a filter rejected the element: its output buffer stays empty,
            # so downstream kernels have nothing to read -- filtered out
            unfused_out = None
        fused_mem = visible_output(gen_fused_naive(stmts), {"in": value})
        assert fused_mem.get("out") == unfused_out

    def test_optimization_never_increases_count(self):
        for cmp in ("lt", "gt", "eq"):
            for n in (1, 2, 3):
                stmts = [FilterStatement(cmp, 10.0 * i) for i in range(1, n + 1)]
                prog = gen_fused_naive(stmts)
                assert optimize(prog).count() <= prog.count()

"""Unit tests for the schedule sanitizer (repro.validate)."""

import pytest

from repro.errors import ScheduleInvariantError, SchedulingError
from repro.simgpu import DeviceSpec, EventKind, KernelLaunchSpec, SimEngine, SimStream
from repro.simgpu.timeline import Timeline, TimelineEvent
from repro.validate import ValidationReport, Violation, validate_timeline


@pytest.fixture()
def dev():
    return DeviceSpec()


def kspec(name="k", n=10_000_000):
    return KernelLaunchSpec(name, n, 112, 256, 20, 4.0 * n, 2.0 * n, 40.0 * n)


def rules_of(report: ValidationReport) -> set:
    return {v.rule for v in report.violations}


class TestCleanTimelines:
    def test_empty_timeline_ok(self, dev):
        assert validate_timeline(Timeline(), dev).ok

    def test_engine_run_is_clean(self, dev):
        s0 = SimStream(0).h2d(2e8).kernel(kspec()).d2h(1e8)
        s1 = SimStream(1).h2d(1e8).kernel(kspec("k1"))
        tl = SimEngine(dev).run([s0, s1])
        report = validate_timeline(tl, dev)
        assert report.ok, report.summary()
        assert report.num_events == len(tl.events)

    def test_pipelined_pool_is_clean(self, dev):
        from repro.streampool import StreamPool
        pool = StreamPool(dev, num_streams=3)
        for i in range(6):
            s = pool.streams[i % 3]
            s.h2d(5e7, tag=f"h{i}")
            s.kernel(kspec(f"k{i}", n=12_500_000))
            s.d2h(2.5e7, tag=f"d{i}")
        tl = pool.wait_all()
        assert validate_timeline(tl, dev).ok

    def test_summary_mentions_ok(self, dev):
        assert "OK" in validate_timeline(Timeline(), dev).summary()


class TestEngineExclusivity:
    def test_overlapping_h2d_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.H2D, "a", stream=0, nbytes=10)
        tl.add(0.5, 1.5, EventKind.H2D, "b", stream=1, nbytes=10)
        report = validate_timeline(tl, dev)
        assert "engine-overlap" in rules_of(report)
        (v,) = report.by_rule()["engine-overlap"]
        assert {e.tag for e in v.events} == {"a", "b"}

    def test_overlapping_d2h_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.D2H, "a", stream=0, nbytes=10)
        tl.add(0.9, 2.0, EventKind.D2H, "b", stream=1, nbytes=10)
        assert "engine-overlap" in rules_of(validate_timeline(tl, dev))

    def test_overlapping_host_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.HOST, "a", stream=0)
        tl.add(0.5, 1.5, EventKind.HOST, "b", stream=1)
        assert "engine-overlap" in rules_of(validate_timeline(tl, dev))

    def test_h2d_and_d2h_may_overlap(self, dev):
        """Two copy engines: opposite directions are concurrent."""
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.H2D, "up", stream=0, nbytes=10)
        tl.add(0.0, 1.0, EventKind.D2H, "down", stream=1, nbytes=10)
        assert validate_timeline(tl, dev).ok

    def test_back_to_back_not_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.H2D, "a", stream=0, nbytes=10)
        tl.add(1.0, 2.0, EventKind.H2D, "b", stream=1, nbytes=10)
        assert validate_timeline(tl, dev).ok


class TestSmCapacity:
    def test_oversubscribed_sms_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.KERNEL, "a", stream=0, nbytes=1, sms=8)
        tl.add(0.5, 1.5, EventKind.KERNEL, "b", stream=1, nbytes=1,
               sms=dev.num_sms - 7)
        report = validate_timeline(tl, dev)
        assert "sm-capacity" in rules_of(report)

    def test_partitioned_sms_ok(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.KERNEL, "a", stream=0, nbytes=1, sms=7)
        tl.add(0.0, 1.0, EventKind.KERNEL, "b", stream=1, nbytes=1,
               sms=dev.num_sms - 7)
        assert validate_timeline(tl, dev).ok

    def test_release_before_grant_at_same_instant(self, dev):
        """A kernel starting exactly when another ends reuses its SMs."""
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.KERNEL, "a", stream=0, nbytes=1,
               sms=dev.num_sms)
        tl.add(1.0, 2.0, EventKind.KERNEL, "b", stream=1, nbytes=1,
               sms=dev.num_sms)
        assert validate_timeline(tl, dev).ok

    def test_engine_kernel_events_carry_sm_grants(self, dev):
        tl = SimEngine(dev).run([SimStream(0).kernel(kspec())])
        (k,) = tl.filter(EventKind.KERNEL)
        assert 0 < k.sms <= dev.num_sms


class TestStreamOrder:
    def test_same_stream_overlap_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.KERNEL, "a", stream=2, nbytes=1)
        tl.add(0.5, 1.5, EventKind.H2D, "b", stream=2, nbytes=10)
        assert "stream-overlap" in rules_of(validate_timeline(tl, dev))

    def test_different_streams_may_overlap(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.KERNEL, "a", stream=0, nbytes=1)
        tl.add(0.5, 1.5, EventKind.H2D, "b", stream=1, nbytes=10)
        assert validate_timeline(tl, dev).ok


class TestSyncMatching:
    def test_orphan_wait_flagged(self, dev):
        tl = Timeline()
        tl.add(1.0, 1.0, EventKind.SYNC, "wait:7", stream=0)
        report = validate_timeline(tl, dev)
        assert "orphan-wait" in rules_of(report)

    def test_wait_before_signal_flagged(self, dev):
        tl = Timeline()
        tl.add(1.0, 1.0, EventKind.SYNC, "wait:3", stream=0)
        tl.add(2.0, 2.0, EventKind.SYNC, "signal:3", stream=1)
        assert "wait-before-signal" in rules_of(validate_timeline(tl, dev))

    def test_matched_pair_ok(self, dev):
        tl = Timeline()
        tl.add(1.0, 1.0, EventKind.SYNC, "signal:3", stream=1)
        tl.add(1.0, 1.0, EventKind.SYNC, "wait:3", stream=0)
        assert validate_timeline(tl, dev).ok

    def test_select_wait_run_is_clean(self, dev):
        engine = SimEngine(dev)
        s0, s1 = SimStream(0), SimStream(1)
        eid = engine.new_event_id()
        s0.h2d(2e8, tag="producer").signal(eid)
        s1.wait_event(eid).d2h(1e8, tag="consumer")
        tl = engine.run([s0, s1])
        assert validate_timeline(tl, dev).ok
        assert len(tl.filter(EventKind.SYNC)) == 2


class TestTimeSanity:
    def test_negative_duration_flagged(self, dev):
        tl = Timeline()
        tl.events.append(TimelineEvent(2.0, 1.0, EventKind.KERNEL, "bad"))
        assert "negative-duration" in rules_of(validate_timeline(tl, dev))

    def test_time_travel_after_bad_extend_offset(self, dev):
        inner = Timeline()
        inner.add(0.0, 1.0, EventKind.KERNEL, "k", stream=0)
        tl = Timeline()
        tl.extend(inner, offset=-5.0)
        assert "time-travel" in rules_of(validate_timeline(tl, dev))

    def test_non_finite_time_flagged(self, dev):
        tl = Timeline()
        tl.events.append(
            TimelineEvent(0.0, float("nan"), EventKind.HOST, "nan"))
        assert "non-finite-time" in rules_of(validate_timeline(tl, dev))

    def test_negative_bytes_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.H2D, "neg", stream=0, nbytes=-4.0)
        assert "negative-bytes" in rules_of(validate_timeline(tl, dev))


class TestByteRules:
    def test_zero_byte_transfer_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 0.5, EventKind.D2H, "empty", stream=0, nbytes=0.0)
        assert "zero-byte-transfer" in rules_of(validate_timeline(tl, dev))

    def test_zero_byte_host_event_ok(self, dev):
        tl = Timeline()
        tl.add(0.0, 0.5, EventKind.HOST, "gather", stream=0, nbytes=0.0)
        assert validate_timeline(tl, dev).ok

    def test_lopsided_roundtrip_flagged(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.D2H, "roundtrip.out.r0", nbytes=100.0)
        tl.add(1.0, 2.0, EventKind.H2D, "roundtrip.in.r0", nbytes=50.0)
        assert "byte-conservation" in rules_of(validate_timeline(tl, dev))

    def test_balanced_roundtrip_ok(self, dev):
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.D2H, "roundtrip.out.r0", nbytes=100.0)
        tl.add(1.0, 2.0, EventKind.H2D, "roundtrip.in.r0", nbytes=100.0)
        assert validate_timeline(tl, dev).ok


class TestReportApi:
    def _corrupt(self, dev) -> ValidationReport:
        tl = Timeline()
        tl.add(0.0, 1.0, EventKind.H2D, "a", stream=0, nbytes=10)
        tl.add(0.5, 1.5, EventKind.H2D, "b", stream=0, nbytes=10)
        return validate_timeline(tl, dev)

    def test_raise_if_failed(self, dev):
        report = self._corrupt(dev)
        with pytest.raises(ScheduleInvariantError) as exc:
            report.raise_if_failed()
        assert exc.value.violations == report.violations
        # strict-mode errors integrate with existing scheduling handlers
        assert isinstance(exc.value, SchedulingError)

    def test_summary_lists_rules_and_counts(self, dev):
        report = self._corrupt(dev)
        text = report.summary()
        assert "INVALID" in text
        assert "engine-overlap" in text

    def test_violation_str(self, dev):
        v = self._corrupt(dev).violations[0]
        assert v.rule in str(v) and isinstance(v, Violation)

    def test_merge_combines_reports(self, dev):
        a = self._corrupt(dev)
        n = len(a.violations)
        a.merge(self._corrupt(dev))
        assert len(a.violations) == 2 * n

"""Strict mode: engines/executors that sanitize their own schedules."""

import dataclasses

import pytest

from repro.errors import ScheduleInvariantError
from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.runtime.select_chain import run_select_chain, select_chain_plan
from repro.simgpu import DeviceSpec, EventKind, KernelLaunchSpec, SimEngine, SimStream
from repro.validate import validate_run


@pytest.fixture()
def dev():
    return DeviceSpec()


class TestStrictEngine:
    def test_valid_streams_pass(self, dev):
        n = 50_000_000
        spec = KernelLaunchSpec("k", n, 112, 256, 20, 4.0 * n, 2.0 * n,
                                40.0 * n)
        s0 = SimStream(0).h2d(4.0 * n).kernel(spec).d2h(2.0 * n)
        tl = SimEngine(dev, check=True).run([s0])
        assert tl.makespan > 0

    def test_signal_wait_pass(self, dev):
        engine = SimEngine(dev, check=True)
        s0, s1 = SimStream(0), SimStream(1)
        eid = engine.new_event_id()
        s0.h2d(1e8, tag="up").signal(eid)
        s1.wait_event(eid).d2h(5e7, tag="down")
        tl = engine.run([s0, s1])
        assert len(tl.filter(EventKind.SYNC)) == 2

    def test_default_is_lenient(self, dev):
        assert SimEngine(dev).check is False


class TestStrictExecutor:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_all_strategies_pass(self, dev, strategy):
        r = run_select_chain(100_000_000, 2, 0.5, strategy, device=dev,
                             check=True)
        assert r.makespan > 0

    @pytest.mark.parametrize("strategy",
                             [Strategy.SERIAL, Strategy.FUSED,
                              Strategy.FUSED_FISSION])
    def test_oversized_working_sets_pass(self, dev, strategy):
        """2B ints exceed the 6 GB budget; chunked (or, for fission,
        pipelined) execution is still clean."""
        r = run_select_chain(2_000_000_000, 2, 0.5, strategy, device=dev,
                             check=True)
        if strategy is not Strategy.FUSED_FISSION:
            assert r.num_chunks > 1  # fission streams segments instead
        assert r.makespan > 0

    def test_compute_only_pass(self, dev):
        r = run_select_chain(100_000_000, 2, 0.5, Strategy.FUSED, device=dev,
                             include_transfers=False, check=True)
        assert r.makespan > 0

    def test_run_result_carries_estimates(self, dev):
        r = run_select_chain(100_000_000, 2, 0.5, Strategy.SERIAL, device=dev,
                             check=True)
        assert r.expected_h2d_bytes is not None
        assert r.expected_d2h_bytes is not None
        assert r.timeline.bytes_moved(EventKind.H2D) == pytest.approx(
            r.expected_h2d_bytes, rel=1e-3)
        assert r.timeline.bytes_moved(EventKind.D2H) == pytest.approx(
            r.expected_d2h_bytes, rel=1e-3)


class TestValidateRunCatchesCorruption:
    def _result(self, dev):
        executor = Executor(dev)
        plan = select_chain_plan(2, 0.5)
        return executor.run(plan, {"input": 100_000_000},
                            ExecutionConfig(strategy=Strategy.SERIAL))

    def test_duplicated_output_breaks_conservation(self, dev):
        r = self._result(dev)
        out = [e for e in r.timeline.events
               if e.kind is EventKind.D2H and e.tag.startswith("output")][-1]
        # replay the final download after the makespan: engine-legal, but
        # the timeline now moves more D2H bytes than the plan produces
        t = r.timeline.makespan + 1.0
        r.timeline.add(t, t + out.duration, EventKind.D2H, out.tag,
                       stream=out.stream, nbytes=out.nbytes)
        report = validate_run(r, dev)
        assert not report.ok
        assert any(v.rule == "byte-conservation" for v in report.violations)
        with pytest.raises(ScheduleInvariantError):
            report.raise_if_failed()

    def test_inflated_estimate_breaks_conservation(self, dev):
        r = self._result(dev)
        bad = dataclasses.replace(
            r, expected_h2d_bytes=r.expected_h2d_bytes * 2)
        report = validate_run(bad, dev)
        assert any(v.rule == "byte-conservation" for v in report.violations)

    def test_intact_result_passes(self, dev):
        assert validate_run(self._result(dev), dev).ok

"""Pool-sanitizer rules over synthetic (duck-typed) pools."""

from repro.validate.workers import validate_pool
from repro.workers import (
    Assignment,
    DispatchKey,
    DispatchRecord,
    RespawnEvent,
    ResultOutbox,
    TenantRouter,
    WorkerPartial,
)


def record(batch_idx, worker, tenant="a", epoch=1):
    key = DispatchKey(0, tenant, "f" * 64, batch_idx)
    return DispatchRecord(
        batch_idx=batch_idx, epoch=epoch, lane=0, worker=worker,
        tenant=tenant, key_token=key.token, query_fingerprint="f" * 64,
        size=1, nbytes=8.0, makespan=1.0, degraded=False, faults=0,
        warnings=0)


class FakePool:
    """The sanitizer's duck-typed surface, assembled by hand."""

    def __init__(self, num_workers=2):
        self.num_workers = num_workers
        self.outbox = ResultOutbox()
        self.router = TenantRouter(num_workers, seed=0)
        self.partials = [WorkerPartial(worker=w)
                         for w in range(num_workers)]
        self.respawn_events = []

    def dispatch(self, batch_idx, tenant="a", epoch=1, ack=True):
        """One healthy dispatch: routed, recorded, logged, acked."""
        key = DispatchKey(0, tenant, "f" * 64, batch_idx)
        assert self.outbox.lookup(key) is None
        worker = self.router.route(tenant, epoch, 8.0, batch_idx)
        self.outbox.record(key, result="r", worker=worker)
        self.partials[worker].dispatches.append(
            record(batch_idx, worker, tenant, epoch))
        if ack:
            self.outbox.ack(key, payload=None)
        return key, worker


def healthy(n=4):
    pool = FakePool()
    for i in range(n):
        pool.dispatch(i, tenant="ab"[i % 2], epoch=1 + i // 2)
    return pool


def rules(pool):
    return {v.rule for v in validate_pool(pool).violations}


class TestHealthyPool:
    def test_clean(self):
        assert validate_pool(healthy()).ok


class TestAckDiscipline:
    def test_unacked_entry_flagged(self):
        pool = healthy()
        pool.dispatch(99, ack=False)
        assert "pool-ack" in rules(pool)

    def test_double_ack_flagged(self):
        pool = healthy()
        key, _ = pool.dispatch(99)
        pool.outbox.ack(key, payload=None)
        assert "pool-ack" in rules(pool)


class TestConservation:
    def test_attempt_without_record_flagged(self):
        pool = healthy()
        pool.outbox.attempts += 1  # an attempt that vanished
        assert "pool-conservation" in rules(pool)

    def test_duplicate_hits_conserve(self):
        pool = healthy()
        key = DispatchKey(0, "a", "f" * 64, 0)
        assert pool.outbox.lookup(key) is not None  # hit, no new record
        assert validate_pool(pool).ok


class TestTenantAffinity:
    def test_split_within_epoch_flagged(self):
        pool = healthy()
        # forge a same-epoch assignment of tenant "a" to the other worker
        home = pool.router.log[0].worker
        pool.router.log.append(
            Assignment(epoch=1, tenant="a", worker=1 - home, sequence=99))
        assert "pool-tenant-split" in rules(pool)

    def test_move_across_epochs_allowed(self):
        pool = healthy()
        home = pool.router.log[0].worker
        pool.router.log.append(
            Assignment(epoch=50, tenant="a", worker=1 - home, sequence=99))
        assert "pool-tenant-split" not in rules(pool)


class TestCoverage:
    def test_missing_partial_flagged(self):
        pool = healthy()
        pool.partials.pop()
        assert "pool-coverage" in rules(pool)

    def test_dispatch_in_two_logs_flagged(self):
        pool = healthy()
        rec = pool.partials[0].dispatches[0] if \
            pool.partials[0].dispatches else pool.partials[1].dispatches[0]
        other = pool.partials[1 - rec.worker]
        other.dispatches.append(record(rec.batch_idx, other.worker))
        assert "pool-coverage" in rules(pool)

    def test_recorded_but_unlogged_flagged(self):
        pool = healthy()
        for p in pool.partials:
            if p.dispatches:
                p.dispatches.pop()
                break
        assert "pool-coverage" in rules(pool)


class TestReplayConservation:
    def test_gap_flagged(self):
        pool = healthy()
        pool.respawn_events.append(
            RespawnEvent(worker=0, restored=1, redispatched=0, expected=3))
        assert "pool-replay" in rules(pool)

    def test_full_replay_clean(self):
        pool = healthy()
        pool.respawn_events.append(
            RespawnEvent(worker=0, restored=2, redispatched=1, expected=3))
        assert "pool-replay" not in rules(pool)

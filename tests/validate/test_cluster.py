"""Cluster-level sanitizer: clean runs pass, and each tampered invariant
(conservation, host-lane events, loss markers, shard coverage, makespan)
is caught by its rule."""

import dataclasses

import pytest

from repro.cluster import ClusterConfig, ClusterExecutor
from repro.faults import FaultPlan
from repro.simgpu.timeline import Timeline
from repro.tpch import (
    build_q1_plan,
    build_q21_plan,
    q1_source_rows,
    q21_source_rows,
)
from repro.validate import validate_cluster

N = 2_000_000


def run_q1(**cfg):
    cx = ClusterExecutor(config=ClusterConfig(num_devices=4, **cfg))
    return cx, cx.run(build_q1_plan(), q1_source_rows(N))


def run_q21(**cfg):
    cx = ClusterExecutor(config=ClusterConfig(num_devices=4, **cfg))
    rows = q21_source_rows(N, N // 4, max(1, N // 600))
    return cx, cx.run(build_q21_plan(), rows)


def rules(report):
    return {v.rule for v in report.violations}


class TestCleanRuns:
    def test_q1_exchange_mode_passes(self):
        cx, res = run_q1()
        report = validate_cluster(res, cx.device)
        assert report.ok, report.summary()
        assert report.num_events > 0

    def test_q21_host_mode_passes(self):
        cx, res = run_q21()
        assert validate_cluster(res, cx.device).ok

    def test_device_loss_run_passes(self):
        faults = FaultPlan(seed=0, site_rates={"device.2": 1.0}, budget=1)
        cx, res = run_q21(faults=faults)
        assert res.lost_devices == (2,)
        assert validate_cluster(res, cx.device).ok


class TestTampering:
    def test_broken_conservation_flagged(self):
        cx, res = run_q1()
        res.exchange_in_bytes *= 2
        assert "exchange-conservation" in rules(validate_cluster(res))

    def test_host_shuffle_mismatch_flagged(self):
        cx, res = run_q1()
        res.exchange_out_bytes *= 3
        report = validate_cluster(res)
        assert "exchange-conservation" in rules(report)

    def test_missing_merge_event_flagged(self):
        cx, res = run_q21()
        res.host_timeline = Timeline()
        assert "host-lane" in rules(validate_cluster(res))

    def test_unmarked_device_loss_flagged(self):
        cx, res = run_q21()
        res.lost_devices = (3,)  # claims a loss no timeline recorded
        assert "device-loss" in rules(validate_cluster(res))

    def test_missing_shard_flagged(self):
        cx, res = run_q21()
        res.shard_runs = [r for r in res.shard_runs
                          if not (r.phase == "local" and r.shard == 1)]
        assert "shard-coverage" in rules(validate_cluster(res))

    def test_duplicated_shard_flagged(self):
        cx, res = run_q21()
        extra = [r for r in res.shard_runs if r.phase == "local"][0]
        res.shard_runs.append(dataclasses.replace(extra))
        assert "shard-coverage" in rules(validate_cluster(res))

    def test_wrong_makespan_flagged(self):
        cx, res = run_q21()
        res.makespan *= 0.5
        assert "makespan" in rules(validate_cluster(res))

    def test_lane_violations_prefixed_with_lane(self):
        cx, res = run_q21()
        tl = res.device_timelines[0]
        ev = tl.events[0]
        ev2 = dataclasses.replace(ev, start=ev.end, end=ev.start)
        tl.events[0] = ev2
        report = validate_cluster(res)
        assert not report.ok
        assert any(v.message.startswith("device 0:")
                   for v in report.violations)


class TestExecutorIntegration:
    def test_check_flag_runs_the_validator(self):
        # check=True raises on violation; a clean run returns normally
        cx, res = run_q1(check=True)
        assert res.makespan > 0

"""Tests for the CPU SELECT baseline."""

import pytest

from repro.cpubase import cpu_select, cpu_select_throughput, cpu_select_time
from repro.ra import Field, Relation, select
from repro.runtime.select_chain import gpu_select_throughput


class TestFunctional:
    def test_identical_to_gpu_operator(self, small_relation):
        pred = Field("key") < 300
        assert cpu_select(small_relation, pred).same_tuples(
            select(small_relation, pred))


class TestTimeModel:
    def test_monotone_in_n(self):
        assert cpu_select_time(10**7) < cpu_select_time(10**8)

    def test_monotone_in_selectivity(self):
        ts = [cpu_select_time(10**8, selectivity=f)
              for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert ts == sorted(ts)

    def test_throughput_declines_with_selectivity(self):
        t10 = cpu_select_throughput(10**8, selectivity=0.1)
        t90 = cpu_select_throughput(10**8, selectivity=0.9)
        assert t10 > 2 * t90

    def test_startup_dominates_tiny_inputs(self):
        t = cpu_select_time(1)
        from repro.simgpu import DEFAULT_CALIBRATION
        assert t == pytest.approx(DEFAULT_CALIBRATION.cpu.startup_s, rel=0.01)

    def test_throughput_plausible_range(self):
        # Fig 4(a) bottom curves: single-digit GB/s
        for f in (0.1, 0.5, 0.9):
            tput = cpu_select_throughput(2 * 10**8, selectivity=f)
            assert 0.5e9 < tput < 12e9


class TestGpuSpeedups:
    """Fig 4(a): average GPU speedups of 2.88x / 8.80x / 8.35x.  We assert
    the reproduced *shape*: smallest advantage at 10%, largest around 50%,
    all within 2x of the paper's numbers."""

    @pytest.mark.parametrize("sel,paper", [(0.1, 2.88), (0.5, 8.80), (0.9, 8.35)])
    def test_speedup_within_band(self, sel, paper):
        n = 200_000_000
        speedup = (gpu_select_throughput(n, sel)
                   / cpu_select_throughput(n, selectivity=sel))
        assert paper / 2 < speedup < paper * 2

    def test_speedup_smallest_at_low_selectivity(self):
        n = 200_000_000
        s = {f: gpu_select_throughput(n, f) / cpu_select_throughput(n, selectivity=f)
             for f in (0.1, 0.5, 0.9)}
        assert s[0.1] < s[0.5]
        assert s[0.1] < s[0.9]
        # paper: 8.80x at 50% vs 8.35x at 90% -- nearly equal; require the
        # same near-tie (within 15%) rather than a strict ordering
        assert abs(s[0.5] - s[0.9]) / s[0.5] < 0.15

"""Tests for the exception hierarchy and package surface."""

import pytest

import repro
from repro.errors import (
    CompilerError,
    DeviceOOMError,
    FusionError,
    PlanError,
    RelationError,
    ReproError,
    SchedulingError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        DeviceOOMError(1, 0, 0), SchedulingError(), FusionError(),
        PlanError(), RelationError(), CompilerError(),
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_oom_carries_sizes(self):
        e = DeviceOOMError(requested=100, free=30, capacity=50)
        assert e.requested == 100
        assert e.free == 30
        assert e.capacity == 50
        assert "100" in str(e)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise FusionError("nope")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_subpackages_importable(self):
        for name in ("ra", "plans", "core", "simgpu", "streampool",
                     "runtime", "compilerlite", "tpch", "cpubase", "bench"):
            assert hasattr(repro, name), name

    def test_all_exports_resolve(self):
        import importlib
        for pkg_name in ("repro", "repro.ra", "repro.plans", "repro.core",
                         "repro.simgpu", "repro.runtime", "repro.tpch",
                         "repro.compilerlite", "repro.streampool",
                         "repro.cpubase", "repro.bench"):
            mod = importlib.import_module(pkg_name)
            for symbol in getattr(mod, "__all__", []):
                assert hasattr(mod, symbol), f"{pkg_name}.{symbol}"

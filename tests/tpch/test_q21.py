"""Tests for the TPC-H Q21 reproduction (Fig 17b / Fig 18b structure)."""

import pytest

from repro.core.fusion import fuse_plan
from repro.plans import evaluate_sinks
from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.tpch import (
    TpchConfig,
    build_q21_plan,
    generate,
    q21_reference,
    q21_source_rows,
)


def run_q21(data):
    plan = build_q21_plan()
    out = evaluate_sinks(plan, {
        "lineitem": data.lineitem, "orders": data.orders,
        "supplier": data.supplier, "nation": data.nation,
    })
    res = list(out.values())[0]
    return {int(k): int(v) for k, v in zip(res["suppkey"], res["numwait"])}


class TestPlanStructure:
    def test_validates(self):
        build_q21_plan().validate()

    def test_four_sources(self):
        assert len(build_q21_plan().sources()) == 4

    def test_fusion_produces_multi_op_region(self):
        """Fig 18(b): some blocks fuse (the paper reports 1.22x on them),
        while aggregates/sorts bound the fusable regions."""
        fr = fuse_plan(build_q21_plan())
        assert fr.num_fused_regions >= 1
        assert any(len(r.nodes) >= 3 for r in fr.regions)
        assert any(r.is_barrier_op for r in fr.regions)

    def test_final_sort_is_last_region(self):
        fr = fuse_plan(build_q21_plan())
        assert fr.regions[-1].nodes[0].name == "sort_numwait"


class TestFunctional:
    def test_matches_reference(self, tpch_tiny):
        got = run_q21(tpch_tiny)
        assert got == q21_reference(tpch_tiny.lineitem, tpch_tiny.orders,
                                    tpch_tiny.supplier, tpch_tiny.nation)

    def test_matches_reference_other_dataset(self, tpch_small):
        got = run_q21(tpch_small)
        assert got == q21_reference(tpch_small.lineitem, tpch_small.orders,
                                    tpch_small.supplier, tpch_small.nation)

    @pytest.mark.parametrize("late", [0.1, 0.9])
    def test_matches_reference_extreme_late_fractions(self, late):
        data = generate(TpchConfig(scale_factor=0.002, seed=23, late_fraction=late))
        got = run_q21(data)
        assert got == q21_reference(data.lineitem, data.orders,
                                    data.supplier, data.nation)

    def test_sorted_by_numwait_descending(self, tpch_small):
        plan = build_q21_plan()
        out = evaluate_sinks(plan, {
            "lineitem": tpch_small.lineitem, "orders": tpch_small.orders,
            "supplier": tpch_small.supplier, "nation": tpch_small.nation,
        })
        res = list(out.values())[0]
        waits = list(res["numwait"])
        assert waits == sorted(waits, reverse=True)


class TestTiming:
    @pytest.fixture(scope="class")
    def runs(self):
        ex = Executor()
        plan = build_q21_plan()
        rows = q21_source_rows(6_000_000, 1_500_000, 10_000)
        return {s: ex.run(plan, rows, ExecutionConfig(strategy=s))
                for s in (Strategy.SERIAL, Strategy.FUSED, Strategy.FUSED_FISSION)}

    def test_optimizations_help(self, runs):
        assert runs[Strategy.FUSED].makespan <= runs[Strategy.SERIAL].makespan
        assert (runs[Strategy.FUSED_FISSION].makespan
                < runs[Strategy.SERIAL].makespan)

    def test_total_gain_band(self, runs):
        """Paper: 13.2% total improvement on Q21."""
        gain = (runs[Strategy.SERIAL].makespan
                / runs[Strategy.FUSED_FISSION].makespan - 1)
        assert 0.05 < gain < 0.35

    def test_gain_smaller_than_q1(self, runs):
        """Q21 fuses a smaller share of its work than Q1 (the paper's
        explanation for 13.2% vs 26.5%)."""
        from repro.tpch import build_q1_plan, q1_source_rows
        ex = Executor()
        q1 = build_q1_plan()
        rows1 = q1_source_rows(6_000_000)
        q1_serial = ex.run(q1, rows1, ExecutionConfig(strategy=Strategy.SERIAL))
        q1_both = ex.run(q1, rows1, ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        q1_fusion_gain = q1_serial.makespan / q1_both.makespan - 1
        q21_fusion_only_gain = (runs[Strategy.SERIAL].makespan
                                / runs[Strategy.FUSED].makespan - 1)
        assert q21_fusion_only_gain < q1_fusion_gain

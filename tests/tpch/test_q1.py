"""Tests for the TPC-H Q1 reproduction (Fig 17a / Fig 18a structure)."""

import numpy as np
import pytest

from repro.core.fusion import fuse_plan
from repro.plans import evaluate_sinks
from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.tpch import (
    Q1_VALUE_COLUMNS,
    build_q1_plan,
    q1_column_relations,
    q1_reference,
    q1_source_rows,
)


@pytest.fixture(scope="module")
def q1_result(tpch_tiny):
    plan = build_q1_plan()
    cols = q1_column_relations(tpch_tiny.lineitem)
    out = evaluate_sinks(plan, cols)
    return list(out.values())[0]


class TestPlanStructure:
    def test_validates(self):
        build_q1_plan().validate()

    def test_seven_columnar_sources(self):
        plan = build_q1_plan()
        assert len(plan.sources()) == 7

    def test_fusion_shape_matches_paper(self):
        """Fig 17(a): SELECT+6 JOINs fuse into one kernel; SORT is a
        barrier; ARITH+AGGREGATE fuse."""
        fr = fuse_plan(build_q1_plan())
        sizes = [len(r.nodes) for r in fr.regions]
        assert sizes == [7, 1, 2]
        assert fr.regions[1].is_barrier_op

    def test_gather_joins_used(self):
        plan = build_q1_plan()
        joins = [n for n in plan.nodes if n.name.startswith("join_")]
        assert len(joins) == 6
        assert all(n.params.get("gather") for n in joins)


class TestFunctional:
    def test_six_groups(self, q1_result):
        assert q1_result.num_rows == 6  # 3 returnflags x 2 linestatuses

    def test_matches_reference(self, q1_result, tpch_tiny):
        ref = q1_reference(tpch_tiny.lineitem)
        assert q1_result.num_rows == len(ref)
        for i in range(q1_result.num_rows):
            key = (int(q1_result["returnflag"][i]), int(q1_result["linestatus"][i]))
            expected = ref[key]
            for metric in ("sum_qty", "sum_base_price", "sum_disc_price",
                           "sum_charge", "avg_qty", "avg_price", "avg_disc"):
                assert np.isclose(np.float64(q1_result[metric][i]),
                                  expected[metric], rtol=1e-3), (key, metric)
            assert int(q1_result["count_order"][i]) == expected["count_order"]

    def test_counts_cover_selected_rows(self, q1_result, tpch_tiny):
        from repro.tpch.q1 import Q1_CUTOFF
        selected = int((tpch_tiny.lineitem["shipdate"] <= Q1_CUTOFF).sum())
        assert int(q1_result["count_order"].sum()) == selected


class TestTiming:
    @pytest.fixture(scope="class")
    def runs(self):
        ex = Executor()
        plan = build_q1_plan()
        rows = q1_source_rows(6_000_000)
        return {s: ex.run(plan, rows, ExecutionConfig(strategy=s))
                for s in (Strategy.SERIAL, Strategy.FUSED, Strategy.FUSED_FISSION)}

    def test_sort_dominates_baseline(self, runs):
        """Fig 18(a): SORT takes ~71% of the unoptimized execution."""
        r = runs[Strategy.SERIAL]
        sort_t = sum(v for k, v in r.kernel_times().items() if "sort" in k)
        share = sort_t / r.makespan
        assert 0.6 < share < 0.85

    def test_fusion_speeds_up(self, runs):
        speedup = runs[Strategy.SERIAL].makespan / runs[Strategy.FUSED].makespan
        assert 1.05 < speedup < 1.5  # paper: 1.25x

    def test_fission_adds_on_top(self, runs):
        assert (runs[Strategy.FUSED_FISSION].makespan
                < runs[Strategy.FUSED].makespan)

    def test_total_gain_band(self, runs):
        gain = (runs[Strategy.SERIAL].makespan
                / runs[Strategy.FUSED_FISSION].makespan - 1)
        assert 0.10 < gain < 0.45  # paper: 26.5%

    @pytest.mark.no_chaos  # asserts a calibrated timing band
    def test_fused_block_speedup(self):
        """Paper: excluding SORT and PCIe, fusing 6 JOINs + 1 SELECT gives
        3.18x on that block."""
        ex = Executor()
        plan = build_q1_plan()
        rows = q1_source_rows(6_000_000)
        cfg = dict(include_transfers=False)
        rs = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.SERIAL, **cfg))
        rf = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.FUSED, **cfg))

        def block_time(r):
            return sum(v for k, v in r.kernel_times().items()
                       if ("sel" in k or "join" in k) and "sort" not in k)
        ratio = block_time(rs) / block_time(rf)
        assert 2.0 < ratio < 5.0


class TestHelpers:
    def test_column_relations_complete(self, tpch_tiny):
        cols = q1_column_relations(tpch_tiny.lineitem)
        assert set(cols) == {"l_shipdate"} | {f"l_{c}" for c in Q1_VALUE_COLUMNS}
        n = tpch_tiny.lineitem.num_rows
        assert all(r.num_rows == n for r in cols.values())

    def test_source_rows_uniform(self):
        rows = q1_source_rows(1000)
        assert set(rows.values()) == {1000}
        assert len(rows) == 7

"""Tests for the TPC-H schema helpers."""

import pytest

from repro.tpch import schema


class TestDates:
    def test_epoch(self):
        assert schema.date_to_int("1992-01-01") == 0

    def test_q1_cutoff_before_end(self):
        assert (schema.date_to_int("1998-09-02")
                < schema.date_to_int("1998-12-01"))

    def test_day_arithmetic(self):
        assert schema.date_to_int("1992-01-31") == 30


class TestCodes:
    def test_nation_codes_bijective(self):
        assert len(schema.NATION_CODES) == len(schema.NATION_NAMES) == 25
        for name, code in schema.NATION_CODES.items():
            assert schema.NATION_NAMES[code] == name

    def test_saudi_arabia_present(self):
        assert "SAUDI ARABIA" in schema.NATION_CODES

    def test_status_codes(self):
        assert set(schema.ORDERSTATUS_CODES) == {"F", "O", "P"}
        assert set(schema.RETURNFLAG_CODES) == {"A", "N", "R"}
        assert set(schema.LINESTATUS_CODES) == {"F", "O"}


class TestScaledRows:
    def test_sf1_lineitem(self):
        assert schema.scaled_rows("lineitem", 1.0) == 6_001_215

    def test_scaling(self):
        assert schema.scaled_rows("orders", 0.1) == 150_000

    def test_nation_fixed(self):
        assert schema.scaled_rows("nation", 0.001) == 25
        assert schema.scaled_rows("nation", 10.0) == 25

    def test_minimum_one_row(self):
        assert schema.scaled_rows("supplier", 1e-9) == 1

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            schema.scaled_rows("widgets", 1.0)

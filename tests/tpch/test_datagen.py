"""Tests for the synthetic TPC-H data generator."""

import numpy as np
import pytest

from repro.tpch import TpchConfig, generate
from repro.tpch.schema import date_to_int, scaled_rows


@pytest.fixture(scope="module")
def data():
    return generate(TpchConfig(scale_factor=0.01, seed=3, late_fraction=0.5))


class TestShapes:
    def test_row_counts_scale(self, data):
        assert data.lineitem.num_rows == scaled_rows("lineitem", 0.01)
        assert data.orders.num_rows == scaled_rows("orders", 0.01)
        assert data.supplier.num_rows == scaled_rows("supplier", 0.01)
        assert data.nation.num_rows == 25

    def test_lineitem_columns(self, data):
        expected = {"orderkey", "suppkey", "linenumber", "quantity",
                    "extendedprice", "discount", "tax", "returnflag",
                    "linestatus", "shipdate", "commitdate", "receiptdate",
                    "partkey", "shipmode", "shipinstruct"}
        assert set(data.lineitem.fields) == expected

    def test_new_table_row_counts(self, data):
        assert data.part.num_rows == scaled_rows("part", 0.01)
        assert data.customer.num_rows == scaled_rows("customer", 0.01)
        assert data.region.num_rows == 5

    def test_partsupp_covers_lineitem_pairs(self, data):
        ps = set(zip(data.partsupp["partkey"].tolist(),
                     data.partsupp["suppkey"].tolist()))
        li = set(zip(data.lineitem["partkey"].tolist(),
                     data.lineitem["suppkey"].tolist()))
        assert li <= ps

    def test_orders_custkeys_in_customer(self, data):
        assert np.isin(data.orders["custkey"], data.customer["custkey"]).all()

    def test_customer_phone_country_code(self, data):
        codes = np.array([int(p[:2]) for p in data.customer["phone"]])
        assert np.array_equal(codes, data.customer["nationkey"] + 10)

    def test_compact_dtypes(self, data):
        li = data.lineitem
        assert li["returnflag"].dtype == np.int8
        assert li["shipdate"].dtype == np.int32
        assert li["quantity"].dtype == np.float32


class TestForeignKeys:
    def test_lineitem_orderkeys_in_orders(self, data):
        assert np.isin(data.lineitem["orderkey"], data.orders["orderkey"]).all()

    def test_lineitem_suppkeys_in_supplier(self, data):
        assert np.isin(data.lineitem["suppkey"], data.supplier["suppkey"]).all()

    def test_supplier_nationkeys_valid(self, data):
        assert data.supplier["nationkey"].min() >= 0
        assert data.supplier["nationkey"].max() < 25


class TestDistributions:
    def test_discount_range(self, data):
        d = data.lineitem["discount"]
        assert d.min() >= 0.0 and d.max() <= 0.10 + 1e-6

    def test_tax_range(self, data):
        t = data.lineitem["tax"]
        assert t.min() >= 0.0 and t.max() <= 0.08 + 1e-6

    def test_quantity_range(self, data):
        q = data.lineitem["quantity"]
        assert q.min() >= 1 and q.max() <= 50

    def test_shipdate_range(self, data):
        s = data.lineitem["shipdate"]
        assert s.min() >= 0
        assert s.max() < date_to_int("1998-12-01")

    def test_late_fraction_controls_q21_filter(self):
        for frac in (0.2, 0.7):
            d = generate(TpchConfig(scale_factor=0.01, late_fraction=frac))
            late = (d.lineitem["receiptdate"] > d.lineitem["commitdate"]).mean()
            assert late == pytest.approx(frac, abs=0.05)

    def test_q1_filter_selectivity_near_annotation(self, data):
        from repro.tpch.q1 import Q1_CUTOFF, Q1_SELECT_FRACTION
        actual = (data.lineitem["shipdate"] <= Q1_CUTOFF).mean()
        assert actual == pytest.approx(Q1_SELECT_FRACTION, abs=0.03)

    def test_orderstatus_f_about_half(self, data):
        f = (data.orders["orderstatus"] == 0).mean()
        assert f == pytest.approx(0.49, abs=0.05)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(TpchConfig(scale_factor=0.005, seed=5))
        b = generate(TpchConfig(scale_factor=0.005, seed=5))
        assert np.array_equal(a.lineitem["extendedprice"],
                              b.lineitem["extendedprice"])

    def test_different_seed_different_data(self):
        a = generate(TpchConfig(scale_factor=0.005, seed=5))
        b = generate(TpchConfig(scale_factor=0.005, seed=6))
        assert not np.array_equal(a.lineitem["extendedprice"],
                                  b.lineitem["extendedprice"])


class TestSkew:
    def test_zero_skew_roughly_uniform(self):
        d = generate(TpchConfig(scale_factor=0.01, skew=0.0, seed=2))
        counts = np.bincount(d.lineitem["orderkey"])
        top = np.sort(counts)[::-1]
        assert top[0] < 10 * max(1, np.median(counts[counts > 0]))

    def test_skew_concentrates_keys(self):
        flat = generate(TpchConfig(scale_factor=0.01, skew=0.0, seed=2))
        hot = generate(TpchConfig(scale_factor=0.01, skew=1.2, seed=2))

        def top_share(rel):
            counts = np.bincount(rel["orderkey"])
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()

        assert top_share(hot.lineitem) > 3 * top_share(flat.lineitem)

    def test_skewed_keys_stay_in_range(self):
        d = generate(TpchConfig(scale_factor=0.01, skew=1.5))
        assert d.lineitem["orderkey"].min() >= 1
        assert d.lineitem["orderkey"].max() <= d.orders.num_rows
        assert d.lineitem["suppkey"].min() >= 1
        assert d.lineitem["suppkey"].max() <= d.supplier.num_rows

    def test_q21_correct_under_skew(self):
        from repro.plans import evaluate_sinks
        from repro.tpch import build_q21_plan, q21_reference
        d = generate(TpchConfig(scale_factor=0.002, skew=1.3, seed=9))
        plan = build_q21_plan()
        out = evaluate_sinks(plan, {
            "lineitem": d.lineitem, "orders": d.orders,
            "supplier": d.supplier, "nation": d.nation})
        res = list(out.values())[0]
        got = {int(k): int(v) for k, v in zip(res["suppkey"], res["numwait"])}
        assert got == q21_reference(d.lineitem, d.orders, d.supplier, d.nation)

    def test_q1_correct_under_skew(self):
        from repro.plans import evaluate_sinks
        from repro.tpch import build_q1_plan, q1_column_relations, q1_reference
        d = generate(TpchConfig(scale_factor=0.002, skew=1.3, seed=9))
        out = evaluate_sinks(build_q1_plan(), q1_column_relations(d.lineitem))
        res = list(out.values())[0]
        ref = q1_reference(d.lineitem)
        assert res.num_rows == len(ref)

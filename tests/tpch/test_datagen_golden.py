"""Golden checksums for the synthetic TPC-H generator.

The fault-injection determinism contract (docs/FAULTS.md) only holds if
the *data* is reproducible too: the default-config tables must hash to the
same bytes on every run and every machine with this NumPy generation.  A
change here means every calibrated TPC-H number in the suite silently
shifted -- bump the goldens only with a deliberate generator change.
"""

import hashlib

import pytest

from repro.tpch.datagen import TpchConfig, generate

# Goldens bumped when the generator grew the remaining TPC-H tables and
# columns; all pre-existing columns were verified byte-identical before
# the bump (the digests cover appended columns too, hence the change).
GOLDEN = {
    "nation": (25, "9bbf4c609063ad1ebe330471822bde90"),
    "supplier": (100, "072f5e321d7bf932535c60585288c942"),
    "orders": (15000, "2459965bc6b622144c92480ab5c5bcb1"),
    "lineitem": (60012, "0adffe84a83242975e8a68034433bd05"),
    "region": (5, "4989c9c09e25a2aea4fc94e9117bf3d0"),
    "part": (2000, "904a2835d29c6f77a7135e285dbe03d2"),
    "partsupp": (8000, "cc3659a6c86b05b603fa605f78c458f1"),
    "customer": (1500, "605ef173e8bea12b6d1d4abca98e5ee7"),
}


def _digest(rel) -> str:
    h = hashlib.blake2b(digest_size=16)
    for f in rel.fields:
        col = rel.column(f)
        h.update(f.encode())
        h.update(str(col.dtype).encode())
        h.update(col.tobytes())
    return h.hexdigest()


@pytest.fixture(scope="module")
def data():
    return generate(TpchConfig())


@pytest.mark.parametrize("table", sorted(GOLDEN))
def test_default_config_tables_match_goldens(data, table):
    rel = getattr(data, table)
    rows, digest = GOLDEN[table]
    assert rel.num_rows == rows
    assert _digest(rel) == digest


def test_regeneration_is_bit_identical(data):
    again = generate(TpchConfig())
    for table in GOLDEN:
        assert _digest(getattr(again, table)) == _digest(getattr(data, table))


def test_seed_changes_every_table(data):
    other = generate(TpchConfig(seed=2024))
    for table in ("supplier", "orders", "lineitem", "part", "partsupp",
                  "customer"):  # nation and region are static
        assert _digest(getattr(other, table)) != _digest(getattr(data, table))

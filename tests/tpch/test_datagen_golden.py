"""Golden checksums for the synthetic TPC-H generator.

The fault-injection determinism contract (docs/FAULTS.md) only holds if
the *data* is reproducible too: the default-config tables must hash to the
same bytes on every run and every machine with this NumPy generation.  A
change here means every calibrated TPC-H number in the suite silently
shifted -- bump the goldens only with a deliberate generator change.
"""

import hashlib

import pytest

from repro.tpch.datagen import TpchConfig, generate

GOLDEN = {
    "nation": (25, "edd715cfa9450f95b8317871e4d16f52"),
    "supplier": (100, "44abbe6d3f991d8e89475c783a991332"),
    "orders": (15000, "3701e8e8dd9b8abde68d7a7f0b24e6c7"),
    "lineitem": (60012, "8652536d84dcc934a32a75af55844fe9"),
}


def _digest(rel) -> str:
    h = hashlib.blake2b(digest_size=16)
    for f in rel.fields:
        col = rel.column(f)
        h.update(f.encode())
        h.update(str(col.dtype).encode())
        h.update(col.tobytes())
    return h.hexdigest()


@pytest.fixture(scope="module")
def data():
    return generate(TpchConfig())


@pytest.mark.parametrize("table", sorted(GOLDEN))
def test_default_config_tables_match_goldens(data, table):
    rel = getattr(data, table)
    rows, digest = GOLDEN[table]
    assert rel.num_rows == rows
    assert _digest(rel) == digest


def test_regeneration_is_bit_identical(data):
    again = generate(TpchConfig())
    for table in GOLDEN:
        assert _digest(getattr(again, table)) == _digest(getattr(data, table))


def test_seed_changes_every_table(data):
    other = generate(TpchConfig(seed=2024))
    for table in ("supplier", "orders", "lineitem"):  # nation is static
        assert _digest(getattr(other, table)) != _digest(getattr(data, table))

"""Tests for the Q6 extension (whole-query fusion)."""

import pytest

from repro.core.fusion import fuse_plan
from repro.plans import evaluate_sinks
from repro.runtime import ExecutionConfig, Executor, GpuRuntime, Strategy
from repro.simgpu import EventKind
from repro.tpch import build_q6_plan, q6_reference, q6_source_rows


class TestPlanStructure:
    def test_validates(self):
        build_q6_plan().validate()

    def test_whole_query_fuses_into_one_region(self):
        """Q6 is the limiting case: no barriers anywhere, one fused kernel."""
        fr = fuse_plan(build_q6_plan())
        assert len(fr.regions) == 1
        assert len(fr.regions[0].nodes) == 5

    def test_terminal_aggregate_means_single_kernel(self):
        from repro.core.opmodels import chain_for_region
        fr = fuse_plan(build_q6_plan())
        chain = chain_for_region(fr.regions[0].nodes)
        assert len(chain.kernels) == 1  # reduce writes directly, no gather


class TestFunctional:
    def test_matches_reference(self, tpch_small):
        plan = build_q6_plan()
        out = evaluate_sinks(plan, {"lineitem": tpch_small.lineitem})
        res = list(out.values())[0]
        assert float(res["revenue"][0]) == pytest.approx(
            q6_reference(tpch_small.lineitem), rel=1e-3)

    def test_through_gpu_runtime(self, tpch_small):
        res = GpuRuntime(fuse=True).run(
            build_q6_plan(), {"lineitem": tpch_small.lineitem})
        got = float(res.results["agg_revenue"]["revenue"][0])
        assert got == pytest.approx(q6_reference(tpch_small.lineitem), rel=1e-3)

    def test_nonzero_revenue(self, tpch_small):
        assert q6_reference(tpch_small.lineitem) > 0


class TestTiming:
    def test_fusion_collapses_kernel_count(self):
        ex = Executor()
        plan = build_q6_plan()
        rows = q6_source_rows(6_000_000)
        cfg = dict(include_transfers=False)
        ru = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.SERIAL, **cfg))
        rf = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.FUSED, **cfg))
        # unfused: 3 selects x 2 kernels + arith x 2 + aggregate
        assert len(ru.timeline.filter(EventKind.KERNEL)) >= 8
        assert len(rf.timeline.filter(EventKind.KERNEL)) == 1

    def test_compute_fusion_gain_large_no_barriers(self):
        """With no barrier at all, Q6's *compute* collapses dramatically
        under fusion; end to end the query is PCIe-bound, which is exactly
        the paper's motivation for combining fusion with fission."""
        ex = Executor()
        q6 = build_q6_plan()
        rows = q6_source_rows(6_000_000)
        cfg = dict(include_transfers=False)
        s = ex.run(q6, rows, ExecutionConfig(strategy=Strategy.SERIAL, **cfg))
        f = ex.run(q6, rows, ExecutionConfig(strategy=Strategy.FUSED, **cfg))
        assert s.makespan / f.makespan > 1.4
        # end to end, transfers dominate both
        se = ex.run(q6, rows, ExecutionConfig(strategy=Strategy.SERIAL))
        assert se.io_time > se.compute_time

    @pytest.mark.no_chaos  # asserts a tight timing margin
    def test_fused_fission_hides_input(self):
        ex = Executor()
        q6 = build_q6_plan()
        rows = q6_source_rows(6_000_000)
        f = ex.run(q6, rows, ExecutionConfig(strategy=Strategy.FUSED))
        ff = ex.run(q6, rows, ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        assert ff.makespan < f.makespan

"""Tests for the benchmark harness output helpers."""

from repro.bench import PaperComparison, format_series, format_table, print_header


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["n", "tput"], [[10, 1.5], [20, 2.25]])
        lines = text.splitlines()
        assert "n" in lines[0] and "tput" in lines[0]
        assert "1.500" in lines[1]
        assert "2.250" in lines[2]

    def test_mixed_types(self):
        text = format_table(["a"], [["x"], [3], [1.25]])
        assert "x" in text and "3" in text and "1.250" in text


class TestFormatSeries:
    def test_points_rendered(self):
        s = format_series("gpu", [1, 2], [3.0, 4.5], unit="GB/s")
        assert "(1, 3.000)" in s
        assert "(2, 4.500)" in s
        assert "GB/s" in s


class TestPaperComparison:
    def test_delta_computed(self):
        cmp = PaperComparison("fig-x")
        cmp.add("speedup", paper=2.0, measured=3.0)
        text = cmp.render()
        assert "+50.0%" in text
        assert "fig-x" in text

    def test_negative_delta(self):
        cmp = PaperComparison("fig-y")
        cmp.add("gain", paper=4.0, measured=2.0)
        assert "-50.0%" in cmp.render()

    def test_zero_paper_value_no_crash(self):
        cmp = PaperComparison("fig-z")
        cmp.add("x", paper=0.0, measured=1.0)
        assert "measured" in cmp.render()

    def test_print_runs(self, capsys):
        cmp = PaperComparison("fig-p")
        cmp.add("m", 1.0, 1.0)
        cmp.print()
        assert "fig-p" in capsys.readouterr().out


class TestHeader:
    def test_header_prints_environment(self, capsys):
        print_header("Figure 4(a)", "SELECT throughput")
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "C2070" in out


class TestJsonOutput:
    def test_disabled_without_target(self, monkeypatch):
        from repro.bench import JSON_ENV, emit_json, json_output_path
        monkeypatch.delenv(JSON_ENV, raising=False)
        assert json_output_path("x") is None
        assert emit_json("x", {"a": 1}) is None

    def test_explicit_file_path(self, tmp_path):
        from repro.bench import emit_json
        target = tmp_path / "out.json"
        out = emit_json("serve", {"a": 1}, path=str(target))
        assert out == str(target)
        import json
        doc = json.loads(target.read_text())
        assert doc["experiment"] == "serve"
        assert doc["payload"] == {"a": 1}

    def test_directory_target_names_per_experiment(self, tmp_path):
        from repro.bench import json_output_path
        assert json_output_path("serve", str(tmp_path)) == str(
            tmp_path / "BENCH_serve.json")

    def test_env_target(self, tmp_path, monkeypatch):
        from repro.bench import JSON_ENV, emit_json
        monkeypatch.setenv(JSON_ENV, str(tmp_path))
        out = emit_json("fusion", {"b": 2})
        assert out == str(tmp_path / "BENCH_fusion.json")

    def test_argument_beats_env(self, tmp_path, monkeypatch):
        from repro.bench import JSON_ENV, json_output_path
        monkeypatch.setenv(JSON_ENV, str(tmp_path / "env.json"))
        assert json_output_path("x", str(tmp_path / "arg.json")) == str(
            tmp_path / "arg.json")

    def test_byte_identical_reruns(self, tmp_path):
        from repro.bench import emit_json
        payload = {"z": 1.25, "a": [1, 2]}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        emit_json("e", payload, path=str(a))
        emit_json("e", payload, path=str(b))
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes().endswith(b"\n")

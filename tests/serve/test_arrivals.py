"""Tests for the client/arrival model."""

import pytest

from repro.serve import (
    ArrivalProcess,
    DEFAULT_TENANTS,
    QUERY_KINDS,
    TenantSpec,
    catalog_plan,
    catalog_rows,
)


class TestCatalog:
    @pytest.mark.parametrize("kind", QUERY_KINDS)
    def test_every_kind_has_a_plan(self, kind):
        plan = catalog_plan(kind)
        plan.validate()
        assert plan.sources()

    @pytest.mark.parametrize("kind", QUERY_KINDS)
    def test_every_kind_has_rows(self, kind):
        rows = catalog_rows(kind, 1_000_000)
        assert rows
        assert all(n >= 1 for n in rows.values())

    def test_rows_cover_plan_sources(self):
        for kind in QUERY_KINDS:
            rows = catalog_rows(kind, 600_000)
            for src in catalog_plan(kind).sources():
                assert src.name in rows

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            catalog_plan("q99")
        with pytest.raises(KeyError):
            catalog_rows("q99", 1000)

    def test_plan_is_cached(self):
        assert catalog_plan("q6") is catalog_plan("q6")


class TestTenantSpec:
    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            TenantSpec("t", mix=())

    def test_unknown_kind_in_mix_rejected(self):
        with pytest.raises(KeyError):
            TenantSpec("t", mix=(("nope", 1.0),))

    def test_defaults_valid(self):
        assert len(DEFAULT_TENANTS) == 3
        assert {t.priority for t in DEFAULT_TENANTS} == {0, 1, 2}


class TestOpenLoopTrace:
    def test_same_seed_identical_trace(self):
        a = ArrivalProcess(qps=100, duration_s=1.0, seed=3).trace()
        b = ArrivalProcess(qps=100, duration_s=1.0, seed=3).trace()
        assert a == b

    def test_different_seed_differs(self):
        a = ArrivalProcess(qps=100, duration_s=1.0, seed=3).trace()
        b = ArrivalProcess(qps=100, duration_s=1.0, seed=4).trace()
        assert a != b

    def test_sorted_and_within_window(self):
        trace = ArrivalProcess(qps=100, duration_s=1.0, seed=0).trace()
        times = [r.arrival_s for r in trace]
        assert times == sorted(times)
        assert all(0 < t < 1.0 for t in times)

    def test_rate_roughly_respected(self):
        trace = ArrivalProcess(qps=200, duration_s=2.0, seed=1).trace()
        assert 250 < len(trace) < 550  # Poisson(400), generous bounds

    def test_deadline_is_arrival_plus_slo(self):
        trace = ArrivalProcess(qps=50, duration_s=1.0, seed=0).trace()
        by_name = {t.name: t for t in DEFAULT_TENANTS}
        for req in trace:
            slo = by_name[req.tenant].deadline_s
            assert req.deadline_s == pytest.approx(req.arrival_s + slo)

    def test_kinds_come_from_tenant_mix(self):
        trace = ArrivalProcess(qps=200, duration_s=1.0, seed=2).trace()
        by_name = {t.name: t for t in DEFAULT_TENANTS}
        for req in trace:
            assert req.kind in {k for k, _ in by_name[req.tenant].mix}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess(qps=0, duration_s=1.0)
        with pytest.raises(ValueError):
            ArrivalProcess(qps=10, duration_s=0)


class TestClosedLoop:
    TENANTS = (TenantSpec("loop", mix=(("q6", 1.0),), deadline_s=5.0,
                          elements=500_000, closed_loop_clients=3,
                          think_s=0.1),)

    def test_first_arrivals_one_per_client(self):
        trace = ArrivalProcess(qps=1, duration_s=10.0, tenants=self.TENANTS,
                               seed=0).trace()
        assert len(trace) == 3
        assert {r.client for r in trace} == {0, 1, 2}

    def test_completion_spawns_followup(self):
        proc = ArrivalProcess(qps=1, duration_s=10.0, tenants=self.TENANTS,
                              seed=0)
        first = proc.trace()[0]
        nxt = proc.on_completion(first, 1.0)
        assert nxt is not None
        assert nxt.client == first.client
        assert nxt.arrival_s > 1.0

    def test_no_followup_past_window(self):
        proc = ArrivalProcess(qps=1, duration_s=10.0, tenants=self.TENANTS,
                              seed=0)
        first = proc.trace()[0]
        assert proc.on_completion(first, 10.0) is None

    def test_open_loop_requests_never_follow_up(self):
        proc = ArrivalProcess(qps=50, duration_s=1.0, seed=0)
        req = proc.trace()[0]
        assert req.client == -1
        assert proc.on_completion(req, 0.5) is None

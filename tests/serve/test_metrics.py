"""Tests for SLO accounting."""

import json
import math

import pytest

from repro.serve import LatencyStats, ServeMetrics


class TestLatencyStats:
    def test_nearest_rank_percentiles(self):
        s = LatencyStats()
        for v in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]:
            s.record(v)
        assert s.percentile(50) == pytest.approx(0.5)
        assert s.percentile(95) == pytest.approx(1.0)
        assert s.percentile(99) == pytest.approx(1.0)
        assert s.percentile(10) == pytest.approx(0.1)

    def test_single_sample(self):
        s = LatencyStats()
        s.record(0.25)
        assert s.percentile(50) == s.percentile(99) == 0.25
        assert s.mean == s.max == 0.25

    def test_empty_series(self):
        s = LatencyStats()
        assert s.percentile(99) == 0.0
        assert s.mean == 0.0 and s.max == 0.0
        assert len(s) == 0

    def test_bad_samples_rejected(self):
        s = LatencyStats()
        with pytest.raises(ValueError):
            s.record(-0.1)
        with pytest.raises(ValueError):
            s.record(float("nan"))

    def test_bad_percentile_rejected(self):
        s = LatencyStats(samples=[0.1])
        with pytest.raises(ValueError):
            s.percentile(0)
        with pytest.raises(ValueError):
            s.percentile(101)


class TestServeMetrics:
    def _loaded(self):
        m = ServeMetrics()
        m.offered = 10
        m.admitted = 8
        m.shed_queue_full = 1
        m.shed_backpressure = 1
        for i in range(8):
            m.record_completion("interactive" if i % 2 else "reporting",
                                0.1 * (i + 1), within_deadline=i < 6)
        m.batches = 4
        m.batch_sizes = [2, 2, 2, 2]
        m.busy_s = 1.5
        m.served_s = 2.0
        return m

    def test_counters_consistent(self):
        m = self._loaded()
        assert m.completed == 8
        assert m.completed_ok == 6
        assert m.missed_deadline == 2
        assert m.shed == 2
        assert m.shed_rate == pytest.approx(0.2)

    def test_derived_rates(self):
        m = self._loaded()
        assert m.goodput_qps == pytest.approx(3.0)
        assert m.utilization == pytest.approx(0.75)
        assert m.mean_batch_size == pytest.approx(2.0)

    def test_empty_run_is_all_zeros(self):
        m = ServeMetrics()
        assert m.goodput_qps == 0.0
        assert m.utilization == 0.0
        assert m.shed_rate == 0.0
        m.check_finite()  # an idle run must not divide by zero

    def test_summary_deterministic_and_json_stable(self):
        a = json.dumps(self._loaded().summary(), sort_keys=True)
        b = json.dumps(self._loaded().summary(), sort_keys=True)
        assert a == b

    def test_summary_has_per_tenant_rows(self):
        s = self._loaded().summary()
        assert s["tenant.interactive.completed"] == 4
        assert s["tenant.reporting.completed"] == 4
        assert s["tenant.interactive.p99_ms"] > 0

    def test_check_finite_catches_nan(self):
        m = self._loaded()
        m.served_s = float("nan")
        with pytest.raises(ValueError, match="not finite"):
            m.check_finite()

    def test_render_mentions_key_metrics(self):
        text = self._loaded().render()
        assert "goodput" in text
        assert "p50/p95/p99" in text
        assert "tenant interactive" in text

    def test_summary_floats_are_rounded(self):
        m = self._loaded()
        m.served_s = 1 / 3
        s = m.summary()
        assert s["served_s"] == round(1 / 3, 9)
        assert all(math.isfinite(v) for v in s.values()
                   if isinstance(v, float))

"""Tests for the admission controller."""

import pytest

from repro.serve import (
    AdmissionController,
    AdmissionDecision,
    BoundedPriorityQueue,
    QueryRequest,
)


def req(req_id, deadline=1.0, arrival=0.0):
    return QueryRequest(req_id=req_id, tenant="t", kind="q6",
                        arrival_s=arrival, priority=1,
                        deadline_s=deadline, elements=1000)


class TestAdmission:
    def test_admits_into_empty_queue(self):
        q = BoundedPriorityQueue(4)
        ac = AdmissionController(q)
        assert ac.offer(req(0), 0.0) is AdmissionDecision.ADMITTED
        assert len(q) == 1

    def test_sheds_when_queue_full(self):
        q = BoundedPriorityQueue(1)
        ac = AdmissionController(q)
        ac.offer(req(0), 0.0)
        assert ac.offer(req(1), 0.0) is AdmissionDecision.SHED_QUEUE_FULL
        assert len(q) == 1

    def test_no_backpressure_before_first_feedback(self):
        # without a service estimate the controller cannot predict waits
        q = BoundedPriorityQueue(64)
        ac = AdmissionController(q)
        for i in range(10):
            assert ac.offer(req(i, deadline=1e-9), 0.0) is \
                AdmissionDecision.ADMITTED

    def test_backpressure_sheds_predicted_misses(self):
        q = BoundedPriorityQueue(64)
        ac = AdmissionController(q)
        for i in range(5):
            ac.offer(req(i, deadline=10.0), 0.0)
        ac.note_service(1, 1.0)  # 1 s per query -> 5 s predicted wait
        assert ac.offer(req(5, deadline=2.0), 0.0) is \
            AdmissionDecision.SHED_BACKPRESSURE
        assert ac.offer(req(6, deadline=9.0), 0.0) is \
            AdmissionDecision.ADMITTED

    def test_slack_scales_the_prediction(self):
        def shed_count(slack):
            q = BoundedPriorityQueue(64)
            ac = AdmissionController(q, slack=slack)
            for i in range(5):
                ac.offer(req(i, deadline=10.0), 0.0)
            ac.note_service(1, 1.0)
            return ac.offer(req(9, deadline=6.0), 0.0)

        assert shed_count(1.0) is AdmissionDecision.ADMITTED  # 5 s < 6 s
        assert shed_count(2.0) is AdmissionDecision.SHED_BACKPRESSURE

    def test_ewma_update(self):
        ac = AdmissionController(BoundedPriorityQueue(4), ewma_alpha=0.5)
        ac.note_service(2, 4.0)  # 2 s/query seeds the estimate
        assert ac.service_est_s == pytest.approx(2.0)
        ac.note_service(1, 4.0)  # 4 s/query observation
        assert ac.service_est_s == pytest.approx(3.0)

    def test_degenerate_feedback_ignored(self):
        ac = AdmissionController(BoundedPriorityQueue(4))
        ac.note_service(0, 1.0)
        ac.note_service(3, -1.0)
        assert ac.service_est_s == 0.0

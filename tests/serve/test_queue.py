"""Tests for the bounded priority/deadline queue."""

import pytest

from repro.errors import SchedulingError
from repro.serve import BoundedPriorityQueue, QueryRequest


def req(req_id, priority=1, deadline=1.0, arrival=0.0):
    return QueryRequest(req_id=req_id, tenant="t", kind="q6",
                        arrival_s=arrival, priority=priority,
                        deadline_s=deadline, elements=1000)


class TestBoundedPriorityQueue:
    def test_priority_order(self):
        q = BoundedPriorityQueue(8)
        q.push(req(0, priority=2))
        q.push(req(1, priority=0))
        q.push(req(2, priority=1))
        assert [q.pop().req_id for _ in range(3)] == [1, 2, 0]

    def test_deadline_breaks_priority_ties(self):
        q = BoundedPriorityQueue(8)
        q.push(req(0, deadline=3.0))
        q.push(req(1, deadline=1.0))
        q.push(req(2, deadline=2.0))
        assert [q.pop().req_id for _ in range(3)] == [1, 2, 0]

    def test_fifo_breaks_remaining_ties(self):
        q = BoundedPriorityQueue(8)
        for i in range(4):
            q.push(req(i))
        assert [q.pop().req_id for _ in range(4)] == [0, 1, 2, 3]

    def test_capacity_bound(self):
        q = BoundedPriorityQueue(2)
        assert q.push(req(0)) and q.push(req(1))
        assert q.full
        assert not q.push(req(2))
        assert len(q) == 2

    def test_pop_empty_returns_none(self):
        q = BoundedPriorityQueue(2)
        assert q.pop() is None
        assert q.peek() is None

    def test_remove_mid_queue(self):
        q = BoundedPriorityQueue(8)
        rs = [req(i) for i in range(3)]
        for r in rs:
            q.push(r)
        q.remove(rs[1])
        assert len(q) == 2
        assert [q.pop().req_id for _ in range(2)] == [0, 2]
        assert q.pop() is None

    def test_remove_frees_capacity(self):
        q = BoundedPriorityQueue(2)
        a, b = req(0), req(1)
        q.push(a)
        q.push(b)
        q.remove(a)
        assert not q.full
        assert q.push(req(2))

    def test_snapshot_is_priority_ordered_and_nondestructive(self):
        q = BoundedPriorityQueue(8)
        q.push(req(0, priority=2))
        q.push(req(1, priority=0))
        snap = q.snapshot()
        assert [r.req_id for r in snap] == [1, 0]
        assert len(q) == 2

    def test_drop_expired(self):
        q = BoundedPriorityQueue(8)
        q.push(req(0, deadline=0.5))
        q.push(req(1, deadline=2.0))
        expired = q.drop_expired(1.0)
        assert [r.req_id for r in expired] == [0]
        assert len(q) == 1
        assert q.pop().req_id == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(SchedulingError):
            BoundedPriorityQueue(0)

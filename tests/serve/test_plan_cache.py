"""Serve-path plan cache: repeat queries hit, metrics stay byte-identical.

The acceptance property: on a repeat-query workload the dispatch cache
serves >= 90% of dispatches from cache, and the served metrics are
byte-identical to a cache-disabled run of the same trace -- the cache is
a pure latency optimization of the serving control plane, never a
behavior change.
"""

import json

from repro.optimizer import PlanCache
from repro.serve import QueryServer, ServeConfig
from repro.serve.arrivals import QueryRequest

FAR = 1e9  # deadline far enough that nothing sheds


def _repeat_trace(n: int, kind: str = "q6", elements: int = 1_000_000,
                  spacing: float = 0.0):
    return [
        QueryRequest(req_id=i, tenant="t", kind=kind,
                     arrival_s=i * spacing, priority=0, deadline_s=FAR,
                     elements=elements)
        for i in range(n)
    ]


def _summary_json(result) -> str:
    return json.dumps(result.metrics.summary(), sort_keys=True)


class TestRepeatWorkloadHitRate:
    def test_isolated_repeat_queries_hit_over_90_percent(self):
        cache = PlanCache()
        cfg = ServeConfig(mode="isolated", plan_cache=cache)
        QueryServer(config=cfg).run(trace=_repeat_trace(40))
        assert cache.hits + cache.misses == 40
        assert cache.hit_rate >= 0.9
        assert cache.misses == 1       # exactly one cold dispatch per kind

    def test_batched_repeat_batches_hit(self):
        cache = PlanCache()
        cfg = ServeConfig(mode="batched", max_batch=8, queue_capacity=256,
                          plan_cache=cache)
        QueryServer(config=cfg).run(trace=_repeat_trace(160))
        assert cache.misses == 1       # 20 identical 8-query batches
        assert cache.hit_rate >= 0.9

    def test_distinct_kinds_key_separately(self):
        cache = PlanCache()
        cfg = ServeConfig(mode="isolated", plan_cache=cache)
        trace = _repeat_trace(10, kind="q6") + [
            QueryRequest(req_id=100 + i, tenant="t", kind="q1",
                         arrival_s=0.0, priority=0, deadline_s=FAR,
                         elements=1_000_000)
            for i in range(10)
        ]
        QueryServer(config=cfg).run(trace=trace)
        assert cache.misses == 2       # one cold dispatch per query kind
        assert cache.hits == 18


class TestCacheIsBehaviorNeutral:
    def test_summary_byte_identical_to_cache_disabled(self):
        trace = _repeat_trace(30, spacing=0.001)
        with_cache = QueryServer(config=ServeConfig(
            mode="isolated", plan_cache=PlanCache())).run(trace=list(trace))
        without = QueryServer(config=ServeConfig(
            mode="isolated")).run(trace=list(trace))
        assert _summary_json(with_cache) == _summary_json(without)

    def test_batched_summary_byte_identical(self):
        trace = _repeat_trace(64, spacing=0.0005)
        with_cache = QueryServer(config=ServeConfig(
            plan_cache=PlanCache())).run(trace=list(trace))
        without = QueryServer(config=ServeConfig()).run(trace=list(trace))
        assert _summary_json(with_cache) == _summary_json(without)

    def test_merged_timeline_safe_to_replay(self):
        """Cached timelines are replayed across dispatches; merging them
        must not mutate the cached copy (frozen events, extend copies)."""
        trace = _repeat_trace(10)
        cfg = ServeConfig(mode="isolated", plan_cache=PlanCache())
        result = QueryServer(config=cfg).run(trace=trace)
        a = result.merged_timeline().makespan
        b = result.merged_timeline().makespan
        assert a == b
        assert len(result.segments) == 10


class TestChaosNeverCached:
    def test_degraded_dispatches_not_served_from_cache(self):
        from repro.faults import FaultPlan
        cache = PlanCache()
        cfg = ServeConfig(mode="isolated", faults=FaultPlan.chaos(3, rate=0.9),
                          plan_cache=cache)
        result = QueryServer(config=cfg).run(trace=_repeat_trace(8))
        assert result.metrics.degraded_batches > 0
        # a degraded dispatch is never cached -- and with chaos on, every
        # batch keys uniquely anyway (reseeded fault plan in the key)
        assert cache.hits == 0

"""End-to-end tests for the serving loop."""

import json

import pytest

from repro.faults import FaultPlan
from repro.serve import (
    ArrivalProcess,
    QueryServer,
    ServeConfig,
    TenantSpec,
)
from repro.simgpu import EventKind
from repro.validate import validate_timeline

#: loose SLOs + deep queue: nothing sheds, both policies complete the whole
#: trace, so policy comparisons are query-for-query
LOOSE_TENANTS = (
    TenantSpec("interactive", mix=(("q6", 0.6), ("sql_scan", 0.4)),
               weight=0.7, priority=0, deadline_s=60.0, elements=1_000_000),
    TenantSpec("reporting", mix=(("q1", 0.6), ("q21", 0.4)),
               weight=0.3, priority=1, deadline_s=60.0, elements=2_000_000),
)

#: tight SLOs + tiny queue: overload, so every shedding path fires
TIGHT_TENANTS = (
    TenantSpec("interactive", mix=(("q6", 1.0),),
               weight=1.0, priority=0, deadline_s=0.05, elements=1_000_000),
)


def loose_trace(qps=80, duration=1.0, seed=5):
    return ArrivalProcess(qps=qps, duration_s=duration,
                          tenants=LOOSE_TENANTS, seed=seed).trace()


def serve(trace, device, **cfg):
    cfg.setdefault("queue_capacity", 4096)
    server = QueryServer(device, ServeConfig(**cfg))
    return server.run(trace=list(trace))


class TestAccounting:
    def test_every_offered_query_gets_one_record(self, device):
        res = serve(loose_trace(), device)
        m = res.metrics
        assert m.offered == len(loose_trace())
        assert len(res.records) == m.offered
        by_status = {}
        for r in res.records:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        assert by_status.get("completed", 0) == m.completed_ok
        assert by_status.get("missed_deadline", 0) == m.missed_deadline
        assert by_status.get("shed_queue_full", 0) == m.shed_queue_full

    def test_no_shed_in_loose_regime(self, device):
        m = serve(loose_trace(), device).metrics
        assert m.shed == 0
        assert m.completed == m.offered
        assert m.completed_ok == m.offered  # 60 s SLO is never missed

    def test_latencies_cover_queueing(self, device):
        res = serve(loose_trace(), device)
        for r in res.records:
            assert r.latency_s is not None
            assert r.latency_s > 0
            assert r.completion_s >= r.request.arrival_s

    def test_metrics_are_finite(self, device):
        serve(loose_trace(), device).metrics.check_finite()


class TestBatchedBeatsIsolated:
    def test_strictly_higher_goodput_on_fixed_trace(self, device):
        # the acceptance criterion: same offered work, shared-scan batching
        # drains it strictly faster than per-query dispatch
        trace = loose_trace()
        bat = serve(trace, device, mode="batched").metrics
        iso = serve(trace, device, mode="isolated").metrics
        assert bat.completed_ok == iso.completed_ok == len(trace)
        assert bat.goodput_qps > iso.goodput_qps
        assert bat.served_s < iso.served_s
        assert bat.mean_batch_size > 1.0
        assert iso.mean_batch_size == pytest.approx(1.0)

    def test_batching_reduces_uploads(self, device):
        trace = loose_trace()
        bat = serve(trace, device, mode="batched")
        iso = serve(trace, device, mode="isolated")
        n_h2d = lambda res: sum(
            len(tl.filter(EventKind.H2D)) for _, tl in res.segments)
        assert n_h2d(bat) < n_h2d(iso)


class TestDeterminism:
    def test_same_seed_byte_identical_summaries(self, device):
        a = serve(loose_trace(seed=9), device).metrics.summary()
        b = serve(loose_trace(seed=9), device).metrics.summary()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_chaos_runs_equally_deterministic(self, device):
        plan = FaultPlan.chaos(7, rate=0.02)
        a = serve(loose_trace(), device, faults=plan).metrics.summary()
        b = serve(loose_trace(), device, faults=plan).metrics.summary()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestShedding:
    def test_overload_sheds_and_survives(self, device):
        trace = ArrivalProcess(qps=400, duration_s=0.5,
                               tenants=TIGHT_TENANTS, seed=1).trace()
        m = serve(trace, device, queue_capacity=4, max_batch=2).metrics
        assert m.shed > 0
        assert m.offered == m.completed + m.shed
        m.check_finite()

    def test_backpressure_path_fires_under_overload(self, device):
        trace = ArrivalProcess(qps=400, duration_s=0.5,
                               tenants=TIGHT_TENANTS, seed=1).trace()
        m = serve(trace, device, queue_capacity=64, max_batch=1).metrics
        assert m.shed_backpressure > 0


class TestFaultAwareServing:
    def test_chaos_batch_degrades_not_the_server(self, device):
        # a rate high enough to exhaust the retry budget in some batch:
        # that batch re-dispatches down the degradation ladder, every
        # query still completes, and the run stays finite
        trace = loose_trace(qps=40, duration=0.5)
        plan = FaultPlan.chaos(3, rate=0.55)
        m = serve(trace, device, faults=plan, check=True).metrics
        assert m.degraded_batches > 0
        assert m.completed == len(trace)
        m.check_finite()

    def test_low_rate_chaos_observed_in_timelines(self, device):
        trace = loose_trace(qps=40, duration=0.5)
        m = serve(trace, device, faults=FaultPlan.chaos(7, rate=0.1),
                  check=True).metrics
        assert m.faults_observed > 0
        assert m.completed == len(trace)

    def test_chaos_only_costs_time(self, device):
        trace = loose_trace()
        clean = serve(trace, device).metrics
        chaotic = serve(trace, device,
                        faults=FaultPlan.chaos(7, rate=0.05)).metrics
        assert chaotic.completed_ok == clean.completed_ok
        assert chaotic.served_s >= clean.served_s


class TestTimelines:
    def test_every_batch_timeline_sanitizes(self, device):
        res = serve(loose_trace(), device, check=True)
        for _, tl in res.segments:
            validate_timeline(tl, device).raise_if_failed()

    def test_merged_timeline_spans_the_run(self, device):
        res = serve(loose_trace(), device)
        merged = res.merged_timeline()
        assert len(merged.events) == sum(
            len(tl.events) for _, tl in res.segments)
        assert merged.end_time == pytest.approx(
            max(t0 + tl.end_time for t0, tl in res.segments))


class TestClosedLoop:
    def test_closed_loop_clients_reissue(self, device):
        tenants = (TenantSpec("loop", mix=(("q6", 1.0),), deadline_s=60.0,
                              elements=500_000, closed_loop_clients=2,
                              think_s=0.01),)
        proc = ArrivalProcess(qps=1, duration_s=0.5, tenants=tenants, seed=0)
        res = QueryServer(device, ServeConfig(queue_capacity=4096)).run(
            arrivals=proc)
        # each client keeps issuing after completions, so far more than the
        # two first arrivals get served
        assert res.metrics.completed > 2
        res.metrics.check_finite()


class TestConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(mode="turbo")

    def test_trace_or_arrivals_required(self, device):
        with pytest.raises(ValueError):
            QueryServer(device, ServeConfig()).run()

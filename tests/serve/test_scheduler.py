"""Tests for memory-aware batch formation."""

import pytest

from repro.serve import (
    BatchScheduler,
    BoundedPriorityQueue,
    QueryRequest,
    batch_key,
    request_footprint,
)
from repro.simgpu import DeviceSpec


def req(req_id, kind="q6", elements=1_000_000, priority=1, deadline=10.0):
    return QueryRequest(req_id=req_id, tenant="t", kind=kind, arrival_s=0.0,
                        priority=priority, deadline_s=deadline,
                        elements=elements)


def fill(*reqs, capacity=64):
    q = BoundedPriorityQueue(capacity)
    for r in reqs:
        assert q.push(r)
    return q


class TestBatchKey:
    def test_same_table_same_scale_share_a_key(self):
        # q6 and both SQL shapes read lineitem at 16 B/row
        assert batch_key(req(0, "q6")) == batch_key(req(1, "sql_scan"))
        assert batch_key(req(0, "q6")) == batch_key(req(1, "sql_agg"))

    def test_row_width_splits_the_key(self):
        # Q21 declares lineitem at 48 B/row; merging it with Q6's 16 B/row
        # view would share one source node between incompatible widths
        assert batch_key(req(0, "q21")) != batch_key(req(1, "q6"))

    def test_cardinality_splits_the_key(self):
        assert batch_key(req(0, elements=1_000_000)) != \
            batch_key(req(1, elements=2_000_000))

    def test_q1_driver_is_a_lineitem_column(self):
        table, width, rows = batch_key(req(0, "q1"))
        assert width == 4
        assert rows == 1_000_000

    def test_footprint_positive_and_scales_with_width(self):
        assert request_footprint(req(0, "q6")) > 0
        assert (request_footprint(req(0, "q21"))
                > request_footprint(req(1, "q6")))


class TestBatchScheduler:
    def test_groups_same_key_requests(self, device):
        sched = BatchScheduler(device)
        q = fill(req(0), req(1, "sql_scan"), req(2, "sql_agg"))
        batch = sched.next_batch(q, 0.0)
        assert {r.req_id for r in batch} == {0, 1, 2}
        assert len(q) == 0

    def test_mixed_keys_stay_separate(self, device):
        sched = BatchScheduler(device)
        q = fill(req(0, "q6", priority=0), req(1, "q21"), req(2, "q6"))
        first = sched.next_batch(q, 0.0)
        assert {r.req_id for r in first} == {0, 2}
        second = sched.next_batch(q, 0.0)
        assert [r.req_id for r in second] == [1]

    def test_max_batch_respected(self, device):
        sched = BatchScheduler(device, max_batch=2)
        q = fill(*[req(i) for i in range(5)])
        assert len(sched.next_batch(q, 0.0)) == 2
        assert len(q) == 3

    def test_batching_off_gives_singletons(self, device):
        sched = BatchScheduler(device, batching=False)
        q = fill(req(0), req(1))
        assert [r.req_id for r in sched.next_batch(q, 0.0)] == [0]
        assert len(q) == 1

    def test_empty_queue_gives_empty_batch(self, device):
        sched = BatchScheduler(device)
        assert sched.next_batch(BoundedPriorityQueue(4), 0.0) == []

    def test_memory_budget_caps_the_batch(self, device):
        # budget just over one query's footprint: the head fits, no
        # co-scheduled query's intermediates do
        foot = request_footprint(req(0))
        safety = foot * 1.05 / device.global_mem_bytes
        sched = BatchScheduler(device, memory_safety=safety)
        q = fill(*[req(i) for i in range(4)])
        assert len(sched.next_batch(q, 0.0)) == 1
        assert len(q) == 3

    def test_budget_skips_but_keeps_candidates_queued(self, device):
        foot = request_footprint(req(0))
        safety = foot * 1.05 / device.global_mem_bytes
        sched = BatchScheduler(device, memory_safety=safety)
        q = fill(req(0), req(1))
        sched.next_batch(q, 0.0)
        assert q.pop().req_id == 1  # skipped, not lost

    def test_head_always_dispatches_even_over_budget(self, device):
        # a query too big for the budget must still run (alone), not wedge
        sched = BatchScheduler(device, memory_safety=1e-12)
        q = fill(req(0), req(1))
        assert [r.req_id for r in sched.next_batch(q, 0.0)] == [0]

"""Multi-device serving: batches route to the least-loaded idle lane,
per-device counters appear in the summary, more devices drain the same
trace faster, and the runs stay byte-deterministic."""

import json

import pytest

from repro.serve import ArrivalProcess, QueryServer, ServeConfig, TenantSpec
from repro.validate import validate_timeline

LOOSE_TENANTS = (
    TenantSpec("interactive", mix=(("q6", 0.6), ("sql_scan", 0.4)),
               weight=0.7, priority=0, deadline_s=60.0, elements=1_000_000),
    TenantSpec("reporting", mix=(("q1", 0.6), ("q21", 0.4)),
               weight=0.3, priority=1, deadline_s=60.0, elements=2_000_000),
)


def loose_trace(qps=80, duration=1.0, seed=5):
    return ArrivalProcess(qps=qps, duration_s=duration,
                          tenants=LOOSE_TENANTS, seed=seed).trace()


def serve(trace, device, **cfg):
    cfg.setdefault("queue_capacity", 4096)
    server = QueryServer(device, ServeConfig(**cfg))
    return server.run(trace=list(trace))


class TestConfig:
    def test_rejects_zero_devices(self):
        with pytest.raises(ValueError):
            ServeConfig(devices=0)

    def test_single_device_is_the_default(self):
        assert ServeConfig().devices == 1


class TestRouting:
    def test_every_segment_tagged_with_a_valid_lane(self, device):
        res = serve(loose_trace(), device, devices=3)
        assert len(res.segment_devices) == len(res.segments)
        assert set(res.segment_devices) <= {0, 1, 2}

    def test_all_lanes_get_work(self, device):
        res = serve(loose_trace(), device, devices=4)
        m = res.metrics
        assert sorted(m.per_device) == [0, 1, 2, 3]
        assert all(lane.batches > 0 for lane in m.per_device.values())
        assert sum(lane.batches for lane in m.per_device.values()) == m.batches
        assert sum(lane.queries
                   for lane in m.per_device.values()) == m.admitted

    def test_single_device_run_has_no_lane_metrics(self, device):
        m = serve(loose_trace(), device).metrics
        assert m.per_device == {}

    def test_lane_timelines_validate(self, device):
        res = serve(loose_trace(), device, devices=2, check=True)
        for dev_id, tl in res.device_timelines().items():
            assert validate_timeline(tl).ok, dev_id


class TestScaling:
    def test_more_devices_drain_faster(self, device):
        served = {d: serve(loose_trace(), device, devices=d).metrics.served_s
                  for d in (1, 2, 4)}
        assert served[2] < served[1]
        assert served[4] < served[2]

    def test_no_queries_lost_to_parallelism(self, device):
        trace = loose_trace()
        for devices in (1, 2, 4):
            m = serve(trace, device, devices=devices).metrics
            assert m.completed == m.offered
            assert m.shed == 0


class TestDeterminism:
    def test_same_seed_same_summary_bytes(self, device):
        def one():
            m = serve(loose_trace(seed=11), device, devices=4).metrics
            return json.dumps(m.summary(), sort_keys=True)
        assert one() == one()

    def test_summary_has_per_device_keys(self, device):
        s = serve(loose_trace(), device, devices=2).metrics.summary()
        for dev in (0, 1):
            for field in ("batches", "queries", "busy_s",
                          "dispatched_bytes", "utilization"):
                assert f"device.{dev}.{field}" in s

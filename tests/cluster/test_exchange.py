"""The exchange operator's byte-identity invariants: whole key-groups per
destination, original row order restored through the shuffle, the
group-sorted merge reproducing the single-device aggregate order, the
chunk-streamed shuffle matching the materialized one bit-for-bit, and the
tree merges matching their flat counterparts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterConfig,
    ClusterExecutor,
    Partitioner,
    PartitionScheme,
    combine_partial_states,
    merge_concat,
    merge_concat_tree,
    merge_group_sorted,
    merge_group_sorted_tree,
    repartition,
    repartition_chunked,
)
from repro.ra import Relation
from repro.ra.arithmetic import AggSpec
from repro.ra.rows import pack_rows


def buffer_rel(keys, with_rowid=True):
    keys = np.asarray(keys, dtype=np.int64)
    cols = {"g": keys, "x": keys * 3 + 1}
    if with_rowid:
        cols["rowid"] = np.arange(keys.size, dtype=np.int64)
    return Relation(cols, key="g")


keys_st = st.lists(st.integers(min_value=0, max_value=50),
                   min_size=1, max_size=200)


class TestRepartition:
    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_dest=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=100))
    def test_whole_key_groups_per_destination(self, keys, num_dest, seed):
        parts = repartition([buffer_rel(keys)], ("g",), num_dest, seed)
        owner = {}
        for dest, part in enumerate(parts):
            for key in part.column("g").tolist():
                assert owner.setdefault(key, dest) == dest

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_dest=st.integers(min_value=1, max_value=6))
    def test_conserves_rows_exactly(self, keys, num_dest):
        rel = buffer_rel(keys)
        parts = repartition([rel], ("g",), num_dest)
        assert sum(p.num_rows for p in parts) == rel.num_rows
        merged = merge_concat(parts)
        for f in rel.fields:
            assert np.array_equal(merged.column(f), rel.column(f)), f

    def test_destination_rows_keep_original_order(self):
        # shard inputs arrive interleaved; rowid restoration must put
        # each destination's rows back in global order before splitting
        rel = buffer_rel([5, 1, 5, 1, 5, 1])
        shards, idx = Partitioner(2, PartitionScheme.HASH).split(rel, "g")
        parts = repartition(shards, ("g",), 3)
        for part in parts:
            rowids = part.column("rowid")
            assert np.array_equal(rowids, np.sort(rowids))


class TestMerge:
    def test_merge_concat_restores_row_order(self):
        rel = buffer_rel(np.arange(40) % 7)
        shards, idx = Partitioner(4, PartitionScheme.HASH).split(rel, "g")
        merged = merge_concat(shards)
        for f in rel.fields:
            assert np.array_equal(merged.column(f), rel.column(f)), f

    def test_merge_concat_without_order_field_keeps_shard_order(self):
        a = buffer_rel([1, 1], with_rowid=False)
        b = buffer_rel([2], with_rowid=False)
        merged = merge_concat([a, b])
        assert merged.column("g").tolist() == [1, 1, 2]

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st)
    def test_group_sorted_merge_matches_unique_order(self, keys):
        """Disjoint per-destination groups concat back into exactly the
        packed-key-sorted order np.unique gives a single-device
        aggregation."""
        per_group = {}
        for k in keys:
            per_group.setdefault(k, 0)
            per_group[k] += 1
        agg = Relation({"g": np.asarray(sorted(per_group), dtype=np.int64),
                        "n": np.asarray([per_group[k]
                                         for k in sorted(per_group)],
                                        dtype=np.int64)})
        # split the aggregate's groups across destinations by hash
        parts = repartition([Relation({
            "g": agg.column("g"), "n": agg.column("n")})], ("g",), 3)
        merged = merge_group_sorted(list(parts), ["g"])
        packed = pack_rows(merged, ["g"])
        assert np.array_equal(packed, np.sort(packed))
        for f in agg.fields:
            assert np.array_equal(merged.column(f), agg.column(f)), f


def assert_relations_equal(got, want, ctx=""):
    assert got.fields == want.fields, ctx
    for f in want.fields:
        a, b = got.column(f), want.column(f)
        assert a.dtype == b.dtype, (ctx, f)
        assert np.array_equal(a, b), (ctx, f)


class TestChunkedRepartition:
    """The pipelined (chunk-streamed) exchange must be byte-identical to
    the materialized shuffle for every partition scheme and seed --
    including tiny chunk sizes that force many chunks per destination."""

    @settings(max_examples=60, deadline=None)
    @given(keys=keys_st,
           num_dest=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=100),
           chunk_rows=st.integers(min_value=1, max_value=64))
    def test_matches_materialized(self, keys, num_dest, seed, chunk_rows):
        rel = buffer_rel(keys)
        want = repartition([rel], ("g",), num_dest, seed)
        got = repartition_chunked([rel], ("g",), num_dest, seed,
                                  chunk_rows=chunk_rows)
        assert len(got) == len(want)
        for d, (g, w) in enumerate(zip(got, want)):
            assert_relations_equal(g, w, ctx=f"dest {d}")

    @pytest.mark.parametrize("scheme", ["hash", "range", "rr"])
    @pytest.mark.parametrize("seed", range(20))
    def test_all_schemes_twenty_seeds(self, scheme, seed):
        """Shard through the real partitioner first, then exchange: the
        streamed path must agree with the materialized path however the
        rows arrived on the shards."""
        rng = np.random.default_rng(seed)
        rel = buffer_rel(rng.integers(0, 30, size=300))
        shards, _ = Partitioner(
            3, PartitionScheme(scheme), seed).split(rel, "g")
        want = repartition(shards, ("g",), 4, seed)
        got = repartition_chunked(shards, ("g",), 4, seed, chunk_rows=37)
        for d, (g, w) in enumerate(zip(got, want)):
            assert_relations_equal(g, w, ctx=f"{scheme}/{seed}/dest{d}")

    def test_empty_input(self):
        got = repartition_chunked([buffer_rel([])], ("g",), 3)
        assert all(p.num_rows == 0 for p in got)


class TestTreeMerges:
    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_parts=st.integers(min_value=1, max_value=7))
    def test_concat_tree_equals_flat(self, keys, num_parts):
        rel = buffer_rel(keys)
        shards, _ = Partitioner(num_parts, PartitionScheme.ROUND_ROBIN).split(rel)
        assert_relations_equal(merge_concat_tree(shards),
                               merge_concat(shards))

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_parts=st.integers(min_value=1, max_value=7),
           seed=st.integers(min_value=0, max_value=20))
    def test_group_sorted_tree_equals_flat(self, keys, num_parts, seed):
        parts = repartition([buffer_rel(keys)], ("g",), num_parts, seed)
        assert_relations_equal(merge_group_sorted_tree(list(parts), ["g"]),
                               merge_group_sorted(list(parts), ["g"]))

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_parts=st.integers(min_value=1, max_value=7))
    def test_count_states_tree_combine_is_exact(self, keys, num_parts):
        """Partial count states combined up a pairwise tree must equal
        the single-shot aggregate: integer sums re-associate freely."""
        from repro.ra.arithmetic import aggregate
        rel = buffer_rel(keys, with_rowid=False)
        aggs = {"n": AggSpec("count", "x")}
        want = aggregate(rel, ["g"], aggs)
        shards, _ = Partitioner(num_parts, PartitionScheme.ROUND_ROBIN).split(rel)
        states = [aggregate(s, ["g"], aggs) for s in shards
                  if s.num_rows or num_parts == 1]
        if not states:
            states = [aggregate(shards[0], ["g"], aggs)]
        combined = combine_partial_states(
            states, ["g"], {"n": AggSpec("sum", "n")})
        assert_relations_equal(combined, want)


class TestChunkedExchangeEndToEnd:
    """The full cluster data path with the chunk-streamed exchange must
    stay byte-identical to the unsharded interpreter across schemes and
    seeds (the executor now routes every exchange through
    repartition_chunked)."""

    @pytest.mark.parametrize("scheme", ["hash", "range", "rr"])
    @pytest.mark.parametrize("seed", range(7))
    def test_q1_all_schemes_many_seeds(self, scheme, seed):
        from repro.plans import evaluate_sinks
        from repro.tpch import TpchConfig, build_q1_plan, generate, \
            q1_column_relations
        data = generate(TpchConfig(scale_factor=0.002, seed=seed))
        sources = q1_column_relations(data.lineitem)
        plan = build_q1_plan()
        want = evaluate_sinks(plan, sources)
        cx = ClusterExecutor(config=ClusterConfig(
            num_devices=3, scheme=scheme, seed=seed))
        got = cx.functional(plan, sources)
        assert set(got) == set(want)
        for name in want:
            assert_relations_equal(got[name], want[name], ctx=name)

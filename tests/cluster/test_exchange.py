"""The exchange operator's byte-identity invariants: whole key-groups per
destination, original row order restored through the shuffle, and the
group-sorted merge reproducing the single-device aggregate order."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    Partitioner,
    PartitionScheme,
    merge_concat,
    merge_group_sorted,
    repartition,
)
from repro.ra import Relation
from repro.ra.rows import pack_rows


def buffer_rel(keys, with_rowid=True):
    keys = np.asarray(keys, dtype=np.int64)
    cols = {"g": keys, "x": keys * 3 + 1}
    if with_rowid:
        cols["rowid"] = np.arange(keys.size, dtype=np.int64)
    return Relation(cols, key="g")


keys_st = st.lists(st.integers(min_value=0, max_value=50),
                   min_size=1, max_size=200)


class TestRepartition:
    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_dest=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=100))
    def test_whole_key_groups_per_destination(self, keys, num_dest, seed):
        parts = repartition([buffer_rel(keys)], ("g",), num_dest, seed)
        owner = {}
        for dest, part in enumerate(parts):
            for key in part.column("g").tolist():
                assert owner.setdefault(key, dest) == dest

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_dest=st.integers(min_value=1, max_value=6))
    def test_conserves_rows_exactly(self, keys, num_dest):
        rel = buffer_rel(keys)
        parts = repartition([rel], ("g",), num_dest)
        assert sum(p.num_rows for p in parts) == rel.num_rows
        merged = merge_concat(parts)
        for f in rel.fields:
            assert np.array_equal(merged.column(f), rel.column(f)), f

    def test_destination_rows_keep_original_order(self):
        # shard inputs arrive interleaved; rowid restoration must put
        # each destination's rows back in global order before splitting
        rel = buffer_rel([5, 1, 5, 1, 5, 1])
        shards, idx = Partitioner(2, PartitionScheme.HASH).split(rel, "g")
        parts = repartition(shards, ("g",), 3)
        for part in parts:
            rowids = part.column("rowid")
            assert np.array_equal(rowids, np.sort(rowids))


class TestMerge:
    def test_merge_concat_restores_row_order(self):
        rel = buffer_rel(np.arange(40) % 7)
        shards, idx = Partitioner(4, PartitionScheme.HASH).split(rel, "g")
        merged = merge_concat(shards)
        for f in rel.fields:
            assert np.array_equal(merged.column(f), rel.column(f)), f

    def test_merge_concat_without_order_field_keeps_shard_order(self):
        a = buffer_rel([1, 1], with_rowid=False)
        b = buffer_rel([2], with_rowid=False)
        merged = merge_concat([a, b])
        assert merged.column("g").tolist() == [1, 1, 2]

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st)
    def test_group_sorted_merge_matches_unique_order(self, keys):
        """Disjoint per-destination groups concat back into exactly the
        packed-key-sorted order np.unique gives a single-device
        aggregation."""
        per_group = {}
        for k in keys:
            per_group.setdefault(k, 0)
            per_group[k] += 1
        agg = Relation({"g": np.asarray(sorted(per_group), dtype=np.int64),
                        "n": np.asarray([per_group[k]
                                         for k in sorted(per_group)],
                                        dtype=np.int64)})
        # split the aggregate's groups across destinations by hash
        parts = repartition([Relation({
            "g": agg.column("g"), "n": agg.column("n")})], ("g",), 3)
        merged = merge_group_sorted(list(parts), ["g"])
        packed = pack_rows(merged, ["g"])
        assert np.array_equal(packed, np.sort(packed))
        for f in agg.fields:
            assert np.array_equal(merged.column(f), agg.column(f)), f

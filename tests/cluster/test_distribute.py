"""The plan-level distribution rewrite on the paper's queries: where the
local/global frontier lands, which sources replicate, which suffix mode
each query takes, and that the rewrite is deterministic."""

import pytest

from repro.errors import PlanError
from repro.plans import Plan
from repro.plans.distribute import distribute_plan
from repro.plans.plan import OpType
from repro.ra import Field
from repro.tpch import (
    build_q1_plan,
    build_q21_plan,
    q1_source_rows,
    q21_source_rows,
)

N = 2_000_000


def q1_dist(num_shards=4, **kw):
    return distribute_plan(build_q1_plan(), q1_source_rows(N),
                           num_shards, **kw)


def q21_dist(num_shards=4, **kw):
    rows = q21_source_rows(N, N // 4, max(1, N // 600))
    return distribute_plan(build_q21_plan(), rows, num_shards, **kw)


class TestQ1:
    def test_takes_exchange_path_at_scale(self):
        dist = q1_dist()
        assert dist.suffix_mode == "exchange"
        assert dist.exchange is not None
        # whole groups must land on one destination: the exchange key is
        # exactly the final aggregate's group-by
        assert dist.exchange.key == ("returnflag", "linestatus")
        assert dist.exchange.est_bytes > 0
        assert len(dist.frontier) == 1
        assert dist.exchange.buffer == dist.frontier[0]

    def test_column_tables_positionally_co_partitioned(self):
        dist = q1_dist()
        assert dist.partition_key is None
        assert all(s.kind == "partitioned" and s.key is None
                   for s in dist.sources)

    def test_small_input_falls_back_to_host_suffix(self):
        dist = distribute_plan(build_q1_plan(), q1_source_rows(10_000), 4)
        assert dist.suffix_mode == "host"
        assert dist.exchange is None

    def test_driver_shards_balanced(self):
        dist = q1_dist(num_shards=3)
        assert sum(dist.driver_shard_rows) == N
        assert max(dist.driver_shard_rows) - min(dist.driver_shard_rows) <= 1

    def test_subplans_validate(self):
        dist = q1_dist()
        local, suffix = dist.local_plan(), dist.suffix_plan()
        local.validate()
        suffix.validate()
        # the frontier buffer is the bridge: a non-source sink of the
        # local plan and a SOURCE of the suffix plan, under the same name
        fname = dist.frontier[0]
        assert fname in {n.name for n in local.sinks()}
        assert fname in {n.name for n in suffix.sources()}


class TestQ21:
    def test_takes_host_suffix(self):
        dist = q21_dist()
        assert dist.suffix_mode == "host"
        assert dist.frontier == ("anti_not_exists_l3",)
        assert dist.suffix_sources == ()

    def test_partitioned_on_orderkey_with_broadcast_builds(self):
        dist = q21_dist()
        assert dist.partition_key == ("orderkey",)
        by_name = {s.name: s for s in dist.sources}
        assert by_name["lineitem"].key == ("orderkey",)
        assert by_name["orders"].key == ("orderkey",)
        assert by_name["supplier"].kind == "replicated"
        assert by_name["nation"].kind == "replicated"

    def test_local_plan_carries_the_joins(self):
        dist = q21_dist()
        local = dist.local_plan()
        ops = {n.op for n in local.nodes}
        assert OpType.SEMI_JOIN in ops
        assert OpType.ANTI_JOIN in ops
        # the per-orderkey aggregates stay shard-local (orderkey is the
        # partition key); only the final name-grouped count and its sort
        # go global
        assert dist.global_names == {"agg_numwait", "sort_numwait"}


class TestPreAggregation:
    def test_q1_lowers_timing_only_preagg(self):
        pre = q1_dist().preagg
        assert pre is not None
        assert pre.agg == "agg_pricing"
        assert pre.group_by == ("returnflag", "linestatus")
        assert not pre.exact          # float sums: timing-only lowering
        assert pre.est_groups == 6
        assert pre.state_block_nbytes == 6 * pre.state_row_nbytes
        assert "sort_group" in pre.lowered

    def test_q21_lowers_exact_preagg(self):
        pre = q21_dist().preagg
        assert pre is not None
        assert pre.exact              # count: bit-exact combine
        assert pre.group_by == ("suppkey",)

    def test_preagg_false_disables_lowering(self):
        assert q1_dist(preagg=False).preagg is None
        assert q21_dist(preagg=False).preagg is None

    def test_merge_defaults_to_tree_and_overrides(self):
        assert q1_dist().merge == "tree"
        assert q1_dist(merge="flat").merge == "flat"

    def test_preagg_subplans_validate(self):
        dist = q1_dist()
        pre, comb = dist.preagg_plan(), dist.combine_plan()
        pre.validate()
        comb.validate()
        partial = f"{dist.preagg.agg}.partial"
        assert partial in {n.name for n in pre.sinks()}
        assert partial in {n.name for n in comb.sources()}


class TestDeterminismAndErrors:
    @pytest.mark.parametrize("make", [q1_dist, q21_dist])
    def test_rewrite_is_deterministic(self, make):
        a, b = make(), make()
        assert a.driver == b.driver
        assert a.partition_key == b.partition_key
        assert a.suffix_mode == b.suffix_mode
        assert a.frontier == b.frontier
        assert a.local_names == b.local_names
        assert a.driver_shard_rows == b.driver_shard_rows
        assert a.exchange == b.exchange
        assert a.notes == b.notes

    def test_name_carries_shard_count(self):
        assert q1_dist(num_shards=4).name.endswith("@x4")

    def test_rejects_bad_shard_count(self):
        with pytest.raises(PlanError):
            q1_dist(num_shards=0)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(PlanError):
            q1_dist(scheme="modulo")

    def test_rejects_sourceless_plan(self):
        with pytest.raises(PlanError):
            distribute_plan(Plan(name="empty"), {}, 4)

    def test_single_select_is_fully_local(self):
        plan = Plan(name="sel")
        src = plan.source("t", row_nbytes=4)
        plan.select(src, Field("v") < 10, selectivity=0.5)
        dist = distribute_plan(plan, {"t": 1_000_000}, 4)
        assert dist.suffix_mode == "none"
        assert dist.global_names == frozenset()

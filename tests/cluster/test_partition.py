"""Partitioner property tests: every scheme's split must be an exact
cover (each row on exactly one shard), restore() must invert it
byte-for-byte, keyed splits must co-partition across tables, and shard
assignments must be pure functions of (scheme, num_shards, seed)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    Partitioner,
    PartitionScheme,
    concat,
    even_counts,
    hash_shard,
    parse_scheme,
    range_boundaries,
    range_shard,
    skew,
)
from repro.ra import Relation

SCHEMES = list(PartitionScheme)


def rel_of(keys, values=None):
    keys = np.asarray(keys, dtype=np.int64)
    cols = {"k": keys,
            "v": np.asarray(values, dtype=np.int64)
            if values is not None
            else np.arange(keys.size, dtype=np.int64)}
    return Relation(cols, key="k")


keys_st = st.lists(st.integers(min_value=0, max_value=10**6),
                   min_size=0, max_size=200)
shards_st = st.integers(min_value=1, max_value=8)
seeds_st = st.integers(min_value=0, max_value=2**31 - 1)


class TestExactCover:
    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_shards=shards_st, seed=seeds_st,
           scheme=st.sampled_from(SCHEMES))
    def test_positional_indices_partition_rows(self, keys, num_shards,
                                               seed, scheme):
        part = Partitioner(num_shards, scheme, seed)
        idx = part.indices(part.positional_ids(len(keys)))
        assert len(idx) == num_shards
        merged = np.concatenate(idx) if idx else np.zeros(0, dtype=np.int64)
        assert sorted(merged.tolist()) == list(range(len(keys)))

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_st, num_shards=shards_st, seed=seeds_st,
           scheme=st.sampled_from(SCHEMES))
    def test_keyed_split_is_exact_cover(self, keys, num_shards, seed,
                                        scheme):
        rel = rel_of(keys)
        part = Partitioner(num_shards, scheme, seed)
        shards, idx = part.split(rel, key="k")
        assert sum(s.num_rows for s in shards) == rel.num_rows
        merged = (np.concatenate(idx) if idx
                  else np.zeros(0, dtype=np.int64))
        assert sorted(merged.tolist()) == list(range(rel.num_rows))


class TestRestore:
    @settings(max_examples=40, deadline=None)
    @given(keys=st.lists(st.integers(min_value=0, max_value=10**6),
                         min_size=1, max_size=200),
           num_shards=shards_st, seed=seeds_st,
           scheme=st.sampled_from(SCHEMES))
    def test_restore_inverts_keyed_split(self, keys, num_shards, seed,
                                         scheme):
        rel = rel_of(keys)
        part = Partitioner(num_shards, scheme, seed)
        shards, idx = part.split(rel, key="k")
        back = Partitioner.restore(shards, idx)
        for f in rel.fields:
            assert np.array_equal(back.column(f), rel.column(f)), f

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=300),
           num_shards=shards_st, seed=seeds_st,
           scheme=st.sampled_from(SCHEMES))
    def test_restore_inverts_positional_split(self, n, num_shards, seed,
                                              scheme):
        rel = rel_of(np.arange(n) * 7 % 13, values=np.arange(n) ** 2)
        part = Partitioner(num_shards, scheme, seed)
        shards, idx = part.split(rel)
        back = Partitioner.restore(shards, idx)
        for f in rel.fields:
            assert np.array_equal(back.column(f), rel.column(f)), f


class TestCoPartitioning:
    @settings(max_examples=40, deadline=None)
    @given(keys=st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=1, max_size=200),
           num_shards=shards_st, seed=seeds_st,
           scheme=st.sampled_from(SCHEMES))
    def test_equal_keys_share_a_shard_across_tables(self, keys, num_shards,
                                                    seed, scheme):
        """The co-partitioning guarantee: the same key value lands on the
        same shard no matter which table (or row position) it sits in."""
        part = Partitioner(num_shards, scheme, seed)
        left = rel_of(keys)
        right = rel_of(list(reversed(keys)) + [keys[0]])
        boundaries = None
        if scheme is PartitionScheme.RANGE:
            boundaries = range_boundaries(left.column("k"), num_shards)
        owner = {}
        for rel in (left, right):
            ids = part.key_ids(rel.column("k"), boundaries)
            for key, shard in zip(rel.column("k").tolist(), ids.tolist()):
                assert owner.setdefault(key, shard) == shard

    def test_rr_keyed_split_falls_back_to_hash(self):
        part = Partitioner(4, PartitionScheme.ROUND_ROBIN, seed=3)
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(part.key_ids(keys), hash_shard(keys, 4, 3))


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(keys=keys_st, num_shards=shards_st, seed=seeds_st,
           scheme=st.sampled_from(SCHEMES))
    def test_split_and_skew_are_pure_functions_of_seed(self, keys,
                                                       num_shards, seed,
                                                       scheme):
        rel = rel_of(keys)
        a = Partitioner(num_shards, scheme, seed)
        b = Partitioner(num_shards, scheme, seed)
        sa, ia = a.split(rel, key="k")
        sb, ib = b.split(rel, key="k")
        counts_a = [s.num_rows for s in sa]
        assert counts_a == [s.num_rows for s in sb]
        for x, y in zip(ia, ib):
            assert np.array_equal(x, y)
        assert skew(counts_a) == skew([s.num_rows for s in sb])

    def test_different_seeds_move_keys(self):
        keys = np.arange(1000, dtype=np.int64)
        a = hash_shard(keys, 4, seed=0)
        b = hash_shard(keys, 4, seed=1)
        assert not np.array_equal(a, b)


class TestHelpers:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=0, max_value=10**6),
           num_shards=shards_st)
    def test_even_counts_balanced_cover(self, n, num_shards):
        counts = even_counts(n, num_shards)
        assert sum(counts) == n
        assert max(counts) - min(counts) <= 1

    def test_range_shard_monotone(self):
        keys = np.asarray([1, 5, 9, 42, 100])
        bounds = range_boundaries(keys, 3)
        ids = range_shard(keys, bounds)
        assert np.array_equal(ids, np.sort(ids))
        assert ids.max() < 3

    def test_skew_values(self):
        assert skew([10, 10, 10, 10]) == 1.0
        assert skew([30, 10, 10, 10]) == pytest.approx(2.0)
        assert skew([]) == 0.0
        assert skew([0, 0]) == 0.0

    def test_parse_scheme(self):
        assert parse_scheme("hash") is PartitionScheme.HASH
        assert parse_scheme("range") is PartitionScheme.RANGE
        assert parse_scheme("rr") is PartitionScheme.ROUND_ROBIN
        with pytest.raises(ValueError):
            parse_scheme("modulo")

    def test_num_shards_validated(self):
        with pytest.raises(ValueError):
            Partitioner(0)

    def test_concat_requires_shards(self):
        with pytest.raises(ValueError):
            concat([])

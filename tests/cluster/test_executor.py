"""ClusterExecutor end-to-end: the functional path must be byte-identical
to the single-device interpreter on TPC-H Q1 and Q21 under every
partition scheme, the timing path must actually scale (4 devices strictly
beat 1 on both queries), summaries must be byte-stable across reruns, and
device loss must recover without changing anything."""

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterExecutor,
    single_device_makespan,
)
from repro.faults import FaultPlan
from repro.plans import evaluate_sinks
from repro.tpch import (
    TpchConfig,
    build_q1_plan,
    build_q21_plan,
    generate,
    q1_column_relations,
    q1_source_rows,
    q21_source_rows,
)

N = 2_000_000
SCHEMES = ("hash", "range", "rr")


def q1_rows():
    return q1_source_rows(N)


def q21_rows():
    return q21_source_rows(N, N // 4, max(1, N // 600))


@pytest.fixture(scope="module")
def tpch_data():
    return generate(TpchConfig(scale_factor=0.01))


@pytest.fixture(scope="module")
def q1_sources(tpch_data):
    return q1_column_relations(tpch_data.lineitem)


@pytest.fixture(scope="module")
def q21_sources(tpch_data):
    return {"lineitem": tpch_data.lineitem, "orders": tpch_data.orders,
            "supplier": tpch_data.supplier, "nation": tpch_data.nation}


def assert_bytes_identical(got, want):
    assert set(got) == set(want)
    for name in want:
        g, w = got[name], want[name]
        assert g.fields == w.fields, name
        for f in w.fields:
            a, b = g.column(f), w.column(f)
            assert a.dtype == b.dtype, (name, f)
            assert np.array_equal(a, b), (name, f)


def kill_device(idx, phase=""):
    site = f"device.{idx}{phase}"
    return FaultPlan(seed=0, site_rates={site: 1.0}, budget=1)


class TestFunctionalByteIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_q1(self, q1_sources, scheme):
        plan = build_q1_plan()
        want = evaluate_sinks(plan, q1_sources)
        cx = ClusterExecutor(config=ClusterConfig(
            num_devices=4, scheme=scheme))
        assert_bytes_identical(cx.functional(plan, q1_sources), want)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_q21(self, q21_sources, scheme):
        plan = build_q21_plan()
        want = evaluate_sinks(plan, q21_sources)
        cx = ClusterExecutor(config=ClusterConfig(
            num_devices=4, scheme=scheme))
        assert_bytes_identical(cx.functional(plan, q21_sources), want)

    @pytest.mark.parametrize("devices", [1, 2, 3, 8])
    def test_q21_any_cluster_size(self, q21_sources, devices):
        plan = build_q21_plan()
        want = evaluate_sinks(plan, q21_sources)
        cx = ClusterExecutor(config=ClusterConfig(num_devices=devices))
        assert_bytes_identical(cx.functional(plan, q21_sources), want)

    def test_q1_under_device_loss(self, q1_sources):
        """The data path is loss-agnostic: a chaos plan that kills a
        device must not change a byte of the merged result."""
        plan = build_q1_plan()
        want = evaluate_sinks(plan, q1_sources)
        cx = ClusterExecutor(config=ClusterConfig(
            num_devices=4, faults=kill_device(1), check=True))
        got = cx.functional(plan, q1_sources)
        assert_bytes_identical(got, want)
        res = cx.run(plan, q1_rows())
        assert res.lost_devices == (1,)
        assert res.recovered_shards >= 1

    def test_q21_under_device_loss(self, q21_sources):
        plan = build_q21_plan()
        want = evaluate_sinks(plan, q21_sources)
        cx = ClusterExecutor(config=ClusterConfig(
            num_devices=4, faults=kill_device(2), check=True))
        assert_bytes_identical(cx.functional(plan, q21_sources), want)
        res = cx.run(plan, q21_rows())
        assert res.lost_devices == (2,)
        assert res.recovered_shards >= 1


class TestScaling:
    @pytest.mark.parametrize("make_plan,make_rows", [
        (build_q1_plan, q1_rows), (build_q21_plan, q21_rows)],
        ids=["q1", "q21"])
    def test_four_devices_strictly_beat_one(self, make_plan, make_rows):
        """The subsystem's acceptance criterion."""
        plan, rows = make_plan(), make_rows()
        makespans = {}
        for devices in (1, 4):
            cx = ClusterExecutor(config=ClusterConfig(num_devices=devices,
                                                      check=True))
            makespans[devices] = cx.run(plan, rows).makespan
        assert makespans[4] < makespans[1]
        assert makespans[4] < single_device_makespan(plan, rows)

    def test_q21_scaling_is_monotone(self):
        """Regression for the 8-device cliff: contention is a throughput
        cap, not a knee amplifier, so Q21's makespan must be monotone
        non-increasing 1 -> 2 -> 4 -> 8 (and strictly better at 8 than
        4, where the old model regressed)."""
        plan, rows = build_q21_plan(), q21_rows()
        m = {d: ClusterExecutor(config=ClusterConfig(
            num_devices=d, check=True)).run(plan, rows).makespan
            for d in (1, 2, 4, 8)}
        assert m[2] <= m[1] and m[4] <= m[2] and m[8] <= m[4]
        assert m[8] < m[4]

    def test_q1_preagg_shrinks_per_device_exchange(self):
        """Pre-aggregation exchanges partial-state flush blocks instead
        of raw frontier rows: per-device outbound volume must *decrease*
        as devices are added, and sit far below the raw frontier."""
        plan, rows = build_q1_plan(), q1_rows()
        per_dev = {}
        for d in (2, 4, 8):
            cx = ClusterExecutor(config=ClusterConfig(num_devices=d))
            res = cx.run(plan, rows)
            assert res.dist.preagg is not None
            per_dev[d] = res.exchange_out_per_device
        assert per_dev[4] <= per_dev[2] and per_dev[8] <= per_dev[4]
        assert per_dev[8] < per_dev[2]
        # raw mode for comparison: the whole frontier crosses the wire
        raw = ClusterExecutor(config=ClusterConfig(
            num_devices=8, preagg=False)).run(plan, rows)
        assert raw.dist.preagg is None
        assert per_dev[8] < 0.001 * raw.exchange_out_per_device

    def test_one_device_cluster_equals_plain_executor(self):
        """N=1 must bypass partitioning/exchange entirely: same makespan
        as the plain single-device Executor, empty host lane, no
        exchange bytes."""
        for make_plan, make_rows in ((build_q1_plan, q1_rows),
                                     (build_q21_plan, q21_rows)):
            plan, rows = make_plan(), make_rows()
            cx = ClusterExecutor(config=ClusterConfig(num_devices=1,
                                                      check=True))
            res = cx.run(plan, rows)
            assert res.makespan == single_device_makespan(plan, rows)
            assert not res.host_timeline.events
            assert res.exchange_out_bytes == 0
            assert res.merge_bytes == 0
            assert [r.shard for r in res.shard_runs] == [0]

    def test_pipelined_exchange_overlaps_local_compute(self):
        """The host stages chunk events during the local phase (pipelined
        exchange), not in one post-barrier shuffle: at least one chunk
        must finish before the last local run ends."""
        cx = ClusterExecutor(config=ClusterConfig(num_devices=4))
        res = cx.run(build_q1_plan(), q1_rows())
        chunk_events = [e for e in res.host_timeline.events
                        if e.tag.startswith("cluster.exchange.")]
        assert len(chunk_events) > 1
        local_end = max(r.start + r.makespan for r in res.shard_runs
                        if r.phase == "local")
        assert min(e.end for e in chunk_events) < local_end

    def test_suffix_device_loss_recovers_slot(self):
        """A device lost between the phases has its exchange destination
        slot re-run on a survivor, marked recovered."""
        plan, rows = build_q1_plan(), q1_rows()
        cx = ClusterExecutor(config=ClusterConfig(
            num_devices=4, faults=kill_device(1, phase=".suffix"),
            check=True))
        res = cx.run(plan, rows)
        assert res.lost_devices == (1,)
        rec = [r for r in res.shard_runs
               if r.phase == "suffix" and r.recovered]
        assert rec and all(r.device != 1 for r in rec)


class TestRunResult:
    @pytest.mark.parametrize("make_plan,make_rows,mode", [
        (build_q1_plan, q1_rows, "exchange"),
        (build_q21_plan, q21_rows, "host")], ids=["q1", "q21"])
    def test_validates_and_reports(self, make_plan, make_rows, mode):
        cx = ClusterExecutor(config=ClusterConfig(num_devices=4,
                                                  check=True))
        res = cx.run(make_plan(), make_rows())
        assert res.dist.suffix_mode == mode
        assert res.makespan > 0
        assert len(res.device_timelines) == 4
        assert res.lost_devices == ()
        if mode == "exchange":
            assert res.exchange_out_bytes > 0
            rel = abs(res.exchange_out_bytes - res.exchange_in_bytes)
            assert rel <= 0.02 * res.exchange_out_bytes

    def test_summary_is_byte_stable(self):
        def run_summary():
            cx = ClusterExecutor(config=ClusterConfig(num_devices=4,
                                                      seed=7))
            return json.dumps(cx.run(build_q1_plan(), q1_rows()).summary(),
                              sort_keys=True)
        assert run_summary() == run_summary()

    def test_trace_lanes_one_per_device_plus_host(self):
        cx = ClusterExecutor(config=ClusterConfig(num_devices=3))
        res = cx.run(build_q1_plan(), q1_rows())
        lanes = res.trace_lanes()
        assert [name for name, _ in lanes] == [
            "device 0", "device 1", "device 2", "cluster host"]
        assert all(tl.events for _, tl in lanes)

    def test_all_devices_lost_keeps_device_zero(self):
        faults = FaultPlan(seed=0, budget=8, site_rates={
            f"device.{d}": 1.0 for d in range(4)})
        cx = ClusterExecutor(config=ClusterConfig(
            num_devices=4, faults=faults, check=True))
        res = cx.run(build_q1_plan(), q1_rows())
        assert 0 not in res.lost_devices
        assert res.lost_devices == (1, 2, 3)
        # every shard still ran, all on the survivor
        local = [r for r in res.shard_runs if r.phase == "local"]
        assert sorted(r.shard for r in local) == [0, 1, 2, 3]
        assert {r.device for r in local} == {0}

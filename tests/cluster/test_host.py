"""The shared-host PCIe contention model: contention is a throughput
*cap* (``host_share_bw = host_bw / sharers``) applied as a floor on
transfer time; the per-link asymptotes, latency, and saturation knee stay
untouched, so contention never amplifies the small-transfer knee."""

import pytest

from repro.cluster import ClusterSpec, contended_calibration, contended_device
from repro.simgpu import DeviceSpec
from repro.simgpu.pcie import Direction, HostMemory, PcieModel


@pytest.fixture(scope="module")
def base():
    return DeviceSpec()


def pcie_bws(calib):
    p = calib.pcie
    return (p.pinned_h2d_bw, p.pinned_d2h_bw,
            p.paged_h2d_bw, p.paged_d2h_bw)


def t_h2d(calib, nbytes):
    return PcieModel(calib.pcie).transfer_time(
        nbytes, Direction.H2D, HostMemory.PINNED)


class TestContention:
    def test_single_sharer_is_identity(self, base):
        assert contended_calibration(base.calib, 1) is base.calib
        assert contended_device(base, 1) is base

    def test_link_asymptotes_untouched(self, base):
        got = contended_calibration(base.calib, 8)
        assert pcie_bws(got) == pcie_bws(base.calib)
        assert got.pcie.latency_s == base.calib.pcie.latency_s
        assert (got.pcie.half_saturation_bytes
                == base.calib.pcie.half_saturation_bytes)
        assert got.gpu == base.calib.gpu
        assert got.cpu == base.calib.cpu

    def test_cap_is_host_quotient(self, base):
        got = contended_calibration(base.calib, 8)
        assert got.pcie.host_share_bw == base.calib.cpu.read_bw / 8

    def test_few_devices_stay_link_limited(self, base):
        # 2 sharers: 25/2 = 12.5 GB/s host share > every link rate, so
        # the link curve is the binding constraint at every size and
        # transfer times do not change at all
        got = contended_calibration(base.calib, 2)
        for nbytes in (1e3, 1e5, 4e6, 64e6, 1e9):
            assert t_h2d(got, nbytes) == t_h2d(base.calib, nbytes)

    def test_many_devices_become_host_limited(self, base):
        # 8 sharers: 25/8 = 3.125 GB/s < link rate, so large transfers
        # stream at the host share...
        got = contended_calibration(base.calib, 8)
        share = base.calib.cpu.read_bw / 8
        n = 256e6
        assert t_h2d(got, n) == pytest.approx(
            base.calib.pcie.latency_s + n / share)
        # ...while tiny transfers stay knee-limited, NOT knee-divided:
        # the contended time never exceeds link_time + n/share
        tiny = 1e4
        assert t_h2d(got, tiny) <= (t_h2d(base.calib, tiny)
                                    + tiny / share + 1e-12)

    def test_no_knee_amplification(self, base):
        # the old model divided the asymptote, charging the ~half_sat
        # ramp penalty at the contended rate; the cap model charges the
        # knee once, at the link rate.  A knee-sized transfer under 8
        # sharers must cost far less than the old amplified price.
        got = contended_calibration(base.calib, 8)
        n = base.calib.pcie.half_saturation_bytes   # 4 MB
        share = base.calib.cpu.read_bw / 8
        old_model = base.calib.pcie.latency_s + (n + n) / share
        assert t_h2d(got, n) < 0.75 * old_model

    def test_transfer_time_monotone_in_sharers(self, base):
        for nbytes in (1e5, 4e6, 64e6):
            prev = t_h2d(base.calib, nbytes)
            for sharers in (2, 4, 8, 16):
                cur = t_h2d(contended_calibration(base.calib, sharers),
                            nbytes)
                assert cur >= prev
                prev = cur

    def test_explicit_host_bw_overrides_calibration(self, base):
        got = contended_calibration(base.calib, 2, host_staging_bw=4e9)
        assert got.pcie.host_share_bw == 2e9
        n = 64e6
        assert t_h2d(got, n) == pytest.approx(
            base.calib.pcie.latency_s + n / 2e9)


class TestClusterSpec:
    def test_defaults(self):
        spec = ClusterSpec()
        assert spec.num_devices == 4
        assert spec.sharers == 4
        assert len(spec.devices()) == 4

    def test_sharers_clamped_to_devices(self):
        assert ClusterSpec(num_devices=2, pcie_sharers=8).sharers == 2
        assert ClusterSpec(num_devices=4, pcie_sharers=0).sharers == 1

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_devices=0)

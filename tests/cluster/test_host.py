"""The shared-host PCIe contention model: per-device staging bandwidth
is min(link_bw, host_bw / sharers), latency and knees stay per-link."""

import pytest

from repro.cluster import ClusterSpec, contended_calibration, contended_device
from repro.simgpu import DeviceSpec


@pytest.fixture(scope="module")
def base():
    return DeviceSpec()


def pcie_bws(calib):
    p = calib.pcie
    return (p.pinned_h2d_bw, p.pinned_d2h_bw,
            p.paged_h2d_bw, p.paged_d2h_bw)


class TestContention:
    def test_single_sharer_is_identity(self, base):
        assert contended_calibration(base.calib, 1) is base.calib
        assert contended_device(base, 1) is base

    def test_cap_is_host_quotient(self, base):
        sharers = 8
        host_bw = base.calib.cpu.read_bw
        got = contended_calibration(base.calib, sharers)
        for orig, capped in zip(pcie_bws(base.calib), pcie_bws(got)):
            assert capped == min(orig, host_bw / sharers)

    def test_few_devices_stay_link_limited(self, base):
        # 2 sharers: 25/2 = 12.5 GB/s host share > every link rate,
        # so the links stay the bottleneck and nothing changes
        got = contended_calibration(base.calib, 2)
        assert pcie_bws(got) == pcie_bws(base.calib)

    def test_many_devices_become_host_limited(self, base):
        got = contended_calibration(base.calib, 8)
        host_share = base.calib.cpu.read_bw / 8
        assert all(bw <= host_share for bw in pcie_bws(got))
        assert pcie_bws(got) != pcie_bws(base.calib)

    def test_bandwidth_monotone_in_sharers(self, base):
        prev = pcie_bws(base.calib)
        for sharers in (2, 4, 8, 16):
            cur = pcie_bws(contended_calibration(base.calib, sharers))
            assert all(c <= p for c, p in zip(cur, prev))
            prev = cur

    def test_explicit_host_bw_overrides_calibration(self, base):
        got = contended_calibration(base.calib, 2, host_staging_bw=4e9)
        assert all(bw <= 2e9 for bw in pcie_bws(got))

    def test_link_properties_untouched(self, base):
        got = contended_calibration(base.calib, 8)
        assert got.pcie.latency_s == base.calib.pcie.latency_s
        assert got.gpu == base.calib.gpu
        assert got.cpu == base.calib.cpu


class TestClusterSpec:
    def test_defaults(self):
        spec = ClusterSpec()
        assert spec.num_devices == 4
        assert spec.sharers == 4
        assert len(spec.devices()) == 4

    def test_sharers_clamped_to_devices(self):
        assert ClusterSpec(num_devices=2, pcie_sharers=8).sharers == 2
        assert ClusterSpec(num_devices=4, pcie_sharers=0).sharers == 1

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_devices=0)

"""Integration tests: the paper's headline claims, end to end.

One test per quantitative claim, asserted within reproduction bands (the
benchmark suite prints the exact paper-vs-measured numbers; these tests
make `pytest tests/` certify the reproduction on its own).
"""

import pytest

from repro.compilerlite import table3
from repro.cpubase import cpu_select_throughput
from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.runtime.concurrent import run_two_selects
from repro.runtime.select_chain import gpu_select_throughput, run_select_chain
from repro.tpch import build_q1_plan, build_q21_plan, q1_source_rows, q21_source_rows


class TestSection2Claims:
    def test_gpu_select_faster_than_cpu(self):
        """'the GPU implementation is 2.88x, 8.80x and 8.35x faster'"""
        n = 200_000_000
        for sel, paper in [(0.1, 2.88), (0.5, 8.80), (0.9, 8.35)]:
            speedup = (gpu_select_throughput(n, sel)
                       / cpu_select_throughput(n, selectivity=sel))
            assert paper / 2 < speedup < paper * 2

    def test_pcie_2x_to_4x_slower_than_gpu_compute(self):
        """'the PCIe bandwidth can effectively only supply data at a 2X-4X
        slower rate' than the ~20 GB/s the GPU sustains."""
        from repro.simgpu import DEFAULT_CALIBRATION, Direction, HostMemory, PcieModel
        pcie = PcieModel(DEFAULT_CALIBRATION.pcie)
        gpu = gpu_select_throughput(200_000_000, 0.5)
        wire = pcie.effective_bandwidth(8e8, Direction.H2D, HostMemory.PINNED)
        assert 2.0 < gpu / wire < 4.5


class TestSection3Claims:
    def test_fused_beats_both_baselines(self):
        """Fig 8(a): fused > without round trip > with round trip."""
        n = 200_000_000
        tput = {s: run_select_chain(n, 2, 0.5, s).throughput
                for s in (Strategy.WITH_ROUND_TRIP, Strategy.SERIAL,
                          Strategy.FUSED)}
        assert (tput[Strategy.FUSED] > tput[Strategy.SERIAL]
                > tput[Strategy.WITH_ROUND_TRIP])

    def test_compute_only_fusion_gain(self):
        """Fig 8(b): ~79.9% compute-only improvement (band: 40-110%)."""
        n = 200_000_000
        ru = run_select_chain(n, 2, 0.5, Strategy.SERIAL, include_transfers=False)
        rf = run_select_chain(n, 2, 0.5, Strategy.FUSED, include_transfers=False)
        gain = (ru.makespan / rf.makespan - 1) * 100
        assert 40 < gain < 110

    def test_round_trip_half_of_unoptimized_time(self):
        """Fig 9: round trip ~54% of the with-round-trip total."""
        r = run_select_chain(200_000_000, 2, 0.5, Strategy.WITH_ROUND_TRIP)
        share = r.roundtrip_time / r.makespan
        assert 0.35 < share < 0.65

    @pytest.mark.no_chaos  # asserts a calibrated timing band
    def test_fused_gather_around_3x(self):
        """Fig 10: fused gather ~3.03x two separate gathers."""
        n = 200_000_000
        ru = run_select_chain(n, 2, 0.5, Strategy.SERIAL, include_transfers=False)
        rf = run_select_chain(n, 2, 0.5, Strategy.FUSED, include_transfers=False)
        gu = sum(v for k, v in ru.kernel_times().items() if "gather" in k)
        gf = sum(v for k, v in rf.kernel_times().items() if "gather" in k)
        assert 2.4 < gu / gf < 3.6

    def test_table3_exact(self):
        t = table3()
        assert (t["unfused_o0"], t["unfused_o3"]) == ([5, 5], [3, 3])
        assert (t["fused_o0"], t["fused_o3"]) == (10, 3)


class TestSection4Claims:
    def test_concurrency_only_helps_small_inputs(self):
        """Fig 12: streams beat serial only below ~8M elements."""
        assert (run_two_selects(2_000_000, "stream").throughput
                > run_two_selects(2_000_000, "old").throughput)
        assert (run_two_selects(100_000_000, "old").throughput
                > run_two_selects(100_000_000, "stream").throughput)

    @pytest.mark.no_chaos  # asserts a calibrated timing band
    def test_fission_gain_on_oversized_data(self):
        """Fig 14: +36.9% for data exceeding GPU memory (band 20-60%)."""
        n = 2_000_000_000
        rs = run_select_chain(n, 1, 0.5, Strategy.SERIAL)
        rf = run_select_chain(n, 1, 0.5, Strategy.FISSION)
        gain = (rf.throughput / rs.throughput - 1) * 100
        assert 20 < gain < 60

    @pytest.mark.no_chaos  # asserts a calibrated timing band
    def test_fig16_ordering_and_magnitude(self):
        """Fig 16: fusion+fission ~+41.4% over serial (band 25-65%)."""
        n = 2_000_000_000
        serial = run_select_chain(n, 2, 0.5, Strategy.SERIAL).throughput
        both = run_select_chain(n, 2, 0.5, Strategy.FUSED_FISSION).throughput
        gain = (both / serial - 1) * 100
        assert 25 < gain < 65


class TestSection5Claims:
    @pytest.fixture(scope="class")
    def executor(self):
        return Executor()

    @pytest.mark.no_chaos  # asserts a calibrated timing band
    def test_q1_total_improvement(self, executor):
        """Fig 18(a): 26.5% total on Q1 (band 10-45%)."""
        plan = build_q1_plan()
        rows = q1_source_rows(6_000_000)
        serial = executor.run(plan, rows, ExecutionConfig(strategy=Strategy.SERIAL))
        both = executor.run(plan, rows,
                            ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        gain = (serial.makespan / both.makespan - 1) * 100
        assert 10 < gain < 45

    def test_q1_sort_dominates(self, executor):
        """Fig 18(a): SORT ~71% of the baseline and unoptimizable."""
        plan = build_q1_plan()
        r = executor.run(plan, q1_source_rows(6_000_000),
                         ExecutionConfig(strategy=Strategy.SERIAL))
        sort_t = sum(v for k, v in r.kernel_times().items() if "sort" in k)
        assert 0.6 < sort_t / r.makespan < 0.85

    def test_q21_smaller_but_positive_gain(self, executor):
        """Fig 18(b): 13.2% on Q21 (band 5-35%), less than Q1."""
        q21 = build_q21_plan()
        rows21 = q21_source_rows(6_000_000, 1_500_000, 10_000)
        serial = executor.run(q21, rows21, ExecutionConfig(strategy=Strategy.SERIAL))
        both = executor.run(q21, rows21,
                            ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        gain = (serial.makespan / both.makespan - 1) * 100
        assert 5 < gain < 35

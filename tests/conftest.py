"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ra.relation import Relation
from repro.simgpu.device import DeviceSpec
from repro.simgpu.engine import SimEngine
from repro.tpch.datagen import TpchConfig, generate
from repro.validate import validate_run, validate_timeline


@pytest.fixture(scope="session")
def device() -> DeviceSpec:
    return DeviceSpec()


@pytest.fixture(autouse=True)
def _sanitize_schedules(monkeypatch):
    """Audit every simulated schedule the suite produces.

    Wraps :meth:`SimEngine.run` and :meth:`Executor.run` so each timeline
    is checked against the device-model invariants (engine exclusivity,
    SM capacity, stream order, sync matching, byte conservation); any
    violation fails the test with a ScheduleInvariantError.
    """
    from repro.runtime.executor import Executor
    from repro.runtime.strategies import ExecutionConfig

    engine_run = SimEngine.run
    executor_run = Executor.run

    def checked_engine_run(self, streams, timeline=None, start_time=0.0):
        tl = engine_run(self, streams, timeline, start_time)
        if not self.check:  # strict engines already validated
            validate_timeline(tl, self.device).raise_if_failed()
        return tl

    def checked_executor_run(self, plan, source_rows=None,
                             config=ExecutionConfig()):
        result = executor_run(self, plan, source_rows, config)
        if not self.check:
            validate_run(result, self.device).raise_if_failed()
        return result

    monkeypatch.setattr(SimEngine, "run", checked_engine_run)
    monkeypatch.setattr(Executor, "run", checked_executor_run)
    yield


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture()
def small_relation(rng) -> Relation:
    n = 10_000
    return Relation({
        "key": rng.integers(0, 1000, n).astype(np.int32),
        "value": rng.integers(0, 1000, n).astype(np.int32),
    })


@pytest.fixture(scope="session")
def tpch_tiny():
    """Small but non-trivial TPC-H dataset, generated once per session."""
    return generate(TpchConfig(scale_factor=0.002, seed=7, late_fraction=0.5))


@pytest.fixture(scope="session")
def tpch_small():
    return generate(TpchConfig(scale_factor=0.005, seed=11, late_fraction=0.4))

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ra.relation import Relation
from repro.simgpu.device import DeviceSpec
from repro.tpch.datagen import TpchConfig, generate


@pytest.fixture(scope="session")
def device() -> DeviceSpec:
    return DeviceSpec()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture()
def small_relation(rng) -> Relation:
    n = 10_000
    return Relation({
        "key": rng.integers(0, 1000, n).astype(np.int32),
        "value": rng.integers(0, 1000, n).astype(np.int32),
    })


@pytest.fixture(scope="session")
def tpch_tiny():
    """Small but non-trivial TPC-H dataset, generated once per session."""
    return generate(TpchConfig(scale_factor=0.002, seed=7, late_fraction=0.5))


@pytest.fixture(scope="session")
def tpch_small():
    return generate(TpchConfig(scale_factor=0.005, seed=11, late_fraction=0.4))

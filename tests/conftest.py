"""Shared fixtures for the test suite."""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.ra.relation import Relation
from repro.simgpu.device import DeviceSpec
from repro.simgpu.engine import SimEngine
from repro.tpch.datagen import TpchConfig, generate
from repro.validate import validate_run, validate_timeline


@pytest.fixture(scope="session")
def device() -> DeviceSpec:
    return DeviceSpec()


def _chaos_plan_from_env() -> FaultPlan | None:
    """FaultPlan from REPRO_CHAOS_RATE / REPRO_CHAOS_SEED, or None.

    Environment-driven (rather than a pytest option) so the chaos CI job
    can flip on low-rate injection for the *whole* suite without touching
    every invocation: ``REPRO_CHAOS_RATE=0.002 pytest``.
    """
    rate = os.environ.get("REPRO_CHAOS_RATE")
    if not rate:
        return None
    seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
    return FaultPlan.chaos(seed, rate=float(rate))


@pytest.fixture
def chaos() -> FaultPlan:
    """A seeded FaultPlan for tests that opt into fault injection.

    Honors REPRO_CHAOS_RATE / REPRO_CHAOS_SEED when set; defaults to the
    standard low-rate chaos plan otherwise.
    """
    return _chaos_plan_from_env() or FaultPlan.chaos(0, rate=0.02)


@pytest.fixture(autouse=True)
def _env_chaos(request, monkeypatch):
    """Suite-wide chaos mode: when REPRO_CHAOS_RATE is set, every engine
    that was constructed *without* explicit faults gets a deterministic
    low-rate injector (seeded per-test so different tests probe different
    sites).  Tests asserting exact simulated timings opt out with
    ``@pytest.mark.no_chaos``."""
    plan = _chaos_plan_from_env()
    if plan is None or request.node.get_closest_marker("no_chaos"):
        yield
        return
    per_test = int.from_bytes(
        hashlib.blake2b(request.node.nodeid.encode(), digest_size=4).digest(),
        "big")
    test_plan = FaultPlan(seed=plan.seed + per_test, rates=plan.rates,
                          budget=plan.budget, retry=plan.retry)
    orig_init = SimEngine.__init__

    def chaos_init(self, device, pcie=None, check=False, faults=None):
        if faults is None:
            faults = FaultInjector(test_plan)
        orig_init(self, device, pcie=pcie, check=check, faults=faults)

    monkeypatch.setattr(SimEngine, "__init__", chaos_init)
    yield


@pytest.fixture(autouse=True)
def _sanitize_schedules(monkeypatch):
    """Audit every simulated schedule the suite produces.

    Wraps :meth:`SimEngine.run` and :meth:`Executor.run` so each timeline
    is checked against the device-model invariants (engine exclusivity,
    SM capacity, stream order, sync matching, byte conservation); any
    violation fails the test with a ScheduleInvariantError.
    """
    from repro.runtime.executor import Executor
    from repro.runtime.strategies import ExecutionConfig

    engine_run = SimEngine.run
    executor_run = Executor.run

    def checked_engine_run(self, streams, timeline=None, start_time=0.0):
        tl = engine_run(self, streams, timeline, start_time)
        if not self.check:  # strict engines already validated
            validate_timeline(tl, self.device).raise_if_failed()
        return tl

    def checked_executor_run(self, plan, source_rows=None,
                             config=ExecutionConfig()):
        result = executor_run(self, plan, source_rows, config)
        if not self.check:
            validate_run(result, self.device).raise_if_failed()
        return result

    monkeypatch.setattr(SimEngine, "run", checked_engine_run)
    monkeypatch.setattr(Executor, "run", checked_executor_run)
    yield


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture()
def small_relation(rng) -> Relation:
    n = 10_000
    return Relation({
        "key": rng.integers(0, 1000, n).astype(np.int32),
        "value": rng.integers(0, 1000, n).astype(np.int32),
    })


@pytest.fixture(scope="session")
def tpch_tiny():
    """Small but non-trivial TPC-H dataset, generated once per session."""
    return generate(TpchConfig(scale_factor=0.002, seed=7, late_fraction=0.5))


@pytest.fixture(scope="session")
def tpch_small():
    return generate(TpchConfig(scale_factor=0.005, seed=11, late_fraction=0.4))

"""Tests for the simulated-time event log."""

import pytest

from repro.simgpu import EventKind, Timeline


def tl_with(*events):
    tl = Timeline()
    for start, end, kind, tag in events:
        tl.add(start, end, kind, tag)
    return tl


class TestBasics:
    def test_empty(self):
        tl = Timeline()
        assert tl.makespan == 0.0
        assert tl.end_time == 0.0
        assert tl.breakdown() == {}

    def test_add_and_makespan(self):
        tl = tl_with((1.0, 2.0, EventKind.KERNEL, "k"),
                     (2.0, 5.0, EventKind.D2H, "d"))
        assert tl.makespan == 4.0
        assert tl.end_time == 5.0

    def test_negative_duration_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add(2.0, 1.0, EventKind.KERNEL, "bad")

    def test_event_duration(self):
        tl = tl_with((0.0, 2.5, EventKind.H2D, "x"))
        assert tl.events[0].duration == 2.5


class TestQueries:
    def test_filter_by_kind(self):
        tl = tl_with((0, 1, EventKind.H2D, "a"), (1, 2, EventKind.KERNEL, "b"))
        assert len(tl.filter(EventKind.H2D)) == 1

    def test_filter_by_tag_prefix(self):
        tl = tl_with((0, 1, EventKind.H2D, "input.x"),
                     (1, 2, EventKind.H2D, "roundtrip.x"))
        assert len(tl.filter(tag_prefix="input")) == 1

    def test_total_time_double_counts_overlap(self):
        tl = tl_with((0, 2, EventKind.KERNEL, "a"), (1, 3, EventKind.KERNEL, "b"))
        assert tl.total_time(EventKind.KERNEL) == 4.0

    def test_busy_time_merges_overlap(self):
        tl = tl_with((0, 2, EventKind.KERNEL, "a"), (1, 3, EventKind.KERNEL, "b"))
        assert tl.busy_time(EventKind.KERNEL) == 3.0

    def test_busy_time_disjoint(self):
        tl = tl_with((0, 1, EventKind.KERNEL, "a"), (5, 7, EventKind.KERNEL, "b"))
        assert tl.busy_time(EventKind.KERNEL) == 3.0

    def test_busy_time_nested(self):
        tl = tl_with((0, 10, EventKind.KERNEL, "a"), (2, 3, EventKind.KERNEL, "b"))
        assert tl.busy_time(EventKind.KERNEL) == 10.0

    def test_bytes_moved(self):
        tl = Timeline()
        tl.add(0, 1, EventKind.H2D, "a", nbytes=100)
        tl.add(1, 2, EventKind.H2D, "b", nbytes=50)
        tl.add(2, 3, EventKind.D2H, "c", nbytes=7)
        assert tl.bytes_moved(EventKind.H2D) == 150
        assert tl.bytes_moved(EventKind.D2H) == 7

    def test_breakdown_by_kind(self):
        tl = tl_with((0, 1, EventKind.H2D, "a"), (1, 3, EventKind.KERNEL, "k"),
                     (3, 4, EventKind.KERNEL, "k2"))
        assert tl.breakdown() == {"h2d": 1.0, "kernel": 3.0}

    def test_tag_breakdown(self):
        tl = tl_with((0, 1, EventKind.KERNEL, "k"), (1, 3, EventKind.KERNEL, "k"))
        assert tl.tag_breakdown() == {"k": 3.0}


class TestExtend:
    def test_extend_with_offset(self):
        a = tl_with((0, 1, EventKind.KERNEL, "a"))
        b = tl_with((0, 2, EventKind.KERNEL, "b"))
        a.extend(b, offset=5.0)
        assert a.end_time == 7.0
        assert a.events[1].start == 5.0

    def test_extend_preserves_metadata(self):
        a = Timeline()
        b = Timeline()
        b.add(0, 1, EventKind.D2H, "x", stream=3, nbytes=42)
        a.extend(b, offset=1.0)
        ev = a.events[0]
        assert (ev.stream, ev.nbytes) == (3, 42)

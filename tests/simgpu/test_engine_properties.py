"""Property-based tests of the discrete-event engine's invariants.

For random command mixes across random stream counts:

* per-stream commands complete in order;
* the H2D engine never runs two transfers at once (same for D2H);
* full-device kernels never co-run;
* every command produces exactly one timeline event;
* the makespan is bounded below by each engine's busy time and above by
  the serialized sum.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simgpu import DeviceSpec, EventKind, KernelLaunchSpec, SimEngine, SimStream

DEVICE = DeviceSpec()

# a command is ('h2d'|'d2h'|'kernel'|'host', size_scale 1..10)
command_st = st.tuples(st.sampled_from(["h2d", "d2h", "kernel", "host"]),
                       st.integers(1, 10))
streams_st = st.lists(st.lists(command_st, min_size=0, max_size=6),
                      min_size=1, max_size=4)


def build_streams(spec_lists):
    streams = []
    total = 0
    for sid, cmds in enumerate(spec_lists):
        s = SimStream(stream_id=sid)
        for kind, scale in cmds:
            tag = f"s{sid}.c{total}"
            total += 1
            if kind == "h2d":
                s.h2d(scale * 1e7, tag=tag)
            elif kind == "d2h":
                s.d2h(scale * 1e7, tag=tag)
            elif kind == "host":
                s.host(scale * 1e-4, tag=tag)
            else:
                n = scale * 10**6
                s.kernel(KernelLaunchSpec(
                    tag, n, 112, 256, 20, 4.0 * n, 2.0 * n, 40.0 * n), tag=tag)
        streams.append(s)
    return streams, total


def events_of(spec_lists):
    streams, total = build_streams(spec_lists)
    tl = SimEngine(DEVICE).run(streams)
    return tl, total


@pytest.mark.no_chaos  # injected retries legitimately add fault.* events
@given(streams_st)
@settings(max_examples=80, deadline=None)
def test_every_command_produces_one_event(spec_lists):
    tl, total = events_of(spec_lists)
    assert len(tl.events) == total


@given(streams_st)
@settings(max_examples=80, deadline=None)
def test_in_order_within_stream(spec_lists):
    tl, _ = events_of(spec_lists)
    by_stream: dict[int, list] = {}
    for ev in tl.events:
        by_stream.setdefault(ev.stream, []).append(ev)
    for evs in by_stream.values():
        evs.sort(key=lambda e: int(e.tag.split(".c")[1]))
        for a, b in zip(evs, evs[1:]):
            assert b.start >= a.end - 1e-12


@given(streams_st)
@settings(max_examples=80, deadline=None)
def test_copy_engines_exclusive(spec_lists):
    tl, _ = events_of(spec_lists)
    for kind in (EventKind.H2D, EventKind.D2H):
        evs = sorted(tl.filter(kind), key=lambda e: e.start)
        for a, b in zip(evs, evs[1:]):
            assert b.start >= a.end - 1e-12


@given(streams_st)
@settings(max_examples=80, deadline=None)
def test_full_kernels_never_corun(spec_lists):
    tl, _ = events_of(spec_lists)
    evs = sorted(tl.filter(EventKind.KERNEL), key=lambda e: e.start)
    for a, b in zip(evs, evs[1:]):
        assert b.start >= a.end - 1e-12  # 112-CTA kernels take all SMs


@pytest.mark.no_chaos  # bounds assume unstretch-able durations
@given(streams_st)
@settings(max_examples=80, deadline=None)
def test_makespan_bounds(spec_lists):
    tl, total = events_of(spec_lists)
    if total == 0:
        assert tl.makespan == 0.0
        return
    serial_sum = sum(e.duration for e in tl.events)
    assert tl.makespan <= serial_sum + 1e-9
    for kind in (EventKind.H2D, EventKind.D2H, EventKind.KERNEL, EventKind.HOST):
        assert tl.makespan >= tl.busy_time(kind) - 1e-9


@given(streams_st)
@settings(max_examples=40, deadline=None)
def test_deterministic(spec_lists):
    a, _ = events_of(spec_lists)
    b, _ = events_of(spec_lists)
    key = lambda e: (e.start, e.tag)
    assert sorted(map(key, a.events)) == sorted(map(key, b.events))

"""Tests for the Chrome-trace exporter."""

import json

import pytest

from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain
from repro.simgpu import EventKind, Timeline
from repro.simgpu.trace import to_chrome_trace, write_chrome_trace


@pytest.fixture
def timeline():
    tl = Timeline()
    tl.add(0.0, 0.001, EventKind.H2D, "input", stream=0, nbytes=1000)
    tl.add(0.001, 0.002, EventKind.KERNEL, "select.compute", stream=0)
    tl.add(0.002, 0.003, EventKind.D2H, "output", stream=0, nbytes=500)
    return tl


class TestToChromeTrace:
    def test_has_trace_events(self, timeline):
        trace = to_chrome_trace(timeline)
        assert "traceEvents" in trace
        complete = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert len(complete) == 3

    def test_timestamps_in_microseconds(self, timeline):
        trace = to_chrome_trace(timeline)
        ev = [e for e in trace["traceEvents"] if e.get("name") == "input"][0]
        assert ev["ts"] == pytest.approx(0.0)
        assert ev["dur"] == pytest.approx(1000.0)  # 1 ms

    def test_rows_per_engine(self, timeline):
        trace = to_chrome_trace(timeline)
        complete = {e["name"]: e for e in trace["traceEvents"]
                    if e.get("ph") == "X"}
        assert complete["input"]["tid"] != complete["select.compute"]["tid"]

    def test_metadata_rows_named(self, timeline):
        trace = to_chrome_trace(timeline)
        names = [e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"]
        assert "PCIe H2D copy engine" in names
        assert "GPU compute (stream 0)" in names

    def test_kernel_lane_per_stream(self):
        tl = Timeline()
        tl.add(0.0, 0.001, EventKind.KERNEL, "k0", stream=0)
        tl.add(0.0, 0.001, EventKind.KERNEL, "k1", stream=1)
        tl.add(0.001, 0.002, EventKind.KERNEL, "k2", stream=7)
        trace = to_chrome_trace(tl)
        complete = {e["name"]: e for e in trace["traceEvents"]
                    if e.get("ph") == "X"}
        tids = {complete[k]["tid"] for k in ("k0", "k1", "k2")}
        assert len(tids) == 3
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert {"GPU compute (stream 0)", "GPU compute (stream 1)",
                "GPU compute (stream 7)"} <= names

    def test_fault_events_categorized(self):
        tl = Timeline()
        tl.add(0.0, 0.001, EventKind.H2D, "fault.input.lineitem", nbytes=10)
        tl.add(0.001, 0.002, EventKind.KERNEL, "fault.stall.select.filter",
               stream=3)
        tl.add(0.002, 0.003, EventKind.H2D, "input.lineitem", nbytes=10)
        trace = to_chrome_trace(tl)
        complete = {e["name"]: e for e in trace["traceEvents"]
                    if e.get("ph") == "X"}
        retried = complete["fault.input.lineitem"]
        assert "fault" in retried["cat"]
        assert retried["args"]["fault"] is True
        assert retried["args"]["repair"] == "retry"
        stalled = complete["fault.stall.select.filter"]
        assert stalled["args"]["repair"] == "reissue"
        clean = complete["input.lineitem"]
        assert "fault" not in clean["cat"]
        assert "fault" not in clean["args"]

    def test_lanes_keep_sort_order(self, timeline):
        trace = to_chrome_trace(timeline)
        sort_rows = [e for e in trace["traceEvents"]
                     if e.get("ph") == "M" and e["name"] == "thread_sort_index"]
        assert sort_rows
        for e in sort_rows:
            assert e["args"]["sort_index"] == e["tid"]

    def test_args_carry_bytes(self, timeline):
        trace = to_chrome_trace(timeline)
        ev = [e for e in trace["traceEvents"] if e.get("name") == "input"][0]
        assert ev["args"]["nbytes"] == 1000

    def test_empty_timeline(self):
        trace = to_chrome_trace(Timeline())
        assert all(e.get("ph") == "M" for e in trace["traceEvents"])

    def test_analysis_metadata_attached(self, timeline):
        summary = {"errors": 0, "warnings": 1, "passes": ["plan-lints"]}
        trace = to_chrome_trace(timeline, analysis=summary)
        assert trace["analysis"] == summary

    def test_analysis_omitted_by_default(self, timeline):
        assert "analysis" not in to_chrome_trace(timeline)


class TestWriteTrace:
    def test_round_trips_through_json(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(timeline, str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == len(
            to_chrome_trace(timeline)["traceEvents"])

    def test_fission_trace_shows_overlap(self, tmp_path):
        r = run_select_chain(500_000_000, 1, 0.5, Strategy.FISSION)
        trace = to_chrome_trace(r.timeline)
        h2d = [e for e in trace["traceEvents"]
               if e.get("cat") == "h2d"]
        kernels = [e for e in trace["traceEvents"]
                   if e.get("cat") == "kernel"]
        assert h2d and kernels
        # some kernel runs while some h2d is in flight
        overlap = any(
            k["ts"] < h["ts"] + h["dur"] and h["ts"] < k["ts"] + k["dur"]
            for k in kernels for h in h2d)
        assert overlap


class TestClusterTrace:
    def lanes(self):
        a, b = Timeline(), Timeline()
        a.add(0.0, 0.001, EventKind.KERNEL, "shard.compute", stream=0)
        b.add(0.001, 0.002, EventKind.HOST, "cluster.merge", nbytes=64)
        return [("device 0", a), ("cluster host", b)]

    def test_one_pid_per_lane(self):
        from repro.simgpu import cluster_chrome_trace
        trace = cluster_chrome_trace(self.lanes())
        names = {e["pid"]: e["args"]["name"]
                 for e in trace["traceEvents"]
                 if e.get("name") == "process_name"}
        assert names == {1: "device 0", 2: "cluster host"}
        complete = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert {e["pid"] for e in complete} == {1, 2}

    def test_lane_events_keep_their_timestamps(self):
        from repro.simgpu import cluster_chrome_trace
        trace = cluster_chrome_trace(self.lanes())
        merge = [e for e in trace["traceEvents"]
                 if e.get("ph") == "X" and e["name"] == "cluster.merge"]
        assert merge[0]["ts"] == pytest.approx(1000.0)

    def test_write_cluster_trace_round_trips(self, tmp_path):
        from repro.simgpu import cluster_chrome_trace, write_cluster_trace
        path = tmp_path / "cluster.json"
        write_cluster_trace(self.lanes(), str(path))
        loaded = json.loads(path.read_text())
        want = cluster_chrome_trace(self.lanes())
        assert len(loaded["traceEvents"]) == len(want["traceEvents"])

    def test_analysis_metadata_attached(self):
        from repro.simgpu import cluster_chrome_trace
        summary = {"errors": 0, "passes": ["cluster-lints"]}
        trace = cluster_chrome_trace(self.lanes(), analysis=summary)
        assert trace["analysis"] == summary

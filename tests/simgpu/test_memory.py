"""Tests for the device-memory tracker."""

import pytest

from repro.errors import DeviceOOMError
from repro.simgpu import DeviceMemory


@pytest.fixture
def mem():
    return DeviceMemory(capacity=1000)


class TestAlloc:
    def test_basic(self, mem):
        h = mem.alloc(100, "a")
        assert mem.in_use == 100
        assert mem.available == 900
        assert h is not None

    def test_oom(self, mem):
        mem.alloc(900)
        with pytest.raises(DeviceOOMError) as e:
            mem.alloc(200)
        assert e.value.requested == 200
        assert e.value.free == 100

    def test_exact_fit(self, mem):
        mem.alloc(1000)
        assert mem.available == 0

    def test_negative_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.alloc(-1)

    def test_fits(self, mem):
        mem.alloc(800)
        assert mem.fits(200)
        assert not mem.fits(201)


class TestFree:
    def test_free_releases(self, mem):
        h = mem.alloc(400)
        mem.free(h)
        assert mem.in_use == 0

    def test_double_free_rejected(self, mem):
        h = mem.alloc(10)
        mem.free(h)
        with pytest.raises(KeyError):
            mem.free(h)

    def test_invalid_handle(self, mem):
        with pytest.raises(KeyError):
            mem.free(999)

    def test_alloc_after_free(self, mem):
        h = mem.alloc(900)
        mem.free(h)
        mem.alloc(900)  # should not raise


class TestStats:
    def test_peak_tracks_high_water(self, mem):
        a = mem.alloc(600)
        mem.free(a)
        mem.alloc(100)
        assert mem.peak == 600
        assert mem.in_use == 100

    def test_total_allocated_accumulates(self, mem):
        a = mem.alloc(100)
        mem.free(a)
        mem.alloc(200)
        assert mem.total_allocated == 300

    def test_live_allocations(self, mem):
        a = mem.alloc(10, "x")
        mem.alloc(20, "y")
        mem.free(a)
        live = mem.live_allocations()
        assert [l.name for l in live] == ["y"]

    def test_reset(self, mem):
        mem.alloc(500)
        mem.reset()
        assert mem.in_use == 0
        assert mem.peak == 0
        assert mem.live_allocations() == []

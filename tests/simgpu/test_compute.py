"""Tests for the kernel timing model."""

import pytest

from repro.simgpu import DeviceSpec, KernelLaunchSpec, default_grid, kernel_duration, sms_requested
from repro.simgpu.compute import CONCURRENT_PENALTY, SPILL_BYTES_PER_REG


@pytest.fixture(scope="module")
def dev():
    return DeviceSpec()


def spec(n=1_000_000, ctas=112, threads=256, regs=20,
         reads=4e6, writes=2e6, insts=25e6, name="k"):
    return KernelLaunchSpec(name, n, ctas, threads, regs, reads, writes, insts)


class TestDuration:
    def test_empty_kernel_costs_launch(self, dev):
        s = spec(n=0)
        assert kernel_duration(dev, s) == dev.kernel_launch_s

    def test_includes_launch_overhead(self, dev):
        tiny = spec(n=1, reads=4, writes=2, insts=25)
        assert kernel_duration(dev, tiny) >= dev.kernel_launch_s

    def test_memory_bound_scaling(self, dev):
        t1 = kernel_duration(dev, spec(reads=1e9, insts=1))
        t2 = kernel_duration(dev, spec(reads=2e9, insts=1))
        assert t2 / t1 == pytest.approx(2.0, rel=0.01)

    def test_instruction_bound_scaling(self, dev):
        t1 = kernel_duration(dev, spec(reads=1, insts=1e10))
        t2 = kernel_duration(dev, spec(reads=1, insts=2e10))
        assert t2 / t1 == pytest.approx(2.0, rel=0.01)

    def test_roofline_max_not_sum(self, dev):
        mem_only = kernel_duration(dev, spec(reads=1e9, insts=1))
        inst_only = kernel_duration(dev, spec(reads=1, insts=25e6))
        both = kernel_duration(dev, spec(reads=1e9, insts=25e6))
        assert both <= mem_only + inst_only
        assert both >= max(mem_only, inst_only) * 0.99

    def test_concurrent_penalty(self, dev):
        s = spec()
        solo = kernel_duration(dev, s, concurrent=False)
        shared = kernel_duration(dev, s, concurrent=True)
        assert shared == pytest.approx(solo / CONCURRENT_PENALTY)

    def test_fewer_sms_slower(self, dev):
        s = spec(reads=1e9)
        assert kernel_duration(dev, s, granted_sms=7) > kernel_duration(dev, s, granted_sms=14)


class TestSpill:
    def test_register_spill_adds_traffic(self, dev):
        ok = spec(regs=63)
        spilled = spec(regs=70)
        t_ok = kernel_duration(dev, ok)
        t_sp = kernel_duration(dev, spilled)
        assert t_sp > t_ok
        # the extra time corresponds to spill traffic
        extra_bytes = 7 * SPILL_BYTES_PER_REG * spilled.num_elements
        assert t_sp - t_ok == pytest.approx(extra_bytes / dev.mem_bw, rel=0.2)

    def test_spill_grows_with_excess(self, dev):
        t70 = kernel_duration(dev, spec(regs=70, reads=1e9))
        t90 = kernel_duration(dev, spec(regs=90, reads=1e9))
        assert t90 > t70


class TestGrid:
    def test_default_grid_caps_ctas(self, dev):
        ctas, threads = default_grid(10**9, dev)
        assert ctas == 8 * dev.num_sms
        assert threads == 256

    def test_small_n_fewer_ctas(self, dev):
        ctas, _ = default_grid(512, dev)
        assert ctas == 2

    def test_resource_fraction_halves(self, dev):
        ctas, threads = default_grid(10**9, dev, resource_fraction=0.5)
        assert ctas == 4 * dev.num_sms
        assert threads == 128

    def test_half_resources_half_throughput_large_n(self, dev):
        """Fig 12: the 'new' (half threads/CTAs) configuration runs at
        roughly half speed for large inputs."""
        n = 50_000_000
        full_ctas, full_threads = default_grid(n, dev)
        half_ctas, half_threads = default_grid(n, dev, resource_fraction=0.5)
        # instruction-heavy kernel, as SELECT's filter is
        full = kernel_duration(dev, KernelLaunchSpec(
            "f", n, full_ctas, full_threads, 20, 4.0 * n, 2.0 * n, 80.0 * n))
        half = kernel_duration(dev, KernelLaunchSpec(
            "h", n, half_ctas, half_threads, 20, 4.0 * n, 2.0 * n, 80.0 * n))
        assert half / full == pytest.approx(2.0, rel=0.15)


class TestScaled:
    def test_scaled_spec(self):
        s = spec()
        s2 = s.scaled(0.5)
        assert s2.num_elements == s.num_elements // 2
        assert s2.bytes_read == s.bytes_read / 2
        assert s2.instructions == s.instructions / 2
        assert s2.num_ctas == s.num_ctas  # grid unchanged

    def test_total_traffic(self):
        assert spec(reads=10, writes=5).total_traffic == 15

    def test_sms_requested_bounded(self, dev):
        assert 1 <= sms_requested(dev, spec()) <= dev.num_sms

"""Tests of the calibration constants' derived quantities and invariants."""

from repro.simgpu import DEFAULT_CALIBRATION, GpuCalibration


class TestGpu:
    def test_inst_rate(self):
        g = DEFAULT_CALIBRATION.gpu
        assert g.inst_rate == g.num_sms * g.cores_per_sm * g.clock_hz * g.ipc

    def test_effective_bw_below_peak(self):
        g = DEFAULT_CALIBRATION.gpu
        assert g.mem_bw == g.mem_bw_peak * g.mem_bw_efficiency
        assert g.mem_bw < g.mem_bw_peak

    def test_max_resident_threads(self):
        g = DEFAULT_CALIBRATION.gpu
        assert g.max_resident_threads == 14 * 1536

    def test_mem_saturates_before_inst(self):
        g = DEFAULT_CALIBRATION.gpu
        assert g.saturation_residency_mem < g.saturation_residency

    def test_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CALIBRATION.gpu.ipc = 2.0  # type: ignore[misc]

    def test_custom_calibration(self):
        g = GpuCalibration(num_sms=16)
        assert g.max_resident_threads == 16 * 1536


class TestPcie:
    def test_pinned_faster_asymptotically(self):
        p = DEFAULT_CALIBRATION.pcie
        assert p.pinned_h2d_bw > p.paged_h2d_bw
        assert p.pinned_d2h_bw > p.paged_d2h_bw

    def test_all_below_theoretical(self):
        p = DEFAULT_CALIBRATION.pcie
        for bw in (p.pinned_h2d_bw, p.pinned_d2h_bw, p.paged_h2d_bw, p.paged_d2h_bw):
            assert bw < 8e9


class TestCpu:
    def test_table2_values(self):
        c = DEFAULT_CALIBRATION.cpu
        assert c.num_threads == 16
        assert c.host_mem_bytes == 48 * (1 << 30)

    def test_write_slower_than_read(self):
        c = DEFAULT_CALIBRATION.cpu
        assert c.write_bw < c.read_bw

"""Model-coherence tests: the simulator must respond to its knobs.

These guard against a calibration becoming decorative: doubling a
bandwidth must actually halve the corresponding time, everywhere it is
supposed to matter and nowhere else.
"""

import dataclasses

import pytest

from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.runtime.select_chain import select_chain_plan
from repro.simgpu import (
    Calibration,
    DEFAULT_CALIBRATION,
    DeviceSpec,
    GpuCalibration,
    KernelLaunchSpec,
    PcieCalibration,
    kernel_duration,
)


def device_with(gpu: GpuCalibration | None = None,
                pcie: PcieCalibration | None = None) -> DeviceSpec:
    calib = Calibration(
        gpu=gpu or DEFAULT_CALIBRATION.gpu,
        pcie=pcie or DEFAULT_CALIBRATION.pcie,
        cpu=DEFAULT_CALIBRATION.cpu,
    )
    return DeviceSpec(calib=calib)


def run(device, strategy=Strategy.SERIAL, n=200_000_000, transfers=True):
    ex = Executor(device)
    return ex.run(select_chain_plan(2), {"input": n},
                  ExecutionConfig(strategy=strategy,
                                  include_transfers=transfers))


class TestBandwidthKnobs:
    def test_memory_bandwidth_scales_mem_bound_kernels(self):
        base = device_with()
        fast = device_with(gpu=dataclasses.replace(
            DEFAULT_CALIBRATION.gpu, mem_bw_efficiency=0.66))
        n = 10_000_000
        spec = KernelLaunchSpec("k", n, 112, 256, 20,
                                bytes_read=40.0 * n, bytes_written=0.0,
                                instructions=1.0 * n)
        t_base = kernel_duration(base, spec)
        t_fast = kernel_duration(fast, spec)
        assert t_base / t_fast == pytest.approx(2.0, rel=0.02)

    def test_memory_bandwidth_irrelevant_to_inst_bound_kernels(self):
        base = device_with()
        fast = device_with(gpu=dataclasses.replace(
            DEFAULT_CALIBRATION.gpu, mem_bw_efficiency=0.66))
        n = 10_000_000
        spec = KernelLaunchSpec("k", n, 112, 256, 20,
                                bytes_read=1.0, bytes_written=0.0,
                                instructions=500.0 * n)
        assert kernel_duration(base, spec) == pytest.approx(
            kernel_duration(fast, spec), rel=1e-6)

    def test_pcie_bandwidth_scales_io(self):
        base = run(device_with())
        fast_pcie = dataclasses.replace(
            DEFAULT_CALIBRATION.pcie,
            pinned_h2d_bw=DEFAULT_CALIBRATION.pcie.pinned_h2d_bw * 2,
            pinned_d2h_bw=DEFAULT_CALIBRATION.pcie.pinned_d2h_bw * 2)
        fast = run(device_with(pcie=fast_pcie))
        assert fast.io_time == pytest.approx(base.io_time / 2, rel=0.02)
        assert fast.compute_time == pytest.approx(base.compute_time, rel=1e-6)

    def test_clock_scales_inst_bound_work(self):
        base = device_with()
        fast = device_with(gpu=dataclasses.replace(
            DEFAULT_CALIBRATION.gpu, clock_hz=2.30e9))
        n = 10_000_000
        spec = KernelLaunchSpec("k", n, 112, 256, 20, 1.0, 0.0, 500.0 * n)
        assert (kernel_duration(base, spec)
                / kernel_duration(fast, spec)) == pytest.approx(2.0, rel=0.02)


class TestMonotonicity:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_makespan_nondecreasing_in_n(self, strategy):
        device = DeviceSpec()
        times = [run(device, strategy, n).makespan
                 for n in (10**7, 10**8, 5 * 10**8, 2 * 10**9)]
        assert times == sorted(times)

    def test_throughput_saturates(self):
        device = DeviceSpec()
        tputs = [run(device, Strategy.FUSED, n).throughput
                 for n in (10**7, 10**8, 10**9)]
        # throughput grows (overheads amortize) then levels off
        assert tputs[1] > tputs[0] * 0.99
        assert abs(tputs[2] - tputs[1]) / tputs[1] < 0.6

    def test_bigger_device_memory_removes_chunking(self):
        small = device_with()  # 6 GB
        big_gpu = dataclasses.replace(DEFAULT_CALIBRATION.gpu,
                                      global_mem_bytes=64 * (1 << 30))
        big = device_with(gpu=big_gpu)
        n = 3_000_000_000
        r_small = run(small, Strategy.SERIAL, n)
        r_big = run(big, Strategy.SERIAL, n)
        assert r_small.num_chunks > 1
        assert r_big.num_chunks == 1

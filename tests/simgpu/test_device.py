"""Tests for the device model: occupancy, utilization, environment."""

import pytest

from repro.simgpu import DeviceSpec, describe_environment


@pytest.fixture(scope="module")
def dev():
    return DeviceSpec()


class TestSpecs:
    def test_c2070_parameters(self, dev):
        # Table II: Tesla C2070, 6 GB
        assert dev.global_mem_bytes == 6 * (1 << 30)
        assert dev.num_sms == 14
        assert dev.calib.gpu.cores_per_sm * dev.num_sms == 448

    def test_effective_bandwidth_below_peak(self, dev):
        assert dev.mem_bw < dev.calib.gpu.mem_bw_peak

    def test_two_copy_engines(self, dev):
        assert dev.num_copy_engines == 2


class TestOccupancy:
    def test_thread_limited(self, dev):
        occ = dev.occupancy(threads_per_cta=1024, regs_per_thread=8)
        assert occ.ctas_per_sm == 1
        assert occ.limited_by == "threads"

    def test_register_limited(self, dev):
        occ = dev.occupancy(threads_per_cta=256, regs_per_thread=60)
        # 32768 / (60*256) = 2.13 -> 2 CTAs
        assert occ.ctas_per_sm == 2
        assert occ.limited_by == "registers"

    def test_slot_limited(self, dev):
        occ = dev.occupancy(threads_per_cta=64, regs_per_thread=8)
        assert occ.ctas_per_sm == dev.calib.gpu.max_ctas_per_sm
        assert occ.limited_by == "cta_slots"

    def test_shared_memory_limited(self, dev):
        occ = dev.occupancy(threads_per_cta=64, regs_per_thread=8,
                            shared_bytes_per_cta=24 * 1024)
        assert occ.ctas_per_sm == 2
        assert occ.limited_by == "shared_memory"

    def test_regs_clamped_to_fermi_max(self, dev):
        # beyond 63 regs/thread the compiler spills; occupancy uses the cap
        occ_63 = dev.occupancy(256, 63)
        occ_200 = dev.occupancy(256, 200)
        assert occ_200.ctas_per_sm == occ_63.ctas_per_sm

    def test_resident_threads(self, dev):
        occ = dev.occupancy(256, 20)
        assert occ.resident_threads == occ.ctas_per_sm * 256

    def test_more_registers_never_increase_occupancy(self, dev):
        prev = None
        for regs in (8, 16, 24, 32, 48, 63):
            occ = dev.occupancy(256, regs)
            if prev is not None:
                assert occ.ctas_per_sm <= prev
            prev = occ.ctas_per_sm

    def test_occupancy_fraction_is_residency_ratio(self, dev):
        # regression: the fraction used to be a placeholder constant;
        # it must equal resident threads over the SM thread ceiling
        occ = dev.occupancy(256, 20)
        ceiling = dev.calib.gpu.max_threads_per_sm
        assert occ.max_threads_per_sm == ceiling
        assert occ.occupancy_fraction == pytest.approx(
            occ.resident_threads / ceiling)
        assert 0.0 < occ.occupancy_fraction <= 1.0

    def test_occupancy_fraction_full_residency_is_one(self, dev):
        # 512 threads x 3 CTAs = 1536 = the Fermi per-SM ceiling
        occ = dev.occupancy(threads_per_cta=512, regs_per_thread=8)
        assert occ.resident_threads == dev.calib.gpu.max_threads_per_sm
        assert occ.occupancy_fraction == 1.0

    def test_occupancy_fraction_unknown_ceiling_is_zero(self):
        from repro.simgpu.device import Occupancy
        occ = Occupancy(ctas_per_sm=2, resident_threads=512,
                        limited_by="threads")
        assert occ.occupancy_fraction == 0.0


class TestUtilization:
    def test_full_residency_is_peak(self, dev):
        assert dev.utilization(dev.calib.gpu.max_resident_threads) == 1.0

    def test_ramps_with_threads(self, dev):
        u1 = dev.utilization(1000)
        u2 = dev.utilization(4000)
        assert u1 < u2 <= 1.0

    def test_half_residency_half_inst_throughput(self, dev):
        """The Fig 12 'no stream (new)' effect: ~half threads -> ~half
        instruction throughput."""
        full = dev.calib.gpu.saturation_residency * dev.calib.gpu.max_resident_threads
        assert dev.utilization(int(full / 2), kind="inst") == pytest.approx(0.5, rel=0.01)

    def test_memory_saturates_earlier_than_inst(self, dev):
        threads = 7000
        assert dev.utilization(threads, kind="mem") >= dev.utilization(threads, kind="inst")

    def test_granted_sms_scale_peak(self, dev):
        full = dev.utilization(10**6, granted_sms=14)
        half = dev.utilization(10**6, granted_sms=7)
        assert half == pytest.approx(full / 2)

    def test_sms_needed(self, dev):
        occ = dev.occupancy(256, 20)
        assert dev.sms_needed(occ.ctas_per_sm * 3, occ) == 3
        assert dev.sms_needed(10**6, occ) == dev.num_sms


class TestDescribe:
    def test_environment_mentions_hardware(self, dev):
        text = describe_environment(dev)
        assert "C2070" in text
        assert "Xeon" in text
        assert "PCIe" in text

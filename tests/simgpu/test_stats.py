"""Tests for the timeline utilization analysis."""

import pytest

from repro.runtime import Strategy
from repro.runtime.select_chain import run_select_chain
from repro.simgpu import EventKind, Timeline
from repro.simgpu.stats import analyze, describe


def tl_of(*events):
    tl = Timeline()
    for s, e, kind, tag in events:
        tl.add(s, e, kind, tag)
    return tl


class TestAnalyze:
    def test_empty(self):
        r = analyze(Timeline())
        assert r.makespan == 0.0
        assert r.pipeline_efficiency == 0.0

    def test_single_event_fully_busy(self):
        r = analyze(tl_of((0, 2, EventKind.KERNEL, "k")))
        assert r.makespan == 2.0
        assert r.busy_fraction(EventKind.KERNEL) == 1.0
        assert r.overlap_histogram == {1: 2.0}

    def test_serial_schedule(self):
        r = analyze(tl_of((0, 1, EventKind.H2D, "a"),
                          (1, 2, EventKind.KERNEL, "k"),
                          (2, 3, EventKind.D2H, "d")))
        assert r.serial_fraction == pytest.approx(1.0)
        assert r.overlap_fraction == pytest.approx(0.0)

    def test_overlapping_schedule(self):
        r = analyze(tl_of((0, 2, EventKind.H2D, "a"),
                          (0, 2, EventKind.KERNEL, "k")))
        assert r.overlap_histogram == {2: 2.0}
        assert r.overlap_fraction == pytest.approx(1.0)

    def test_gap_counts_as_zero_active(self):
        r = analyze(tl_of((0, 1, EventKind.H2D, "a"),
                          (3, 4, EventKind.KERNEL, "k")))
        assert r.overlap_histogram.get(0, 0.0) == pytest.approx(2.0)

    def test_pipeline_efficiency_perfect(self):
        r = analyze(tl_of((0, 2, EventKind.H2D, "a"),
                          (0, 2, EventKind.KERNEL, "k")))
        assert r.pipeline_efficiency == pytest.approx(1.0)

    def test_histogram_sums_to_makespan(self):
        r = analyze(tl_of((0, 2, EventKind.H2D, "a"),
                          (1, 4, EventKind.KERNEL, "k"),
                          (3, 5, EventKind.D2H, "d")))
        assert sum(r.overlap_histogram.values()) == pytest.approx(r.makespan)


class TestOnRealSchedules:
    def test_fission_overlaps_serial_does_not(self):
        n = 500_000_000
        serial = analyze(run_select_chain(n, 1, 0.5, Strategy.SERIAL).timeline)
        fission = analyze(run_select_chain(n, 1, 0.5, Strategy.FISSION).timeline)
        assert serial.overlap_fraction < 0.05
        assert fission.overlap_fraction > 0.3
        assert (fission.busy_fraction(EventKind.H2D)
                > serial.busy_fraction(EventKind.H2D))

    @pytest.mark.no_chaos  # asserts near-saturated engine utilization
    def test_fission_h2d_nearly_saturated(self):
        r = analyze(run_select_chain(2_000_000_000, 1, 0.5,
                                     Strategy.FISSION).timeline)
        # the H2D engine saturates the *device* phase; the trailing CPU
        # gather (host engine) extends the makespan past it
        device_phase = r.makespan - r.busy.get("host", 0.0)
        assert r.busy["h2d"] / device_phase > 0.9

    def test_describe_renders(self):
        r = analyze(run_select_chain(100_000_000, 1, 0.5,
                                     Strategy.SERIAL).timeline)
        text = describe(r)
        assert "makespan" in text
        assert "h2d" in text

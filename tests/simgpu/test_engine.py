"""Tests for the discrete-event stream engine."""

import pytest

from repro.errors import SchedulingError
from repro.simgpu import (
    DeviceSpec,
    EventKind,
    KernelLaunchSpec,
    SimEngine,
    SimStream,
)
from repro.simgpu.pcie import Direction, HostMemory


@pytest.fixture()
def dev():
    return DeviceSpec()


@pytest.fixture()
def engine(dev):
    return SimEngine(dev)


def kspec(name="k", n=10_000_000):
    return KernelLaunchSpec(name, n, 112, 256, 20, 4.0 * n, 2.0 * n, 40.0 * n)


class TestInOrderStreams:
    def test_commands_serialize_within_stream(self, engine):
        s = SimStream(0).h2d(1e8).kernel(kspec()).d2h(5e7)
        tl = engine.run([s])
        evs = sorted(tl.events, key=lambda e: e.start)
        assert [e.kind for e in evs] == [EventKind.H2D, EventKind.KERNEL, EventKind.D2H]
        for a, b in zip(evs, evs[1:]):
            assert b.start >= a.end

    def test_empty_stream(self, engine):
        assert engine.run([SimStream(0)]).events == []

    def test_host_command(self, engine):
        s = SimStream(0).host(0.5, tag="gather")
        tl = engine.run([s])
        assert tl.total_time(EventKind.HOST) == 0.5


class TestOverlap:
    def test_h2d_overlaps_kernel_across_streams(self, engine):
        """The C2070 concurrency envelope: transfer + compute in parallel."""
        s0 = SimStream(0).kernel(kspec("k0"))
        s1 = SimStream(1).h2d(2e8)
        tl = engine.run([s0, s1])
        k = tl.filter(EventKind.KERNEL)[0]
        h = tl.filter(EventKind.H2D)[0]
        assert k.start == h.start == 0.0  # truly concurrent

    def test_h2d_and_d2h_use_separate_engines(self, engine):
        s0 = SimStream(0).h2d(2e8)
        s1 = SimStream(1).d2h(2e8)
        tl = engine.run([s0, s1])
        assert all(e.start == 0.0 for e in tl.events)

    def test_same_direction_transfers_serialize(self, engine):
        s0 = SimStream(0).h2d(2e8)
        s1 = SimStream(1).h2d(2e8)
        tl = engine.run([s0, s1])
        evs = sorted(tl.filter(EventKind.H2D), key=lambda e: e.start)
        assert evs[1].start >= evs[0].end

    @pytest.mark.no_chaos  # asserts exact three-way engine overlap
    def test_three_way_overlap(self, engine):
        """One kernel + one download + one upload simultaneously (>= 3
        streams exploit both copy engines, paper SS IV-B)."""
        s0 = SimStream(0).h2d(2e8)
        s1 = SimStream(1).kernel(kspec())
        s2 = SimStream(2).d2h(2e8)
        tl = engine.run([s0, s1, s2])
        assert all(e.start == 0.0 for e in tl.events)

    @pytest.mark.no_chaos  # asserts exact dispatch order
    def test_fifo_across_streams(self, engine):
        """Same-engine commands dispatch in enqueue order, not stream order."""
        s0, s1, s2 = SimStream(0), SimStream(1), SimStream(2)
        # interleaved enqueue: seg0->s0, seg1->s1, seg2->s2, seg3->s0 ...
        for i in range(6):
            [s0, s1, s2][i % 3].h2d(1e7, tag=f"seg{i}")
        tl = engine.run([s0, s1, s2])
        order = [e.tag for e in sorted(tl.events, key=lambda e: e.start)]
        assert order == [f"seg{i}" for i in range(6)]


class TestComputeSharing:
    def test_concurrent_kernels_split_sms(self, engine, dev):
        n = 20_000_000
        half = KernelLaunchSpec("h", n, 56, 128, 20, 4.0 * n, 2.0 * n, 80.0 * n)
        solo_tl = engine.run([SimStream(0).kernel(half)])
        solo = solo_tl.makespan
        s0 = SimStream(0).kernel(half)
        s1 = SimStream(1).kernel(half)
        both = SimEngine(dev).run([s0, s1])
        # the two half-size kernels co-run: total well below 2x solo
        assert both.makespan < 1.5 * solo
        ks = both.filter(EventKind.KERNEL)
        assert ks[0].start == ks[1].start == 0.0

    def test_full_kernels_serialize(self, engine, dev):
        full = kspec(n=50_000_000)
        s0 = SimStream(0).kernel(full)
        s1 = SimStream(1).kernel(full)
        tl = engine.run([s0, s1])
        evs = sorted(tl.filter(EventKind.KERNEL), key=lambda e: e.start)
        assert evs[1].start >= evs[0].end


class TestEventsAndThunks:
    def test_signal_wait_ordering(self, engine):
        s0, s1 = SimStream(0), SimStream(1)
        eid = engine.new_event_id()
        s0.h2d(2e8, tag="producer").signal(eid)
        s1.wait_event(eid).d2h(1e8, tag="consumer")
        tl = engine.run([s0, s1])
        prod = [e for e in tl.events if e.tag == "producer"][0]
        cons = [e for e in tl.events if e.tag == "consumer"][0]
        assert cons.start >= prod.end

    def test_wait_for_never_signaled_deadlocks(self, engine):
        s = SimStream(0).wait_event(12345)
        with pytest.raises(SchedulingError, match="deadlock"):
            engine.run([s])

    def test_deadlock_among_many_streams(self, engine):
        """Progress elsewhere must not mask one stream's stuck wait."""
        s0 = SimStream(0).h2d(1e7).wait_event(999)
        s1 = SimStream(1).kernel(kspec())
        with pytest.raises(SchedulingError, match="deadlock"):
            engine.run([s0, s1])

    def test_sync_events_recorded(self, engine):
        """Signals and satisfied waits appear on the timeline as
        zero-duration SYNC events (so the sanitizer can audit them)."""
        s0, s1 = SimStream(0), SimStream(1)
        eid = engine.new_event_id()
        s0.h2d(2e8, tag="producer").signal(eid)
        s1.wait_event(eid).d2h(1e8, tag="consumer")
        tl = engine.run([s0, s1])
        syncs = sorted(tl.filter(EventKind.SYNC), key=lambda e: e.start)
        assert [e.tag for e in syncs] == [f"signal:{eid}", f"wait:{eid}"]
        assert all(e.duration == 0.0 for e in syncs)
        assert syncs[0].stream == 0 and syncs[1].stream == 1
        assert syncs[1].start >= syncs[0].end

    def test_no_sync_events_without_sync_commands(self, engine):
        tl = engine.run([SimStream(0).h2d(1e7).d2h(1e7)])
        assert tl.filter(EventKind.SYNC) == []

    def test_thunks_run_in_completion_order(self, engine):
        calls = []
        s = SimStream(0)
        s.h2d(1e7, tag="a", thunk=lambda: calls.append("a"))
        s.kernel(kspec(), thunk=lambda: calls.append("k"))
        s.d2h(1e7, tag="b", thunk=lambda: calls.append("b"))
        engine.run([s])
        assert calls == ["a", "k", "b"]

    def test_kernel_without_spec_rejected(self, engine):
        from repro.simgpu.engine import KernelCommand
        s = SimStream(0)
        s.enqueue(KernelCommand(tag="broken"))
        with pytest.raises(SchedulingError):
            engine.run([s])


class TestTimelineContents:
    def test_bytes_recorded(self, engine):
        tl = engine.run([SimStream(0).h2d(123.0)])
        assert tl.events[0].nbytes == 123.0

    def test_stream_ids_recorded(self, engine):
        s0 = SimStream(0).h2d(1e6)
        s5 = SimStream(5).d2h(1e6)
        tl = engine.run([s0, s5])
        assert {e.stream for e in tl.events} == {0, 5}

    def test_start_time_offset(self, engine):
        tl = engine.run([SimStream(0).h2d(1e6)], start_time=10.0)
        assert tl.events[0].start == 10.0

    def test_pinned_faster_than_paged(self, engine, dev):
        tp = engine.run([SimStream(0).h2d(2e8, HostMemory.PINNED)]).makespan
        tg = SimEngine(dev).run([SimStream(0).h2d(2e8, HostMemory.PAGED)]).makespan
        assert tp < tg

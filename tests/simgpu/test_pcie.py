"""Tests for the PCIe transfer model (Fig 4(b) shapes)."""

import pytest

from repro.simgpu import DEFAULT_CALIBRATION, Direction, HostMemory, PcieModel


@pytest.fixture(scope="module")
def pcie():
    return PcieModel(DEFAULT_CALIBRATION.pcie)

ALL = [(d, m) for d in Direction for m in HostMemory]


class TestBandwidth:
    def test_pinned_beats_paged(self, pcie):
        for d in Direction:
            for size in (1e6, 1e8, 1e9):
                assert (pcie.bandwidth(size, d, HostMemory.PINNED)
                        > pcie.bandwidth(size, d, HostMemory.PAGED))

    def test_small_transfers_see_lower_bandwidth(self, pcie):
        for d, m in ALL:
            assert pcie.bandwidth(1e5, d, m) < pcie.bandwidth(1e8, d, m)

    def test_below_theoretical_8gbs(self, pcie):
        # the paper: measured bandwidth is well below PCIe 2.0's 8 GB/s
        for d, m in ALL:
            assert pcie.bandwidth(4e8, d, m) < 8e9

    def test_pinned_advantage_shrinks_at_large_sizes(self, pcie):
        """Fig 4(b): 'when the data size becomes large, its advantage
        reduces'."""
        mid, big = 4e8, 2.4e9
        adv_mid = (pcie.bandwidth(mid, Direction.H2D, HostMemory.PINNED)
                   / pcie.bandwidth(mid, Direction.H2D, HostMemory.PAGED))
        adv_big = (pcie.bandwidth(big, Direction.H2D, HostMemory.PINNED)
                   / pcie.bandwidth(big, Direction.H2D, HostMemory.PAGED))
        assert adv_big < adv_mid

    def test_paged_unaffected_by_degradation(self, pcie):
        b1 = pcie.bandwidth(1e9, Direction.D2H, HostMemory.PAGED)
        b2 = pcie.bandwidth(3e9, Direction.D2H, HostMemory.PAGED)
        assert b2 >= b1 * 0.99


class TestTransferTime:
    def test_zero_bytes_is_free(self, pcie):
        assert pcie.transfer_time(0, Direction.H2D, HostMemory.PINNED) == 0.0

    def test_includes_latency(self, pcie):
        tiny = pcie.transfer_time(1, Direction.H2D, HostMemory.PINNED)
        assert tiny >= pcie.calib.latency_s

    def test_monotone_in_size(self, pcie):
        prev = 0.0
        for size in (1e4, 1e6, 1e8, 1e9, 4e9):
            t = pcie.transfer_time(size, Direction.H2D, HostMemory.PINNED)
            assert t > prev
            prev = t

    def test_effective_bandwidth_below_model_bandwidth(self, pcie):
        for d, m in ALL:
            assert (pcie.effective_bandwidth(1e7, d, m)
                    <= pcie.bandwidth(1e7, d, m))

    def test_gigabyte_transfer_time_plausible(self, pcie):
        # ~1 GB over ~5 GB/s pinned: roughly 0.15-0.3 s
        t = pcie.transfer_time(1e9, Direction.H2D, HostMemory.PINNED)
        assert 0.1 < t < 0.5

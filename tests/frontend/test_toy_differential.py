"""Frontend differential tests on a small synthetic schema.

Each case compiles through the full pipeline (parse -> bind -> lower ->
plan interpreter) and must agree byte-for-byte with the NumPy reference
interpreter.  The two executors share only the arithmetic kernels, so
agreement here checks pushdown, decorrelation, and the join/aggregate
lowering against a naive evaluation order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import Catalog, Column, Table, validate_sql
from repro.ra.relation import Relation

CAT = Catalog([
    Table("sales", (
        Column("sale_k", "int"),
        Column("s_cust", "int"),
        Column("s_amount", "float"),
        Column("s_qty", "int"),
        Column("s_day", "date"),
        Column("s_tag", "code", pool=("red", "green", "blue")),
    )),
    Table("cust", (
        Column("c_cust", "int"),
        Column("c_nation", "int"),
        Column("c_name", "str"),
    )),
    Table("nation", (
        Column("n_nation", "int"),
        Column("n_name", "code",
               pool=("ALPHA", "BETA", "GAMMA", "DELTA", "EPSILON")),
    )),
])


def _tables(seed: int = 0, n: int = 400) -> dict[str, Relation]:
    rng = np.random.default_rng(seed)
    return {
        "sales": Relation({
            "sale_k": np.arange(n, dtype=np.int32),
            "s_cust": rng.integers(0, 40, n).astype(np.int32),
            "s_amount": rng.uniform(0, 100, n).astype(np.float32),
            "s_qty": rng.integers(1, 10, n).astype(np.int32),
            "s_day": rng.integers(0, 1000, n).astype(np.int32),
            "s_tag": rng.integers(0, 3, n).astype(np.int32),
        }),
        "cust": Relation({
            "c_cust": np.arange(40, dtype=np.int32),
            "c_nation": rng.integers(0, 5, 40).astype(np.int32),
            "c_name": np.array([f"cust#{i:03d}" for i in range(40)]),
        }),
        "nation": Relation({
            "n_nation": np.arange(5, dtype=np.int32),
            "n_name": np.arange(5, dtype=np.int32),
        }),
    }


CASES = {
    "join_chain": """
        SELECT n_name, SUM(s_amount) AS total
        FROM sales, cust, nation
        WHERE s_cust = c_cust AND c_nation = n_nation
          AND s_amount > 10
        GROUP BY n_name
        ORDER BY total DESC
    """,
    "left_join_count": """
        SELECT c_cust, COUNT(sale_k) AS n_sales
        FROM cust LEFT JOIN sales ON c_cust = s_cust
        GROUP BY c_cust
    """,
    "exists_corr": """
        SELECT c_name
        FROM cust
        WHERE EXISTS (
            SELECT s_cust FROM sales
            WHERE s_cust = c_cust AND s_amount > 90)
    """,
    "not_exists_corr": """
        SELECT c_name
        FROM cust
        WHERE NOT EXISTS (
            SELECT s_cust FROM sales
            WHERE s_cust = c_cust AND s_amount > 90)
    """,
    "in_subquery": """
        SELECT sale_k, s_amount
        FROM sales
        WHERE s_cust IN (SELECT c_cust FROM cust WHERE c_nation = 3)
    """,
    "not_in_subquery": """
        SELECT sale_k
        FROM sales
        WHERE s_cust NOT IN (SELECT c_cust FROM cust WHERE c_nation = 0)
    """,
    "scalar_uncorrelated": """
        SELECT sale_k, s_amount
        FROM sales
        WHERE s_amount > (SELECT AVG(s_amount) AS m FROM sales)
    """,
    "scalar_correlated": """
        SELECT sale_k
        FROM sales
        WHERE s_amount > (
            SELECT AVG(s2.s_amount) AS m FROM sales AS s2
            WHERE s2.s_cust = sales.s_cust)
    """,
    "case_like_having": """
        SELECT c_name,
               SUM(CASE WHEN s_tag = 'red' THEN s_amount ELSE 0 END) AS red
        FROM sales, cust
        WHERE s_cust = c_cust AND c_name LIKE 'cust#0%'
        GROUP BY c_name
        HAVING SUM(s_qty) > 5
    """,
    "top_n": """
        SELECT sale_k, s_amount
        FROM sales
        WHERE s_day >= 100
        ORDER BY s_amount DESC, sale_k
        LIMIT 7
    """,
    "union_all": """
        SELECT sale_k FROM sales WHERE s_tag = 'red'
        UNION ALL
        SELECT sale_k FROM sales WHERE s_amount > 95
    """,
    "except_all": """
        SELECT s_cust FROM sales WHERE s_amount > 20
        EXCEPT
        SELECT c_cust AS s_cust FROM cust WHERE c_nation = 2
    """,
    "count_distinct": """
        SELECT s_tag, COUNT(DISTINCT s_cust) AS n_cust
        FROM sales
        GROUP BY s_tag
    """,
    "date_extract": """
        SELECT EXTRACT(YEAR FROM s_day) AS yr, SUM(s_amount) AS total
        FROM sales
        GROUP BY yr
        ORDER BY yr
    """,
}


@pytest.fixture(scope="module")
def tables():
    return _tables()


@pytest.mark.parametrize("name", sorted(CASES))
def test_case_validates(name, tables):
    report = validate_sql(name, CASES[name], CAT, tables)
    assert report.status == "ok", f"{name}: {report.detail}"
    assert report.rows > 0, f"{name} returned no rows (degenerate case)"


@pytest.mark.parametrize("seed", [1, 2])
def test_seeds_validate(seed):
    tables = _tables(seed)
    for name, sql in CASES.items():
        report = validate_sql(name, sql, CAT, tables)
        assert report.status == "ok", f"{name}@seed{seed}: {report.detail}"

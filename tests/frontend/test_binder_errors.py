"""Binder error paths: every rejection carries a stable, specific message.

The messages are part of the CLI contract (``repro sql`` prints them
verbatim), so these tests pin the exact text.
"""

from __future__ import annotations

import pytest

from repro.frontend import BindError, Catalog, Column, Table, bind_sql
from repro.sql.lexer import SqlError

CAT = Catalog([
    Table("t", (
        Column("a", "int"),
        Column("b", "float"),
        Column("name", "str"),
        Column("tag", "code", pool=("red", "green", "blue")),
        Column("day", "date"),
    )),
    Table("u", (
        Column("a", "int"),
        Column("c", "int"),
    )),
])


def _err(sql: str) -> str:
    with pytest.raises(BindError) as exc:
        bind_sql(sql, CAT)
    return str(exc.value)


class TestUnknownNames:
    def test_unknown_column(self):
        assert _err("SELECT x FROM t") == "unknown column 'x'"

    def test_unknown_qualified_column(self):
        assert _err("SELECT t.x FROM t") == \
            "unknown column 'x' in table 't'"

    def test_unknown_table(self):
        msg = _err("SELECT a FROM missing")
        assert msg == "unknown table 'missing'; have ['t', 'u']"

    def test_unknown_alias(self):
        assert _err("SELECT z.a FROM t") == "unknown table or alias 'z'"

    def test_alias_shadows_table_name(self):
        # once 't' is aliased, the bare table name is no longer in scope
        assert _err("SELECT t.a FROM t AS s") == "unknown table or alias 't'"


class TestAmbiguity:
    def test_ambiguous_unqualified_column(self):
        assert _err("SELECT a FROM t, u") == \
            "ambiguous column 'a': present in t, u"

    def test_qualification_resolves_ambiguity(self):
        bound = bind_sql("SELECT t.a AS ta FROM t, u WHERE t.a = u.c", CAT)
        assert [i.alias for i in bound.items] == ["ta"]


class TestTypeMismatch:
    def test_int_vs_string_literal(self):
        assert _err("SELECT a FROM t WHERE a = 'x'") == \
            "type mismatch: cannot compare a (int) with 'x' (str)"

    def test_string_vs_numeric_column(self):
        msg = _err("SELECT a FROM t WHERE name = b")
        assert msg == "type mismatch: cannot compare name (str) with b (float)"

    def test_string_ordering_comparison(self):
        assert _err("SELECT a FROM t WHERE name < 'x'") == \
            "ordering comparisons on string columns are not supported"

    def test_in_list_strings_for_numeric(self):
        assert _err("SELECT a FROM t WHERE a IN ('x', 'y')") == \
            "type mismatch: cannot compare a (int) with string literals"

    def test_like_on_numeric(self):
        assert _err("SELECT a FROM t WHERE a LIKE '%x%'") == \
            "LIKE needs a string column, got a (int)"

    def test_arithmetic_on_string(self):
        msg = _err("SELECT name + 1 AS z FROM t")
        assert msg.startswith("arithmetic needs numeric operands")


class TestEncodedColumns:
    def test_range_compare_on_code_column(self):
        msg = _err("SELECT a FROM t WHERE tag < 'green'")
        assert msg.startswith("only =/<> comparisons are supported")

    def test_in_list_for_code_column_needs_strings(self):
        msg = _err("SELECT a FROM t WHERE tag IN (1, 2)")
        assert msg.startswith("IN list for encoded string column")


class TestShapeErrors:
    def test_order_by_must_be_selected(self):
        assert _err("SELECT a FROM t ORDER BY b") == \
            "ORDER BY column 'b' must appear in the SELECT list"

    def test_set_op_arity_mismatch(self):
        msg = _err("SELECT a FROM t UNION ALL SELECT a, c FROM u")
        assert msg == "set operation arity mismatch: 1 vs 2 columns"

    def test_bind_error_is_sql_error(self):
        # the CLI catches SqlError once for parse + bind failures alike
        assert issubclass(BindError, SqlError)

"""TPC-H suite conformance: the gates the CI ``tpch-conformance`` job holds.

* every catalog query at minimum parses and binds;
* >= 16 of 22 compile AND validate byte-for-byte against the reference
  interpreter (the suite currently covers all 22 -- the floor may only
  ever rise);
* validation holds at two scales and two seeds, with no degenerate
  all-empty results hiding behind a vacuous byte-comparison;
* the coverage report is a pure function of (scale, seed): two runs
  serialize to identical JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.frontend import bind_sql, compile_sql
from repro.tpch.catalog import (
    CATALOG,
    QUERIES,
    tpch_dataset,
    tpch_source_rows,
    validate_tpch,
)

#: the acceptance floor; the suite currently validates 22/22
MIN_COVERED = 16


def test_catalog_lists_all_22_queries():
    assert sorted(QUERIES) == sorted(f"q{i}" for i in range(1, 23))


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_every_query_parses_and_binds(name):
    bound = bind_sql(QUERIES[name], CATALOG)
    assert bound.items, f"{name} bound to an empty select list"


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_every_query_lowers_to_a_plan(name):
    compiled = compile_sql(QUERIES[name], CATALOG,
                           source_rows=tpch_source_rows(0.002), name=name)
    compiled.plan.validate()
    assert compiled.sink is not None


@pytest.mark.parametrize("scale_factor,seed", [
    (0.002, 1992),
    (0.002, 7),
    (0.004, 1992),
])
def test_suite_validates(scale_factor, seed):
    report = validate_tpch(scale_factor=scale_factor, seed=seed)
    assert len(report.reports) == 22
    assert not report.failed, \
        [(r.query, r.status, r.detail) for r in report.failed]
    assert len(report.covered) >= MIN_COVERED
    empties = [r.query for r in report.reports
               if r.status == "ok" and r.rows == 0]
    assert not empties, f"degenerate empty results: {empties}"


def test_report_is_deterministic():
    a = validate_tpch(scale_factor=0.002, seed=1992)
    b = validate_tpch(scale_factor=0.002, seed=1992)
    ja = json.dumps(a.to_json(), sort_keys=True)
    jb = json.dumps(b.to_json(), sort_keys=True)
    assert ja == jb


def test_dataset_row_counts_match_declared_scale():
    tables = tpch_dataset(scale_factor=0.002, seed=1992)
    rows = tpch_source_rows(0.002)
    for name, rel in tables.items():
        assert rel.num_rows == rows[name], name

"""The frontend suite in the serving catalog and the fuzzer grammar.

Every ``tpch_qN`` kind must resolve to a cached plan with full-schema
source cardinalities, and the fuzzer must actually generate the four
frontend-era operators across a modest seed sweep.
"""

from __future__ import annotations

import pytest

from repro.plans.fuzz import random_plan_case
from repro.serve.arrivals import (
    DEFAULT_TENANTS,
    FRONTEND_KINDS,
    QUERY_KINDS,
    catalog_plan,
    catalog_rows,
)
from repro.tpch import schema


def test_frontend_kinds_enumerate_the_suite():
    assert FRONTEND_KINDS == tuple(f"tpch_q{i}" for i in range(1, 23))
    assert set(FRONTEND_KINDS) <= set(QUERY_KINDS)


@pytest.mark.parametrize("kind", ["tpch_q3", "tpch_q9", "tpch_q13",
                                  "tpch_q14", "tpch_q19"])
def test_tenant_mix_kinds_resolve(kind):
    plan = catalog_plan(kind)
    plan.validate()
    rows = catalog_rows(kind, 1_000_000)
    assert set(rows) == set(schema.BASE_ROWS)
    assert rows["lineitem"] == 1_000_000


def test_catalog_plan_is_cached():
    assert catalog_plan("tpch_q5") is catalog_plan("tpch_q5")


def test_default_tenants_offer_frontend_queries():
    offered = {kind for t in DEFAULT_TENANTS for kind, _ in t.mix}
    assert offered & set(FRONTEND_KINDS), \
        "no tenant offers a frontend-compiled query"


def test_fuzzer_generates_frontend_operators():
    wanted = {"left_join", "top_n", "union_all", "except_all"}
    seen: set[str] = set()
    for seed in range(150):
        seen.update(random_plan_case(seed).description.split("->"))
        if wanted <= seen:
            break
    assert wanted <= seen, f"missing from sweep: {wanted - seen}"

"""Every frontend-compiled TPC-H query is enumerable by the optimizer.

``Optimizer.choose`` must price a non-empty strategy space and return a
decision for each compiled plan (analytic mode -- no simulator -- so this
stays fast across all 22 queries).
"""

from __future__ import annotations

import pytest

from repro.optimizer.optimizer import Optimizer
from repro.tpch.catalog import QUERIES, compile_tpch, tpch_source_rows


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_choose_returns_a_decision(name):
    compiled = compile_tpch(name, scale_factor=0.01)
    opt = Optimizer(simulate=False)
    decision = opt.choose(compiled.plan, tpch_source_rows(0.01),
                          max_devices=2)
    assert decision.chosen is not None
    assert decision.chosen.price_s > 0
    assert len(decision.candidates) >= 2, \
        f"{name}: strategy space collapsed to {len(decision.candidates)}"

"""Frontend plans on the cluster path: distributed == single-device, bytewise.

Three representative frontend-compiled queries (a 3-way join top-N, a
CASE-aggregate join, and a disjunctive multi-predicate join) are sharded
over 4 devices via the real exchange and must reproduce the single-device
interpreter's bytes exactly.
"""

from __future__ import annotations

import pytest

from repro.cluster.executor import ClusterExecutor
from repro.frontend import run_plan
from repro.frontend.validate import compare_relations
from repro.plans.distribute import distribute_plan
from repro.tpch.catalog import compile_tpch, tpch_dataset, tpch_source_rows

SCALE = 0.002
QUERIES = ["q3", "q14", "q19"]


@pytest.fixture(scope="module")
def tables():
    return tpch_dataset(scale_factor=SCALE, seed=1992)


@pytest.mark.parametrize("name", QUERIES)
def test_four_shards_byte_identical(name, tables):
    compiled = compile_tpch(name, scale_factor=SCALE)
    single = run_plan(compiled, tables)
    dist = distribute_plan(compiled.plan, tpch_source_rows(SCALE),
                           num_shards=4)
    sharded = ClusterExecutor().functional(dist, tables)[compiled.sink.name]
    diff = compare_relations(sharded, single)
    assert diff is None, f"{name}@x4: {diff}"
    assert single.num_rows > 0, f"{name} is degenerate at sf={SCALE}"

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_prints_platform(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "C2070" in out


class TestSelect:
    def test_all_strategies_reported(self, capsys):
        assert main(["select", "--elements", "50000000"]) == 0
        out = capsys.readouterr().out
        for token in ("with_round_trip", "serial", "fused", "fission",
                      "fused_fission"):
            assert token in out

    def test_custom_parameters(self, capsys):
        assert main(["select", "--elements", "10000000", "--num", "3",
                     "--selectivity", "0.1"]) == 0
        assert "3 x SELECT(10%)" in capsys.readouterr().out


class TestQueries:
    @pytest.mark.parametrize("q", ["q1", "q21", "q6"])
    def test_simulated_run(self, q, capsys):
        assert main([q, "--elements", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "auto ->" in out
        assert "fusion result" in out

    def test_functional_run(self, capsys):
        assert main(["q6", "--functional", "--scale-factor", "0.002",
                     "--elements", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "agg_revenue" in out


class TestFuse:
    def test_chain_description(self, capsys):
        assert main(["fuse"]) == 0
        assert "FUSED" in capsys.readouterr().out

    def test_render(self, capsys):
        assert main(["fuse", "--query", "q1", "--render"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out
        assert "join stage" in out


class TestTrace:
    def test_writes_valid_json(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        assert main(["trace", "--elements", "100000000",
                     "--output", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]


class TestCompile:
    def test_chain(self, capsys):
        assert main(["compile", "--elements", "50000000"]) == 0
        out = capsys.readouterr().out
        assert "strategy" in out and "simulated" in out

    def test_q1(self, capsys):
        assert main(["compile", "--query", "q1", "--elements", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "fused_fission" in out


class TestSql:
    def test_query_runs(self, capsys):
        assert main(["sql",
                     "SELECT returnflag, COUNT(*) AS n FROM lineitem "
                     "GROUP BY returnflag",
                     "--scale-factor", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "returnflag" in out
        assert "compiled plan" in out

    def test_unknown_table(self, capsys):
        assert main(["sql", "SELECT a FROM widgets",
                     "--scale-factor", "0.002"]) == 1
        assert "unknown table" in capsys.readouterr().out

    def test_row_limit(self, capsys):
        assert main(["sql",
                     "SELECT orderkey FROM lineitem WHERE orderkey < 50",
                     "--scale-factor", "0.002", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "rows total" in out


class TestExplain:
    def test_q1_tree(self, capsys):
        assert main(["explain", "--query", "q1", "--elements", "1000"]) == 0
        out = capsys.readouterr().out
        assert "SORT" in out and "fused region" in out and "rows~" in out

    def test_chain(self, capsys):
        assert main(["explain", "--query", "chain",
                     "--elements", "1000"]) == 0
        assert "SELECT" in capsys.readouterr().out


class TestServe:
    ARGS = ["serve", "--qps", "40", "--duration", "0.5", "--seed", "3"]

    def test_batched_run_renders_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "mode: batched" in out
        assert "goodput" in out
        assert "p50/p95/p99" in out

    def test_both_modes_compared(self, capsys):
        assert main(self.ARGS + ["--mode", "both"]) == 0
        out = capsys.readouterr().out
        assert "mode: batched" in out
        assert "mode: isolated" in out
        assert "batched vs isolated" in out

    def test_summary_json_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.ARGS + ["--summary", str(a)]) == 0
        assert main(self.ARGS + ["--summary", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        doc = json.loads(a.read_text())
        assert doc["batched"]["metrics"]["offered"] > 0
        assert doc["batched"]["config"]["seed"] == 3

    def test_chaos_validated_run(self, tmp_path, capsys):
        # global flags precede the subcommand (the CI smoke invocation)
        assert main(["--validate", "--chaos", "7:0.02"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "[chaos]" in out
        assert "faults observed" in out

    def test_trace_output(self, tmp_path, capsys):
        path = tmp_path / "serve_trace.json"
        assert main(self.ARGS + ["--trace-output", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]

    def test_analyze_preflight(self, capsys):
        assert main(self.ARGS + ["--analyze"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out


class TestAnalyze:
    ARGS = ["analyze", "--fuzz-seeds", "3"]

    def test_strict_corpus_is_clean(self, capsys):
        assert main(self.ARGS + ["--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_reports_target_count(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "target(s)" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["errors"] == 0
        assert doc["targets"] > 0
        assert isinstance(doc["diagnostics"], list)

    def test_baseline_round_trip(self, tmp_path, capsys):
        path = tmp_path / "baseline.txt"
        assert main(self.ARGS + ["--write-baseline", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        # with every current finding baselined, nothing is reported
        assert main(self.ARGS + ["--baseline", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["warnings"] == 0
        assert doc["summary"]["infos"] == 0  # indexed locations too
        assert doc["summary"]["suppressed"] > 0
        assert doc["stale_suppressions"] == []

    def test_json_is_byte_stable_across_runs(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        assert capsys.readouterr().out == first
        doc = json.loads(first)
        assert doc["schema"] == "repro.analyze.report/v1"

    def test_stale_suppressions_reported(self, tmp_path, capsys):
        path = tmp_path / "baseline.txt"
        path.write_text("FUS999 nothing:matches:this\n")
        assert main(self.ARGS + ["--baseline", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stale_suppressions"] == ["FUS999 nothing:matches:this"]
        # text mode prints the same warning...
        assert main(self.ARGS + ["--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stale suppression (matched nothing): FUS999" in out
        # ...but without --prune-baseline the file is untouched
        assert path.read_text() == "FUS999 nothing:matches:this\n"

    def test_prune_baseline_drops_only_stale_lines(self, tmp_path, capsys):
        path = tmp_path / "baseline.txt"
        assert main(self.ARGS + ["--write-baseline", str(path)]) == 0
        live = path.read_text()
        path.write_text(live + "FUS999 nothing:matches:this\n")
        capsys.readouterr()
        assert main(self.ARGS + ["--baseline", str(path), "--strict",
                                 "--prune-baseline"]) == 0
        err = capsys.readouterr().err
        assert "pruned 1 stale suppression(s)" in err
        pruned = path.read_text()
        assert "FUS999" not in pruned
        # every live suppression survived: the pruned file still silences
        # the full corpus under --strict with nothing stale left
        assert main(self.ARGS + ["--baseline", str(path), "--strict",
                                 "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stale_suppressions"] == []

    def test_prune_baseline_requires_baseline(self, capsys):
        assert main(self.ARGS + ["--prune-baseline"]) == 2
        assert "--prune-baseline requires --baseline" in \
            capsys.readouterr().err


class TestCluster:
    ARGS = ["cluster", "--devices", "4", "--query", "q1",
            "--elements", "2000000", "--seed", "9"]

    def test_reports_speedup_over_single_device(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "@x4" in out
        assert "suffix mode exchange" in out
        assert "speedup" in out

    def test_q21_host_suffix(self, capsys):
        assert main(["cluster", "--devices", "4", "--query", "q21",
                     "--elements", "2000000"]) == 0
        out = capsys.readouterr().out
        assert "suffix mode host" in out
        assert "partition key: orderkey" in out

    def test_validated_summary_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["--validate"] + self.ARGS + ["--summary", str(a)]) == 0
        assert main(["--validate"] + self.ARGS + ["--summary", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        doc = json.loads(a.read_text())
        assert doc["cluster.devices"] == 4
        assert doc["cluster.lost_devices"] == []
        assert doc["exchange.out_bytes"] > 0

    def test_kill_device_recovers(self, tmp_path, capsys):
        assert main(["--validate"] + self.ARGS
                    + ["--kill-device", "2"]) == 0
        out = capsys.readouterr().out
        assert "lost device(s) [2]" in out
        assert "re-executed on survivors" in out

    def test_functional_byte_identity(self, capsys):
        assert main(["cluster", "--devices", "2", "--query", "q21",
                     "--functional", "--scale-factor", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical to single device: True" in out

    def test_trace_output_has_device_lanes(self, tmp_path, capsys):
        path = tmp_path / "cluster_trace.json"
        assert main(self.ARGS + ["--trace-output", str(path)]) == 0
        trace = json.loads(path.read_text())
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("name") == "process_name"}
        assert names == {"device 0", "device 1", "device 2", "device 3",
                         "cluster host"}

    def test_partition_scheme_flag(self, capsys):
        assert main(self.ARGS + ["--partition", "range"]) == 0
        assert "range partitioning" in capsys.readouterr().out

    def test_serve_accepts_devices(self, capsys):
        assert main(["serve", "--qps", "40", "--duration", "0.5",
                     "--seed", "3", "--devices", "2"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out

"""Graceful degradation: repeated device OOM walks the mode ladder down to
the host interpreter, and the run result records where it landed."""

import numpy as np
import pytest

from repro.errors import DeviceOOMError
from repro.faults import DEGRADATION_ORDER, FaultKind, FaultPlan, ladder_for
from repro.plans import evaluate_sinks
from repro.plans.fuzz import random_plan_case
from repro.plans.plan import Plan
from repro.ra import AggSpec, Field
from repro.ra.relation import Relation
from repro.runtime import Executor, GpuRuntime
from repro.simgpu import EventKind

OOM_STORM = FaultPlan(seed=0, rates={FaultKind.DEVICE_OOM: 1.0}, budget=256)


class TestLadders:
    def test_canonical_order(self):
        assert DEGRADATION_ORDER == ("fission", "resident", "chunked", "cpubase")

    def test_every_ladder_ends_at_cpubase(self):
        for mode in ("fission", "resident", "compressed", "chunked", "cpubase"):
            ladder = ladder_for(mode)
            assert ladder[0] == mode
            assert ladder[-1] == "cpubase"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ladder_for("warp-speed")
        with pytest.raises(ValueError):
            GpuRuntime(mode="warp-speed")


class TestGpuRuntimeDegradation:
    def test_oom_storm_lands_on_cpubase(self):
        case = random_plan_case(4)
        rt = GpuRuntime(mode="resident", faults=OOM_STORM)
        result = rt.run(case.plan, case.sources)
        assert result.mode == "cpubase"
        assert result.degraded_to == "cpubase"
        assert result.faults_injected > 0
        ref = evaluate_sinks(case.plan, case.sources)
        for name, rel in ref.items():
            assert result.results[name].same_tuples(rel)

    def test_cpubase_timeline_is_host_only(self):
        case = random_plan_case(4)
        result = GpuRuntime(mode="cpubase").run(case.plan, case.sources)
        assert result.timeline.filter(EventKind.H2D) == []
        assert result.timeline.filter(EventKind.KERNEL) == []
        assert len(result.timeline.filter(EventKind.HOST)) == 1
        assert result.makespan > 0

    def test_single_transient_oom_is_absorbed(self):
        """One allocator hiccup retries in place; only a *repeated* hit at
        the same site forces the ladder down (budget 1 = single draw)."""
        case = random_plan_case(4)
        one_shot = FaultPlan(seed=0, rates={FaultKind.DEVICE_OOM: 1.0},
                             budget=1)
        result = GpuRuntime(mode="resident", faults=one_shot).run(
            case.plan, case.sources)
        assert result.degraded_to is None
        assert result.mode == "resident"
        assert result.retries == 1

    def test_degrade_false_surfaces_injected_oom(self):
        case = random_plan_case(4)
        rt = GpuRuntime(mode="resident", faults=OOM_STORM, degrade=False)
        with pytest.raises(DeviceOOMError) as exc:
            rt.run(case.plan, case.sources)
        assert getattr(exc.value, "injected", False)
        assert exc.value.site.startswith("alloc.")

    def test_cpubase_never_degrades(self):
        case = random_plan_case(4)
        result = GpuRuntime(mode="cpubase", faults=OOM_STORM).run(
            case.plan, case.sources)
        assert result.mode == "cpubase"
        assert result.degraded_to is None


class TestModeEquivalence:
    def test_chunked_bounds_device_footprint(self):
        case = random_plan_case(6)
        resident = GpuRuntime(mode="resident").run(case.plan, case.sources)
        chunked = GpuRuntime(mode="chunked").run(case.plan, case.sources)
        assert chunked.peak_device_bytes <= resident.peak_device_bytes
        for name, rel in resident.results.items():
            assert chunked.results[name].same_tuples(rel)

    def test_fission_falls_back_on_non_streamable_plans(self):
        """An aggregate right at the sink cannot stream row-segments; the
        fission mode must still answer (resident execution inside)."""
        plan = Plan()
        t = plan.source("t", row_nbytes=4)
        s = plan.select(t, Field("v") < 50, selectivity=0.5, name="keep")
        plan.aggregate(s, [], {"n": AggSpec("count")}, name="agg")
        rel = Relation({"v": np.arange(100, dtype=np.int32)})
        result = GpuRuntime(mode="fission").run(plan, {"t": rel})
        ref = evaluate_sinks(plan, {"t": rel})
        for name, r in ref.items():
            assert result.results[name].same_tuples(r)


class TestExecutorDegradation:
    def test_strategy_ladder_reaches_cpubase(self):
        from repro.tpch import build_q1_plan, q1_source_rows
        ex = Executor(faults=OOM_STORM)
        r = ex.run(build_q1_plan(), q1_source_rows(1_000_000))
        assert r.degraded_to == "cpubase"
        assert r.faults_injected > 0
        assert r.makespan > 0
        assert len(r.timeline.filter(EventKind.HOST)) == 1

"""Chaos property suite (the ISSUE's acceptance test).

For 120 seeds, run a random plan through every execution mode with fault
injection on: the run must either return tuples identical to the clean
NumPy interpreter or raise a typed :class:`~repro.errors.ReproError` --
never a silent wrong answer -- and every completed timeline must pass the
schedule sanitizer strictly.
"""

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.plans import evaluate_sinks
from repro.plans.fuzz import random_plan_case
from repro.runtime import GpuRuntime
from repro.runtime.select_chain import run_select_chain
from repro.runtime.executor import Strategy
from repro.simgpu.compression import RLE
from repro.validate import validate_run

MODES = ("resident", "fission", "chunked", "compressed", "cpubase")


def _check_against_interpreter(case, result):
    ref = evaluate_sinks(case.plan, case.sources)
    for name, rel in ref.items():
        assert result.results[name].same_tuples(rel), (
            f"plan={case.description} sink={name} mode={result.mode}")


@pytest.mark.parametrize("seed", range(120))
def test_chaos_never_silently_wrong(seed):
    case = random_plan_case(seed % 40)
    mode = MODES[seed % len(MODES)]
    rt = GpuRuntime(mode=mode, faults=FaultPlan.chaos(seed, rate=0.05),
                    compression=RLE)
    try:
        result = rt.run(case.plan, case.sources)
    except ReproError:
        return  # a typed, diagnosable failure is an acceptable outcome
    _check_against_interpreter(case, result)
    validate_run(result, rt.device).raise_if_failed()


@pytest.mark.parametrize("seed", range(12))
def test_heavy_chaos_still_correct(seed):
    """At a 30% fault rate recovery does real work (retries and usually a
    degradation), yet the answers never drift."""
    case = random_plan_case(seed)
    rt = GpuRuntime(mode="fission",
                    faults=FaultPlan.chaos(seed, rate=0.3, budget=256))
    try:
        result = rt.run(case.plan, case.sources)
    except ReproError:
        return
    _check_against_interpreter(case, result)
    validate_run(result, rt.device).raise_if_failed()


def test_chaos_runs_actually_inject():
    """The property suite is vacuous if injection never fires: across the
    seeds, a healthy share of runs must report injected faults."""
    injected = 0
    for seed in range(30):
        case = random_plan_case(seed % 10)
        rt = GpuRuntime(mode="fission",
                        faults=FaultPlan.chaos(seed, rate=0.2, budget=256))
        result = rt.run(case.plan, case.sources)
        injected += result.faults_injected
    assert injected > 30


@pytest.mark.parametrize("seed", range(10))
def test_executor_chaos_validates(seed):
    """The annotation-driven executor under chaos: strict sanitizer +
    byte conservation on whatever strategy the ladder lands on."""
    r = run_select_chain(50_000_000, 2, 0.5, Strategy.FUSED_FISSION,
                         faults=FaultPlan.chaos(seed, rate=0.1))
    assert r.makespan > 0
    validate_run(r).raise_if_failed()


class TestChaosFixture:
    def test_fixture_provides_a_plan(self, chaos):
        assert isinstance(chaos, FaultPlan)
        assert chaos.enabled

    def test_fixture_plan_is_runnable(self, chaos):
        case = random_plan_case(3)
        result = GpuRuntime(faults=chaos).run(case.plan, case.sources)
        _check_against_interpreter(case, result)

"""Engine-level fault behavior: retries, backoff, stall re-issue, typed
errors, and sanitizer compatibility of repaired schedules.

Every test pins its own injection plan, so suite-wide chaos injection on
top would double-fault the schedules under test.
"""

from types import SimpleNamespace

import pytest

from repro.errors import (
    KernelLaunchFaultError,
    StreamStallError,
    TransferFaultError,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan, RetryPolicy
from repro.simgpu import DeviceSpec, EventKind, KernelLaunchSpec
from repro.simgpu.engine import SimEngine, SimStream
from repro.simgpu.pcie import Direction, HostMemory, PcieModel
from repro.validate import validate_run, validate_timeline

pytestmark = pytest.mark.no_chaos  # each test pins its own injection plan

NB = 8_000_000.0


def engine(plan):
    device = DeviceSpec()
    return device, SimEngine(device, faults=FaultInjector(plan))


def kspec(name="k", n=10_000_000):
    return KernelLaunchSpec(name, n, 112, 256, 20, 4.0 * n, 2.0 * n, 40.0 * n)


def forced(kind, budget=1, retry=None, **kw):
    return FaultPlan(seed=0, rates={kind: 1.0}, budget=budget,
                     retry=retry or RetryPolicy(), **kw)


class TestTransientRetry:
    def test_failed_transfer_logged_and_retried(self):
        device, eng = engine(forced(FaultKind.H2D_FAIL))
        ran = []
        s = SimStream(0)
        s.h2d(NB, tag="input.x", thunk=lambda: ran.append(1))
        tl = eng.run([s])
        tags = [e.tag for e in tl.filter(EventKind.H2D)]
        assert tags == ["fault.input.x", "input.x"]
        # the failed attempt still occupied the engine and reports its bytes
        fault, ok = tl.filter(EventKind.H2D)
        assert fault.nbytes == NB
        assert ran == [1]  # thunk fires exactly once, on the success

    def test_retry_waits_out_backoff(self):
        retry = RetryPolicy(backoff_base_s=5e-3)
        device, eng = engine(forced(FaultKind.H2D_FAIL, retry=retry))
        s = SimStream(0)
        s.h2d(NB, tag="input.x")
        tl = eng.run([s])
        fault, ok = tl.filter(EventKind.H2D)
        assert ok.start == pytest.approx(fault.end + retry.backoff(1))

    def test_failure_detection_is_cheaper_than_full_transfer(self):
        device = DeviceSpec()
        clean = SimEngine(device).run([SimStream(0).h2d(NB, tag="input.x")])
        _, eng = engine(forced(FaultKind.H2D_FAIL))
        faulted = eng.run([SimStream(0).h2d(NB, tag="input.x")])
        fault = faulted.filter(EventKind.H2D)[0]
        full = clean.filter(EventKind.H2D)[0]
        assert fault.duration == pytest.approx(full.duration * 0.5)

    def test_kernel_launch_failure_retried(self):
        _, eng = engine(forced(FaultKind.KERNEL_FAIL))
        s = SimStream(0)
        s.kernel(kspec("scan"))
        tl = eng.run([s])
        tags = [e.tag for e in tl.filter(EventKind.KERNEL)]
        assert tags == ["fault.scan", "scan"]
        assert tl.filter(EventKind.KERNEL)[0].duration == pytest.approx(
            RetryPolicy().kernel_fail_latency_s)

    def test_injector_counts_retries(self):
        _, eng = engine(forced(FaultKind.D2H_FAIL))
        eng.run([SimStream(0).d2h(NB, tag="output.y")])
        assert eng.faults.retries == 1
        assert eng.faults.faults_injected == 1
        assert eng.faults.by_kind() == {FaultKind.D2H_FAIL: 1}


class TestTypedErrors:
    def test_transfer_error_after_exhausted_retries(self):
        retry = RetryPolicy(max_retries=2)
        _, eng = engine(forced(FaultKind.H2D_FAIL, budget=64, retry=retry))
        a = SimStream(0)
        a.h2d(NB, tag="input.x")
        a.kernel(kspec("stage.x"))
        b = SimStream(1)
        b.host(0.001, tag="side.work")
        with pytest.raises(TransferFaultError) as exc:
            eng.run([a, b])
        assert exc.value.site == "input.x"
        assert exc.value.attempts == 3  # initial try + 2 retries
        # queues pruned to exactly the unfinished work
        assert [c.tag for c in a.commands] == ["input.x", "stage.x"]
        assert b.commands == []  # the independent host work completed

    def test_kernel_error_type(self):
        retry = RetryPolicy(max_retries=1)
        _, eng = engine(forced(FaultKind.KERNEL_FAIL, budget=64, retry=retry))
        with pytest.raises(KernelLaunchFaultError):
            eng.run([SimStream(0).kernel(kspec())])

    def test_stall_error_type(self):
        retry = RetryPolicy(max_retries=1, stall_timeout_s=1e-3)
        plan = forced(FaultKind.STREAM_STALL, budget=64, retry=retry,
                      stall_factor=1e6)
        _, eng = engine(plan)
        with pytest.raises(StreamStallError) as exc:
            eng.run([SimStream(0).h2d(NB, tag="input.x")])
        assert exc.value.attempts == 2

    def test_thunks_never_run_on_failure(self):
        retry = RetryPolicy(max_retries=1)
        _, eng = engine(forced(FaultKind.H2D_FAIL, budget=64, retry=retry))
        ran = []
        s = SimStream(0).h2d(NB, tag="input.x", thunk=lambda: ran.append(1))
        with pytest.raises(TransferFaultError):
            eng.run([s])
        assert ran == []


class TestStalls:
    def test_stall_past_timeout_reissued_on_fresh_stream(self):
        retry = RetryPolicy(stall_timeout_s=1e-3)
        plan = forced(FaultKind.STREAM_STALL, retry=retry, stall_factor=1e6)
        _, eng = engine(plan)
        s = SimStream(0)
        s.h2d(NB, tag="input.x")
        tl = eng.run([s])
        abandoned, ok = tl.filter(EventKind.H2D)
        assert abandoned.tag == "fault.stall.input.x"
        assert abandoned.duration == pytest.approx(retry.stall_timeout_s)
        assert abandoned.stream == 0
        assert ok.tag == "input.x"
        assert ok.stream == 1  # fresh replacement stream id
        assert eng.faults.reissues == 1

    def test_stall_below_timeout_just_runs_slow(self):
        device = DeviceSpec()
        clean = SimEngine(device).run([SimStream(0).h2d(NB, tag="input.x")])
        plan = forced(FaultKind.STREAM_STALL, stall_factor=2.0,
                      retry=RetryPolicy(stall_timeout_s=1e9))
        _, eng = engine(plan)
        slow = eng.run([SimStream(0).h2d(NB, tag="input.x")])
        (c,) = clean.filter(EventKind.H2D)
        (f,) = slow.filter(EventKind.H2D)
        assert f.tag == "input.x"  # no failure, just latency
        assert f.duration == pytest.approx(2.0 * c.duration)


class TestHostSlowdown:
    def test_host_command_stretched(self):
        plan = forced(FaultKind.HOST_SLOWDOWN, host_slowdown_factor=8.0)
        _, eng = engine(plan)
        tl = eng.run([SimStream(0).host(0.01, tag="cpu_gather")])
        (ev,) = tl.filter(EventKind.HOST)
        assert ev.duration == pytest.approx(0.08)

    def test_paged_transfer_pays_bandwidth_penalty(self):
        device = DeviceSpec()
        pcie = PcieModel(device.calib.pcie)
        base = pcie.transfer_time(NB, Direction.H2D, HostMemory.PAGED)
        slow = pcie.transfer_time(NB, Direction.H2D, HostMemory.PAGED,
                                  host_slowdown=4.0)
        assert slow > base
        # the whole staging (bandwidth) term scales with the slowdown
        assert slow - base == pytest.approx(
            3.0 * NB / pcie.bandwidth(NB, Direction.H2D, HostMemory.PAGED))

    def test_pinned_transfer_only_pays_setup_latency(self):
        device = DeviceSpec()
        pcie = PcieModel(device.calib.pcie)
        base = pcie.transfer_time(NB, Direction.H2D, HostMemory.PINNED)
        slow = pcie.transfer_time(NB, Direction.H2D, HostMemory.PINNED,
                                  host_slowdown=4.0)
        # pinned pages cannot be swapped: only the fixed setup cost grows
        assert slow == pytest.approx(base + 3.0 * pcie.calib.latency_s)


class TestSanitizerCompatibility:
    def test_repaired_timeline_validates(self):
        device = DeviceSpec()
        plan = FaultPlan(seed=5, rates={FaultKind.H2D_FAIL: 1.0,
                                        FaultKind.KERNEL_FAIL: 1.0}, budget=2)
        eng = SimEngine(device, faults=FaultInjector(plan))
        s = SimStream(0)
        s.h2d(NB, tag="input.x")
        s.kernel(kspec("stage"))
        s.d2h(NB / 2, tag="output.x")
        tl = eng.run([s])
        validate_timeline(tl, device).raise_if_failed()

    def test_stall_reissue_timeline_validates(self):
        device = DeviceSpec()
        retry = RetryPolicy(stall_timeout_s=1e-3)
        plan = FaultPlan(seed=0, rates={FaultKind.STREAM_STALL: 1.0},
                         budget=1, stall_factor=1e6, retry=retry)
        eng = SimEngine(device, faults=FaultInjector(plan))
        tl = eng.run([SimStream(0).h2d(NB, tag="input.x")])
        validate_timeline(tl, device).raise_if_failed()

    def test_byte_conservation_ignores_failed_attempts(self):
        """A failed transfer reports its nbytes on the fault event; only
        the attempt that delivered the data counts toward conservation."""
        _, eng = engine(forced(FaultKind.H2D_FAIL))
        tl = eng.run([SimStream(0).h2d(NB, tag="input.x")])
        fake = SimpleNamespace(timeline=tl, expected_h2d_bytes=NB)
        validate_run(fake).raise_if_failed()


class TestNoOpInjection:
    def test_off_plan_matches_clean_run(self):
        device = DeviceSpec()

        def schedule():
            s = SimStream(0)
            s.h2d(NB, tag="input.x")
            s.kernel(kspec())
            s.d2h(NB, tag="output.x")
            return [s]

        clean = SimEngine(device).run(schedule())
        offed = SimEngine(device,
                          faults=FaultInjector(FaultPlan.off())).run(schedule())
        assert [(e.start, e.end, e.tag) for e in clean.events] == \
            [(e.start, e.end, e.tag) for e in offed.events]

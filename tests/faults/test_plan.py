"""Unit tests for the declarative fault model (FaultPlan / RetryPolicy)."""

import pytest

from repro.faults import ALL_KINDS, FaultKind, FaultPlan, RetryPolicy, parse_chaos


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(backoff_base_s=1e-4, backoff_multiplier=2.0)
        assert p.backoff(1) == pytest.approx(1e-4)
        assert p.backoff(2) == pytest.approx(2e-4)
        assert p.backoff(3) == pytest.approx(4e-4)

    def test_backoff_clamps_attempt_zero(self):
        p = RetryPolicy(backoff_base_s=1e-4)
        assert p.backoff(0) == pytest.approx(1e-4)


class TestFaultPlan:
    def test_default_is_disabled(self):
        assert not FaultPlan().enabled

    def test_off_is_disabled(self):
        assert not FaultPlan.off().enabled

    def test_chaos_covers_all_kinds(self):
        plan = FaultPlan.chaos(seed=3, rate=0.1)
        assert plan.enabled
        for kind in ALL_KINDS:
            assert plan.rate_for(kind, "anything") == 0.1

    def test_zero_budget_disables(self):
        plan = FaultPlan.chaos(seed=3, rate=0.1, budget=0)
        assert not plan.enabled

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(rates={FaultKind.H2D_FAIL: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(rates={FaultKind.H2D_FAIL: -0.1})
        with pytest.raises(ValueError):
            FaultPlan(budget=-1)

    def test_site_rate_overrides_kind_rate(self):
        plan = FaultPlan(rates={FaultKind.H2D_FAIL: 0.01},
                         site_rates={"input.lineitem": 0.5})
        assert plan.rate_for(FaultKind.H2D_FAIL, "input.orders") == 0.01
        assert plan.rate_for(FaultKind.H2D_FAIL, "input.lineitem") == 0.5
        # prefix match: segment sites inherit the override
        assert plan.rate_for(FaultKind.H2D_FAIL, "input.lineitem.seg3") == 0.5

    def test_longest_prefix_wins(self):
        plan = FaultPlan(site_rates={"input": 0.1, "input.a": 0.9})
        assert plan.rate_for(FaultKind.H2D_FAIL, "input.a") == 0.9
        assert plan.rate_for(FaultKind.H2D_FAIL, "input.b") == 0.1

    def test_site_rates_alone_enable(self):
        assert FaultPlan(site_rates={"x": 1.0}).enabled


class TestParseChaos:
    def test_seed_only(self):
        plan = parse_chaos("7")
        assert plan.seed == 7
        assert plan.rate_for(FaultKind.KERNEL_FAIL, "k") == pytest.approx(0.02)

    def test_seed_and_rate(self):
        plan = parse_chaos("12:0.3")
        assert plan.seed == 12
        assert plan.rate_for(FaultKind.D2H_FAIL, "d") == pytest.approx(0.3)

    @pytest.mark.parametrize("bad", ["x", "1:y", "1:2.0", "1:-0.5", ""])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_chaos(bad)


class TestReseeded:
    def test_shifts_seed_only(self):
        plan = FaultPlan.chaos(10, rate=0.3, budget=7)
        r = plan.reseeded(5)
        assert r.seed == 15
        assert r.rates == plan.rates
        assert r.budget == plan.budget
        assert r.retry == plan.retry
        assert r.site_rates == plan.site_rates
        assert r.stall_factor == plan.stall_factor

    def test_zero_offset_is_identity(self):
        plan = FaultPlan.chaos(4)
        assert plan.reseeded(0) == plan

    def test_reseeded_plans_draw_independently(self):
        from repro.faults import FaultInjector

        base = FaultPlan.chaos(0, rate=0.5)
        decisions = {
            off: [FaultInjector(base.reseeded(off)).kernel_fault(f"site{i}")
                  for i in range(64)]
            for off in (0, 1)
        }
        assert decisions[0] != decisions[1]

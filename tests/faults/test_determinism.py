"""Determinism regressions: the same (plan, sources, fault seed) must
reproduce byte-identical timelines and metrics, run after run."""

import pytest

from repro.faults import FaultPlan
from repro.plans.fuzz import random_plan_case
from repro.runtime import GpuRuntime, Strategy
from repro.runtime.select_chain import run_select_chain


def _fingerprint(timeline):
    return [(e.start, e.end, e.kind, e.tag, e.stream, e.nbytes, e.sms)
            for e in timeline.events]


@pytest.mark.parametrize("mode", ["resident", "fission", "chunked"])
@pytest.mark.parametrize("seed", [0, 3, 11])
def test_same_fault_seed_reproduces_run(mode, seed):
    case = random_plan_case(seed)

    def go():
        rt = GpuRuntime(mode=mode,
                        faults=FaultPlan.chaos(seed, rate=0.15, budget=128))
        return rt.run(case.plan, case.sources)

    a, b = go(), go()
    assert _fingerprint(a.timeline) == _fingerprint(b.timeline)
    assert a.makespan == b.makespan
    assert (a.mode, a.degraded_to) == (b.mode, b.degraded_to)
    assert (a.faults_injected, a.retries, a.reissues) == \
        (b.faults_injected, b.retries, b.reissues)
    for name, rel in a.results.items():
        assert b.results[name].same_tuples(rel)


@pytest.mark.parametrize("seed", [1, 5])
def test_executor_runs_reproduce(seed):
    def go():
        return run_select_chain(100_000_000, 2, 0.5, Strategy.FUSED_FISSION,
                                faults=FaultPlan.chaos(seed, rate=0.1))

    a, b = go(), go()
    assert _fingerprint(a.timeline) == _fingerprint(b.timeline)
    assert a.makespan == b.makespan
    assert (a.faults_injected, a.retries, a.degraded_to) == \
        (b.faults_injected, b.retries, b.degraded_to)


def test_different_fault_seeds_usually_differ():
    """The seed actually steers injection: across a handful of seeds the
    schedules cannot all be identical at a 15% rate."""
    case = random_plan_case(2)
    prints = set()
    for seed in range(6):
        rt = GpuRuntime(mode="fission",
                        faults=FaultPlan.chaos(seed, rate=0.15, budget=128))
        prints.add(tuple(_fingerprint(rt.run(case.plan, case.sources).timeline)))
    assert len(prints) > 1

"""Unit tests for the deterministic fault injector."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan, as_injector


def hot(kind, rate=1.0, seed=0, budget=64, **kw):
    return FaultInjector(FaultPlan(seed=seed, rates={kind: rate},
                                   budget=budget, **kw))


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan.chaos(seed=42, rate=0.3)
        sites = [f"input.{i}" for i in range(50)]
        a = [FaultInjector(plan).fire(FaultKind.H2D_FAIL, s) for s in sites]
        b = [FaultInjector(plan).fire(FaultKind.H2D_FAIL, s) for s in sites]
        assert a == b
        assert any(a) and not all(a)  # rate 0.3 over 50 sites: mixed outcomes

    def test_decisions_independent_of_probe_order(self):
        """A site's decision depends only on (seed, kind, site, probe) --
        not on how many unrelated sites were probed before it."""
        plan = FaultPlan.chaos(seed=7, rate=0.3, budget=1000)
        a = FaultInjector(plan)
        for i in range(100):
            a.fire(FaultKind.KERNEL_FAIL, f"noise.{i}")
        b = FaultInjector(plan)
        assert (a.fire(FaultKind.H2D_FAIL, "input.x")
                == b.fire(FaultKind.H2D_FAIL, "input.x"))

    def test_different_seeds_diverge(self):
        sites = [f"s{i}" for i in range(64)]
        a = FaultInjector(FaultPlan.chaos(seed=1, rate=0.5))
        b = FaultInjector(FaultPlan.chaos(seed=2, rate=0.5))
        assert ([a.fire(FaultKind.H2D_FAIL, s) for s in sites]
                != [b.fire(FaultKind.H2D_FAIL, s) for s in sites])

    def test_repeated_probes_get_fresh_draws(self):
        """Retrying the same site re-rolls: with rate 0.5 the same site
        cannot fire identically on 32 consecutive probes."""
        fi = hot(FaultKind.H2D_FAIL, rate=0.5, budget=1000)
        draws = [fi.fire(FaultKind.H2D_FAIL, "input.x") for _ in range(32)]
        assert any(draws) and not all(draws)

    def test_uniform_in_unit_interval(self):
        fi = hot(FaultKind.H2D_FAIL)
        us = [fi._uniform(FaultKind.H2D_FAIL, f"s{i}", 0) for i in range(200)]
        assert all(0.0 <= u < 1.0 for u in us)
        assert 0.3 < sum(us) / len(us) < 0.7  # roughly centered


class TestBudget:
    def test_budget_bounds_total_injections(self):
        fi = hot(FaultKind.KERNEL_FAIL, rate=1.0, budget=5)
        fired = sum(fi.fire(FaultKind.KERNEL_FAIL, f"k{i}") for i in range(50))
        assert fired == 5
        assert fi.budget_left == 0
        # exhausted: the injector is inert from here on
        assert not fi.fire(FaultKind.KERNEL_FAIL, "one.more")

    def test_zero_rate_never_fires_or_spends(self):
        fi = hot(FaultKind.H2D_FAIL, rate=0.0, budget=5)
        assert not any(fi.fire(FaultKind.H2D_FAIL, f"s{i}") for i in range(20))
        assert fi.budget_left == 5


class TestConvenienceProbes:
    def test_transfer_fault_direction_kinds(self):
        fi = hot(FaultKind.H2D_FAIL)
        assert fi.transfer_fault("up", h2d=True)
        assert not fi.transfer_fault("down", h2d=False)

    def test_stall_returns_factor(self):
        fi = hot(FaultKind.STREAM_STALL, stall_factor=30.0)
        assert fi.stall("k") == 30.0
        fi2 = hot(FaultKind.H2D_FAIL)
        assert fi2.stall("k") is None

    def test_host_slowdown_returns_factor(self):
        fi = hot(FaultKind.HOST_SLOWDOWN, host_slowdown_factor=4.0)
        assert fi.host_slowdown("gather") == 4.0

    def test_oom(self):
        assert hot(FaultKind.DEVICE_OOM).oom("alloc.x")


class TestStats:
    def test_snapshot_and_by_kind(self):
        fi = FaultInjector(FaultPlan(
            seed=0, rates={FaultKind.H2D_FAIL: 1.0, FaultKind.KERNEL_FAIL: 1.0}))
        fi.fire(FaultKind.H2D_FAIL, "a")
        fi.fire(FaultKind.KERNEL_FAIL, "b")
        fi.fire(FaultKind.KERNEL_FAIL, "c")
        fi.note_retry("a")
        fi.note_reissue("b")
        assert fi.by_kind() == {FaultKind.H2D_FAIL: 1, FaultKind.KERNEL_FAIL: 2}
        snap = fi.snapshot()
        assert snap["faults_injected"] == 3
        assert snap["retries"] == 1
        assert snap["reissues"] == 1
        assert snap["faults.h2d_fail"] == 1
        assert snap["faults.kernel_fail"] == 2

    def test_injected_records_sites(self):
        fi = hot(FaultKind.D2H_FAIL)
        fi.fire(FaultKind.D2H_FAIL, "output.q")
        (rec,) = fi.injected
        assert (rec.kind, rec.site, rec.probe) == (FaultKind.D2H_FAIL,
                                                   "output.q", 0)


class TestAsInjector:
    def test_none_passes_through(self):
        assert as_injector(None) is None

    def test_plan_wrapped(self):
        plan = FaultPlan.chaos(seed=1)
        fi = as_injector(plan)
        assert isinstance(fi, FaultInjector)
        assert fi.plan is plan

    def test_injector_passes_through_sharing_budget(self):
        fi = hot(FaultKind.H2D_FAIL, budget=2)
        assert as_injector(fi) is fi

"""Tests for the fused-kernel source renderer."""

import pytest

from repro.core.fusion import fuse_plan
from repro.core.render import render_expr, render_fused_kernel, render_predicate
from repro.errors import FusionError
from repro.plans.plan import Plan
from repro.ra import AggSpec, Const, Field
from repro.tpch import build_q1_plan


class TestExprRendering:
    def test_field(self):
        assert render_expr(Field("price")) == "price"

    def test_const(self):
        assert render_expr(Const(3)) == "3"

    def test_binop(self):
        e = (Const(1.0) - Field("discount")) * Field("price")
        assert render_expr(e) == "((1.0 - discount) * price)"

    def test_compare(self):
        assert render_predicate(Field("d") < 7) == "(d < 7)"

    def test_and_or_not(self):
        p = (Field("a") < 1) & (Field("b") > 2)
        assert render_predicate(p) == "((a < 1) && (b > 2))"
        q = (Field("a") < 1) | (Field("b") > 2)
        assert "||" in render_predicate(q)
        assert render_predicate(~(Field("a") < 1)) == "(!(a < 1))"


class TestKernelRendering:
    def _chain(self):
        plan = Plan()
        node = plan.source("t", row_nbytes=4)
        a = plan.select(node, Field("d") < 100, name="s0")
        b = plan.select(a, Field("d") < 50, name="s1")
        return [a, b]

    def test_fused_select_chain_structure(self):
        src = render_fused_kernel(self._chain())
        assert "__global__" in src
        assert src.count("partition(") == 1           # one partition stage
        assert "(d < 100)" in src and "(d < 50)" in src
        assert src.count("_gather") == 1              # one gather kernel

    def test_terminal_aggregate_no_gather(self):
        plan = Plan()
        node = plan.source("t", row_nbytes=4)
        s = plan.select(node, Field("d") < 10, name="s")
        agg = plan.aggregate(s, [], {"n": AggSpec("count")}, name="agg")
        src = render_fused_kernel([s, agg])
        assert "atomic_reduce" in src
        assert "_gather" not in src

    def test_q1_fused_region_renders(self):
        plan = build_q1_plan()
        fr = fuse_plan(plan)
        region = fr.regions[0]  # SELECT + 6 gather joins
        src = render_fused_kernel(region.nodes)
        assert src.count("join stage") == 6
        assert "gather from aligned column" in src

    def test_barrier_op_rejected(self):
        plan = Plan()
        srt = plan.sort(plan.source("t"))
        with pytest.raises(FusionError):
            render_fused_kernel([srt])

    def test_empty_rejected(self):
        with pytest.raises(FusionError):
            render_fused_kernel([])

    def test_custom_name(self):
        src = render_fused_kernel(self._chain(), name="my_kernel")
        assert "my_kernel_compute" in src

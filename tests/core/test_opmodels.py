"""Tests for the operator -> kernel lowering."""

import math

import pytest

from repro.core.kernel import StageKind
from repro.core.opmodels import (
    DEFAULT_STAGE_COSTS,
    FUSABLE_OPS,
    chain_for_node,
    chain_for_region,
    compute_stage,
    in_row_nbytes,
    out_row_nbytes,
)
from repro.errors import FusionError
from repro.plans.plan import OpType, Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field


@pytest.fixture
def plan():
    return Plan()


class TestRowBytes:
    def test_source_explicit(self, plan):
        assert out_row_nbytes(plan.source("s", row_nbytes=12)) == 12

    def test_select_inherits(self, plan):
        src = plan.source("s", row_nbytes=12)
        sel = plan.select(src, Field("x") < 1)
        assert out_row_nbytes(sel) == 12
        assert in_row_nbytes(sel) == 12

    def test_join_default_widens(self, plan):
        left = plan.source("l", row_nbytes=8)
        right = plan.source("r", row_nbytes=12)
        j = plan.join(left, right)
        assert out_row_nbytes(j) == 8 + 12 - 4  # shared 4-byte key

    def test_explicit_override_wins(self, plan):
        left = plan.source("l", row_nbytes=8)
        right = plan.source("r", row_nbytes=12)
        j = plan.join(left, right, out_row_nbytes=99)
        assert out_row_nbytes(j) == 99

    def test_aggregate_output_size(self, plan):
        src = plan.source("s", row_nbytes=8)
        agg = plan.aggregate(src, ["g"], {"a": AggSpec("sum", "x"),
                                          "b": AggSpec("count")})
        assert out_row_nbytes(agg) == 8 * 2 + 4 * 1


class TestComputeStage:
    def test_select_stage(self, plan):
        src = plan.source("s", row_nbytes=4)
        sel = plan.select(src, Field("x") < 1, selectivity=0.3)
        st = compute_stage(sel, reads_input=True)
        assert st.kind is StageKind.FILTER
        assert st.selectivity == 0.3
        assert st.reads_bytes_per_input == 4

    def test_chained_filter_cheaper(self, plan):
        src = plan.source("s", row_nbytes=4)
        sel = plan.select(src, Field("x") < 1)
        first = compute_stage(sel, reads_input=True)
        chained = compute_stage(sel, reads_input=False)
        assert chained.insts_per_input < first.insts_per_input
        assert chained.reads_bytes_per_input == 0

    def test_hash_join_reads_table(self, plan):
        l, r = plan.source("l", row_nbytes=8), plan.source("r", row_nbytes=8)
        j = plan.join(l, r)
        st = compute_stage(j, reads_input=False)
        assert st.kind is StageKind.JOIN_PROBE
        assert st.reads_bytes_per_input == pytest.approx(
            DEFAULT_STAGE_COSTS.join_probe_read_factor * 8)

    def test_gather_join_cheaper_than_hash_join(self, plan):
        l, r = plan.source("l", row_nbytes=8), plan.source("r", row_nbytes=8)
        hj = plan.join(l, r)
        gj = plan.join(l, r, gather=True)
        hs = compute_stage(hj, reads_input=False)
        gs = compute_stage(gj, reads_input=False)
        assert gs.insts_per_input < hs.insts_per_input
        assert gs.reads_bytes_per_input < hs.reads_bytes_per_input

    def test_arith_scales_with_expression(self, plan):
        src = plan.source("s", row_nbytes=8)
        small = plan.arith(src, {"y": Field("x") + 1})
        big = plan.arith(src, {"y": (Field("x") + 1) * (Field("x") - 2) + Field("z")})
        assert (compute_stage(big, True).insts_per_input
                > compute_stage(small, True).insts_per_input)

    def test_product_expansion(self, plan):
        l, r = plan.source("l"), plan.source("r")
        pr = plan.product(l, r, right_rows=5)
        st = compute_stage(pr, reads_input=True)
        assert st.selectivity == 5.0

    def test_sort_has_no_compute_stage(self, plan):
        src = plan.source("s")
        srt = plan.sort(src)
        with pytest.raises(FusionError):
            compute_stage(srt, reads_input=True)


class TestChainForRegion:
    def test_single_select_shape(self, plan):
        src = plan.source("s", row_nbytes=4)
        sel = plan.select(src, Field("x") < 1)
        chain = chain_for_region([sel])
        assert len(chain.kernels) == 2  # compute + gather
        kinds = [s.kind for s in chain.kernels[0].stages]
        assert kinds[0] is StageKind.PARTITION
        assert kinds[-1] is StageKind.BUFFER
        assert chain.kernels[1].stages[0].kind is StageKind.GATHER

    def test_fused_chain_single_partition_buffer_gather(self, plan):
        """The Fig 6 shape: N filters share one partition/buffer/gather."""
        src = plan.source("s", row_nbytes=4)
        n1 = plan.select(src, Field("x") < 1)
        n2 = plan.select(n1, Field("x") < 2)
        n3 = plan.select(n2, Field("x") < 3)
        chain = chain_for_region([n1, n2, n3])
        kinds = [s.kind for s in chain.kernels[0].stages]
        assert kinds.count(StageKind.PARTITION) == 1
        assert kinds.count(StageKind.FILTER) == 3
        assert kinds.count(StageKind.BUFFER) == 1
        assert len(chain.kernels) == 2

    def test_only_first_stage_reads_input(self, plan):
        src = plan.source("s", row_nbytes=4)
        n1 = plan.select(src, Field("x") < 1)
        n2 = plan.select(n1, Field("x") < 2)
        chain = chain_for_region([n1, n2])
        filters = [s for s in chain.kernels[0].stages if s.kind is StageKind.FILTER]
        assert filters[0].reads_bytes_per_input > 0
        assert filters[1].reads_bytes_per_input == 0

    def test_terminal_aggregate_single_kernel(self, plan):
        src = plan.source("s", row_nbytes=4)
        sel = plan.select(src, Field("x") < 1)
        agg = plan.aggregate(sel, [], {"n": AggSpec("count")})
        chain = chain_for_region([sel, agg])
        assert len(chain.kernels) == 1  # no gather: reduce writes directly

    def test_join_contributes_side_kernel(self, plan):
        l = plan.source("l", row_nbytes=8)
        r = plan.source("r", row_nbytes=8)
        j = plan.join(l, r)
        chain = chain_for_region([j])
        assert len(chain.side_kernels) == 1
        build, feed = chain.side_kernels[0]
        assert feed is r
        assert build.stages[0].kind is StageKind.HASH_BUILD

    def test_gather_join_no_side_kernel(self, plan):
        l = plan.source("l", row_nbytes=8)
        r = plan.source("r", row_nbytes=8)
        j = plan.join(l, r, gather=True)
        chain = chain_for_region([j])
        assert chain.side_kernels == []

    def test_empty_region_rejected(self):
        with pytest.raises(FusionError):
            chain_for_region([])

    def test_barrier_op_rejected(self, plan):
        srt = plan.sort(plan.source("s"))
        with pytest.raises(FusionError):
            chain_for_region([srt])


class TestBarrierChains:
    def test_sort_passes_scale_with_log_n(self, plan):
        src = plan.source("s", row_nbytes=8)
        srt = plan.sort(src)
        small = chain_for_node(srt, n_in_hint=1 << 10)
        big = chain_for_node(srt, n_in_hint=1 << 20)
        r_small = small.kernels[0].stages[0].reads_bytes_per_input
        r_big = big.kernels[0].stages[0].reads_bytes_per_input
        assert r_big / r_small == pytest.approx(2.0, rel=0.05)

    def test_unique_has_sort_compact_gather(self, plan):
        u = plan.unique(plan.source("s", row_nbytes=8))
        chain = chain_for_node(u, n_in_hint=1000)
        assert len(chain.kernels) == 3

    def test_union_single_dedup_kernel(self, plan):
        u = plan.union(plan.source("a"), plan.source("b"))
        chain = chain_for_node(u)
        assert len(chain.kernels) == 1

    def test_fusable_op_delegates_to_region(self, plan):
        sel = plan.select(plan.source("s"), Field("x") < 1)
        chain = chain_for_node(sel)
        assert len(chain.kernels) == 2

    def test_all_fusable_ops_lower(self, plan):
        """Every op in FUSABLE_OPS must produce a compute stage."""
        l = plan.source("l", row_nbytes=8)
        r = plan.source("r", row_nbytes=8)
        nodes = {
            OpType.SELECT: plan.select(l, Field("x") < 1),
            OpType.PROJECT: plan.project(l, ["x"]),
            OpType.ARITH: plan.arith(l, {"y": Field("x") + 1}),
            OpType.JOIN: plan.join(l, r),
            OpType.LEFT_JOIN: plan.left_join(l, r),
            OpType.SEMI_JOIN: plan.semi_join(l, r),
            OpType.ANTI_JOIN: plan.anti_join(l, r),
            OpType.INTERSECTION: plan.intersection(l, r),
            OpType.DIFFERENCE: plan.difference(l, r),
            OpType.PRODUCT: plan.product(l, r),
            OpType.AGGREGATE: plan.aggregate(l, [], {"n": AggSpec("count")}),
        }
        assert set(nodes) == set(FUSABLE_OPS)
        for op, node in nodes.items():
            stage = compute_stage(node, reads_input=True)
            assert stage.insts_per_input > 0, op

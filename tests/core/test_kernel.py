"""Tests for the kernel IR (stages, traffic propagation, register pressure)."""

import pytest

from repro.core.kernel import Kernel, KernelChain, StageKind, StageSpec
from repro.simgpu import DeviceSpec


@pytest.fixture(scope="module")
def dev():
    return DeviceSpec()


def filter_stage(sel=0.5, reads=4.0, regs=7, insts=80.0, name="f"):
    return StageSpec(StageKind.FILTER, name, insts_per_input=insts,
                     reads_bytes_per_input=reads, selectivity=sel, regs=regs)


def buffer_stage(out_bytes=4.0):
    return StageSpec(StageKind.BUFFER, "buffer", insts_per_input=6.0,
                     writes_bytes_per_output=out_bytes, regs=3)


class TestKernel:
    def test_register_pressure_sums_stages(self):
        k = Kernel("k", [filter_stage(regs=7), filter_stage(regs=9)], base_regs=6)
        assert k.regs_per_thread == 6 + 7 + 9

    def test_output_selectivity_multiplies(self):
        k = Kernel("k", [filter_stage(sel=0.5), filter_stage(sel=0.4)])
        assert k.output_selectivity == pytest.approx(0.2)

    def test_traffic_propagates_through_selectivity(self):
        k = Kernel("k", [filter_stage(sel=0.5, reads=4.0), buffer_stage(4.0)])
        reads, writes, insts = k.traffic_and_insts(1000)
        assert reads == pytest.approx(4.0 * 1000)
        # buffer writes only the 500 survivors
        assert writes == pytest.approx(4.0 * 500)
        assert insts == pytest.approx(80.0 * 1000 + 6.0 * 500)

    def test_chained_stage_sees_reduced_input(self):
        k = Kernel("k", [filter_stage(sel=0.5, insts=10),
                         filter_stage(sel=0.5, insts=10, reads=0.0)])
        _, _, insts = k.traffic_and_insts(1000)
        assert insts == pytest.approx(10 * 1000 + 10 * 500)

    def test_launch_spec_fields(self, dev):
        k = Kernel("k", [filter_stage()])
        spec = k.launch_spec(10_000, dev)
        assert spec.num_elements == 10_000
        assert spec.regs_per_thread == k.regs_per_thread
        assert spec.bytes_read == pytest.approx(4.0 * 10_000)

    def test_duration_positive(self, dev):
        k = Kernel("k", [filter_stage()])
        assert k.duration(10_000, dev) > 0


class TestKernelChain:
    def _chain(self):
        compute = Kernel("c", [filter_stage(sel=0.5), buffer_stage()])
        gather = Kernel("g", [StageSpec(StageKind.GATHER, "g",
                                        insts_per_input=8.0,
                                        reads_bytes_per_input=2.0,
                                        writes_bytes_per_output=2.0, regs=8)])
        return KernelChain("sel", [compute, gather])

    def test_main_launch_specs_scale_down_chain(self, dev):
        chain = self._chain()
        specs = chain.main_launch_specs(1000, dev)
        assert len(specs) == 2
        assert specs[0].num_elements == 1000
        assert specs[1].num_elements == 500  # gather sees survivors

    def test_chain_selectivity(self):
        assert self._chain().output_selectivity == pytest.approx(0.5)

    def test_total_duration_sums(self, dev):
        chain = self._chain()
        total = chain.total_duration(100_000, dev)
        parts = sum(
            __import__("repro.simgpu.compute", fromlist=["kernel_duration"])
            .kernel_duration(dev, s) for s in chain.launch_specs(100_000, dev))
        assert total == pytest.approx(parts)

    def test_side_kernels_sized_from_dict(self, dev):
        class FakeNode:
            name = "dim"
        build = Kernel("b", [filter_stage(sel=1.0)])
        chain = KernelChain("j", [Kernel("c", [filter_stage()])],
                            side_kernels=[(build, FakeNode())])
        specs = chain.side_launch_specs(dev, {"dim": 777})
        assert specs[0].num_elements == 777

    def test_side_kernels_default_size_one(self, dev):
        class FakeNode:
            name = "dim"
        build = Kernel("b", [filter_stage(sel=1.0)])
        chain = KernelChain("j", [], side_kernels=[(build, FakeNode())])
        assert chain.side_launch_specs(dev)[0].num_elements == 1

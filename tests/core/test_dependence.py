"""Tests for the dependence classification (paper SS III-C rules)."""

import pytest

from repro.core.dependence import DepClass, classify_edge, is_fusable_into_chain
from repro.plans.plan import Plan
from repro.ra.expr import Field


@pytest.fixture
def plan():
    return Plan()


def test_select_select_elementwise(plan):
    src = plan.source("s")
    a = plan.select(src, Field("x") < 1)
    b = plan.select(a, Field("x") < 2)
    assert classify_edge(a, b, 0) is DepClass.ELEMENTWISE
    assert is_fusable_into_chain(a, b)


def test_join_join_fusable(plan):
    """Paper: 'JOIN-JOIN can be fused'."""
    s1, s2, s3 = plan.source("a"), plan.source("b"), plan.source("c")
    j1 = plan.join(s1, s2)
    j2 = plan.join(j1, s3)
    assert classify_edge(j1, j2, 0) is DepClass.ELEMENTWISE
    assert is_fusable_into_chain(j1, j2)


def test_sort_join_barrier(plan):
    """Paper: 'SORT-JOIN cannot [be fused]'."""
    s1, s2 = plan.source("a"), plan.source("b")
    srt = plan.sort(s1)
    j = plan.join(srt, s2)
    assert classify_edge(srt, j, 0) is DepClass.BARRIER
    assert not is_fusable_into_chain(srt, j)


def test_sort_cannot_fuse_as_consumer(plan):
    src = plan.source("s")
    sel = plan.select(src, Field("x") < 1)
    srt = plan.sort(sel)
    assert classify_edge(sel, srt, 0) is DepClass.BARRIER


def test_unique_barrier_both_ways(plan):
    src = plan.source("s")
    u = plan.unique(src)
    sel = plan.select(u, Field("x") < 1)
    assert classify_edge(u, sel, 0) is DepClass.BARRIER
    sel2 = plan.select(src, Field("x") < 1)
    u2 = plan.unique(sel2)
    assert classify_edge(sel2, u2, 0) is DepClass.BARRIER


def test_join_build_side_barrier(plan):
    s1, s2 = plan.source("a"), plan.source("b")
    sel = plan.select(s2, Field("x") < 1)
    j = plan.join(s1, sel)
    assert classify_edge(sel, j, 1) is DepClass.BARRIER
    assert not is_fusable_into_chain(sel, j)  # sel is the *second* input


def test_probe_side_of_semi_join_elementwise(plan):
    s1, s2 = plan.source("a"), plan.source("b")
    sel = plan.select(s1, Field("x") < 1)
    sj = plan.semi_join(sel, s2)
    assert classify_edge(sel, sj, 0) is DepClass.ELEMENTWISE


def test_aggregate_fusable_as_consumer_only(plan):
    src = plan.source("s")
    sel = plan.select(src, Field("x") < 1)
    agg = plan.aggregate(sel, [], {"n": None})
    assert classify_edge(sel, agg, 0) is DepClass.ELEMENTWISE
    # but AGGREGATE's own output is a barrier
    sel2 = plan.select(agg, Field("n") > 1)
    assert classify_edge(agg, sel2, 0) is DepClass.BARRIER


def test_union_barrier(plan):
    a, b = plan.source("a"), plan.source("b")
    u = plan.union(a, b)
    sel = plan.select(u, Field("x") < 1)
    assert classify_edge(u, sel, 0) is DepClass.BARRIER


def test_arith_elementwise(plan):
    src = plan.source("s")
    ar = plan.arith(src, {"y": Field("x") + 1})
    sel = plan.select(ar, Field("y") < 1)
    assert classify_edge(ar, sel, 0) is DepClass.ELEMENTWISE


def test_is_fusable_requires_direct_edge(plan):
    a, b = plan.source("a"), plan.source("b")
    s1 = plan.select(a, Field("x") < 1)
    s2 = plan.select(b, Field("x") < 1)
    assert not is_fusable_into_chain(s1, s2)

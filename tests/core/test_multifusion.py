"""Tests for shared-scan (pattern (c)) fusion."""

import numpy as np
import pytest

from repro.core.multifusion import (
    SharedScanGroup,
    chain_for_shared_scan,
    find_shared_select_groups,
    multi_select,
)
from repro.errors import FusionError
from repro.plans.plan import Plan
from repro.ra import Field, Relation, select
from repro.simgpu import DeviceSpec


def shared_plan(k=3):
    plan = Plan()
    src = plan.source("t", row_nbytes=4)
    selects = [plan.select(src, Field("x") < 10 * (i + 1),
                           selectivity=0.1 * (i + 1), name=f"q{i}")
               for i in range(k)]
    return plan, src, selects


class TestDiscovery:
    def test_finds_group(self):
        plan, src, selects = shared_plan(3)
        groups = find_shared_select_groups(plan)
        assert len(groups) == 1
        assert groups[0].producer is src
        assert set(groups[0].selects) == set(selects)

    def test_single_consumer_not_a_group(self):
        plan, _, _ = shared_plan(1)
        assert find_shared_select_groups(plan) == []

    def test_non_select_consumers_ignored(self):
        plan, src, _ = shared_plan(2)
        plan.sort(src, name="also_consumes")
        groups = find_shared_select_groups(plan)
        assert len(groups) == 1
        assert len(groups[0].selects) == 2


class TestLowering:
    def test_chain_shape(self):
        plan, src, selects = shared_plan(3)
        chain = chain_for_shared_scan(SharedScanGroup(src, tuple(selects)))
        assert len(chain.kernels) == 2
        # input read exactly once
        reads, writes, _ = chain.kernels[0].traffic_and_insts(1000)
        assert reads == pytest.approx(4 * 1000)
        # outputs: sum of the three selectivities
        assert writes == pytest.approx(4 * 1000 * (0.1 + 0.2 + 0.3))

    def test_needs_two_selects(self):
        plan, src, selects = shared_plan(1)
        with pytest.raises(FusionError):
            chain_for_shared_scan(SharedScanGroup(src, tuple(selects)))

    def test_shared_scan_beats_separate_scans(self):
        """The point of pattern (c): K selects, one input read."""
        device = DeviceSpec()
        plan, src, selects = shared_plan(3)
        from repro.core.opmodels import chain_for_region
        group_time = chain_for_shared_scan(
            SharedScanGroup(src, tuple(selects))).total_duration(10**8, device)
        separate = sum(chain_for_region([s]).total_duration(10**8, device)
                       for s in selects)
        assert group_time < separate

    @staticmethod
    def _ratio(k):
        """separate/shared time for k equal-selectivity SELECTs."""
        device = DeviceSpec()
        from repro.core.opmodels import chain_for_region
        plan = Plan()
        src = plan.source("t", row_nbytes=4)
        selects = [plan.select(src, Field("x") < 10, selectivity=0.2,
                               name=f"q{i}") for i in range(k)]
        shared = chain_for_shared_scan(
            SharedScanGroup(src, tuple(selects))).total_duration(10**8, device)
        separate = sum(chain_for_region([s]).total_duration(10**8, device)
                       for s in selects)
        return separate / shared

    def test_savings_grow_with_group_size(self):
        assert 1.0 < self._ratio(2) < self._ratio(3)

    def test_register_pressure_caps_group_size(self):
        """Very large groups hold too many output cursors live per thread;
        occupancy/spill eventually erases the shared-scan win (the SS III-C
        caveat applies to this rewrite too)."""
        assert self._ratio(10) < self._ratio(3)


class TestFunctional:
    @pytest.fixture
    def rel(self, rng):
        return Relation({"x": rng.integers(0, 100, 50_000).astype(np.int32)})

    def test_equals_separate_selects(self, rel):
        preds = [Field("x") < 10, Field("x") < 50, Field("x") >= 90]
        outs = multi_select(rel, preds)
        for out, pred in zip(outs, preds):
            assert out.to_tuples() == select(rel, pred).to_tuples()

    def test_outputs_independent(self, rel):
        preds = [Field("x") < 0, Field("x") >= 0]
        empty, full = multi_select(rel, preds)
        assert empty.num_rows == 0
        assert full.num_rows == rel.num_rows

    def test_needs_predicates(self, rel):
        with pytest.raises(FusionError):
            multi_select(rel, [])

    def test_cta_count_irrelevant(self, rel):
        preds = [Field("x") < 30, Field("x") < 70]
        a = multi_select(rel, preds, num_ctas=1)
        b = multi_select(rel, preds, num_ctas=500)
        for ra, rb in zip(a, b):
            assert ra.to_tuples() == rb.to_tuples()


class TestGroupSplitting:
    def _group(self, k):
        plan = Plan()
        src = plan.source("t", row_nbytes=4)
        selects = [plan.select(src, Field("x") < 10, selectivity=0.2,
                               name=f"q{i}") for i in range(k)]
        return SharedScanGroup(src, tuple(selects))

    def test_small_group_unsplit(self):
        from repro.core.multifusion import split_group_by_registers
        groups = split_group_by_registers(self._group(3))
        assert len(groups) == 1

    def test_oversized_group_split(self):
        from repro.core.multifusion import split_group_by_registers
        groups = split_group_by_registers(self._group(12))
        assert len(groups) >= 2
        assert sum(len(g.selects) for g in groups) == 12

    def test_split_groups_within_budget(self):
        from repro.core.multifusion import split_group_by_registers
        for g in split_group_by_registers(self._group(12)):
            if len(g.selects) >= 2:
                chain = chain_for_shared_scan(g)
                assert max(k.regs_per_thread for k in chain.kernels) <= 63

    def test_split_preserves_producer(self):
        from repro.core.multifusion import split_group_by_registers
        group = self._group(10)
        for g in split_group_by_registers(group):
            assert g.producer is group.producer

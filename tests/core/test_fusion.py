"""Tests for the fusion pass."""

import pytest

from repro.core.cost import FusionCostModel
from repro.core.fusion import fuse_plan
from repro.plans.plan import OpType, Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field
from repro.simgpu import DeviceSpec


def select_chain(n):
    plan = Plan()
    node = plan.source("in", row_nbytes=4)
    for i in range(n):
        node = plan.select(node, Field("x") < i + 1, name=f"s{i}")
    return plan


class TestChains:
    def test_two_selects_fuse(self):
        fr = fuse_plan(select_chain(2))
        assert fr.num_fused_regions == 1
        assert [len(r.nodes) for r in fr.regions] == [2]

    def test_five_selects_fuse_into_one(self):
        fr = fuse_plan(select_chain(5))
        assert [len(r.nodes) for r in fr.regions] == [5]

    def test_disabled_leaves_singletons(self):
        fr = fuse_plan(select_chain(3), enable=False)
        assert all(len(r.nodes) == 1 for r in fr.regions)
        assert fr.num_fused_regions == 0

    def test_kernels_saved_counter(self):
        fr = fuse_plan(select_chain(3))
        assert fr.num_kernels_saved == 4  # 2 extra ops x (compute+gather)

    def test_region_selectivity(self):
        plan = Plan()
        node = plan.source("in")
        node = plan.select(node, Field("x") < 1, selectivity=0.5)
        node = plan.select(node, Field("x") < 2, selectivity=0.4)
        fr = fuse_plan(plan)
        assert fr.regions[0].selectivity == pytest.approx(0.2)

    def test_describe_mentions_fused(self):
        text = fuse_plan(select_chain(2)).describe()
        assert "FUSED" in text

    def test_region_of(self):
        plan = select_chain(2)
        fr = fuse_plan(plan)
        node = plan.nodes[-1]
        assert node in fr.region_of(node).nodes
        with pytest.raises(KeyError):
            fr.region_of(plan.nodes[0])  # sources have no region


class TestBarriers:
    def test_sort_splits_chain(self):
        plan = Plan()
        node = plan.source("in")
        node = plan.select(node, Field("x") < 1, name="s0")
        node = plan.sort(node, name="srt")
        node = plan.select(node, Field("x") < 2, name="s1")
        fr = fuse_plan(plan)
        names = [r.name for r in fr.regions]
        assert names == ["s0", "srt", "s1"]

    def test_unique_not_fused(self):
        plan = Plan()
        node = plan.source("in")
        node = plan.select(node, Field("x") < 1)
        node = plan.unique(node)
        fr = fuse_plan(plan)
        assert fr.num_fused_regions == 0

    def test_q1_shape_select_joins_fuse_across_sort(self):
        """Fig 17(a): SELECT+JOINs fuse; SORT stands alone; ARITH+AGG fuse."""
        plan = Plan()
        node = plan.source("date", row_nbytes=4)
        node = plan.select(node, Field("d") < 1, name="sel")
        for i in range(6):
            src = plan.source(f"col{i}", row_nbytes=4)
            node = plan.join(node, src, gather=True, name=f"j{i}")
        node = plan.sort(node, name="srt")
        node = plan.arith(node, {"y": Field("x") * 2}, name="ar")
        plan.aggregate(node, [], {"n": AggSpec("count")}, name="agg")
        fr = fuse_plan(plan)
        sizes = [len(r.nodes) for r in fr.regions]
        assert sizes == [7, 1, 2]


class TestMultipleConsumers:
    def test_shared_intermediate_blocks_fusion(self):
        plan = Plan()
        src = plan.source("in")
        a = plan.select(src, Field("x") < 1, name="a")
        plan.select(a, Field("x") < 2, name="b")
        plan.select(a, Field("x") < 3, name="c")
        fr = fuse_plan(plan)
        # 'a' is consumed twice: materialize it, don't fuse
        assert all(len(r.nodes) == 1 for r in fr.regions)


class TestSideInputOrdering:
    def test_no_cycle_through_side_inputs(self):
        """A chain op whose build side depends on the chain's own input
        region must not create a cyclic region graph (the Q21 shape)."""
        plan = Plan()
        big = plan.source("big", row_nbytes=8)
        a = plan.select(big, Field("x") < 1, name="a")
        b = plan.project(a, ["x"], name="b")            # chain region
        agg = plan.aggregate(a, [], {"n": AggSpec("count")}, name="agg")
        flt = plan.select(agg, Field("n") > 1, name="flt")
        plan.semi_join(b, flt, name="semi")
        fr = fuse_plan(plan)
        # regions must come out in a valid topological order
        seen = set()
        for region in fr.regions:
            for node in region.nodes:
                for inp in node.inputs:
                    if inp.op is not OpType.SOURCE:
                        assert inp.name in seen or inp in region.nodes, (
                            f"{node.name} runs before its input {inp.name}")
                seen.add(node.name)

    def test_side_input_from_earlier_region_allows_fusion(self):
        plan = Plan()
        big = plan.source("big", row_nbytes=8)
        dim = plan.source("dim", row_nbytes=8)
        dsel = plan.select(dim, Field("k").eq(1), name="dsel")
        sel = plan.select(big, Field("x") < 1, name="sel")
        j = plan.join(sel, dsel, name="j")
        fr = fuse_plan(plan)
        fused = [r for r in fr.regions if r.fused]
        assert len(fused) == 1
        assert [n.name for n in fused[0].nodes] == ["sel", "j"]


class TestCostModelIntegration:
    def test_cost_model_approves_select_fusion(self):
        cm = FusionCostModel(DeviceSpec())
        fr = fuse_plan(select_chain(2), cost_model=cm)
        assert fr.num_fused_regions == 1
        assert fr.decisions and fr.decisions[0][1] is True

    def test_decisions_recorded(self):
        cm = FusionCostModel(DeviceSpec())
        fr = fuse_plan(select_chain(4), cost_model=cm)
        assert len(fr.decisions) == 3

"""Edge cases of :func:`repro.core.dependence.classify_edge` the original
dependence tests left uncovered: build-side inputs of every binary set
operator, AGGREGATE as a producer, and SOURCE edges."""

import pytest

from repro.core.dependence import DepClass, classify_edge, is_fusable_into_chain
from repro.plans.plan import Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field


def two_sided(op_name):
    plan = Plan(name="p")
    left = plan.source("l", fields=["k", "v"])
    right = plan.source("r", fields=["k", "v"])
    node = getattr(plan, op_name)(left, right, name="op")
    return left, right, node


class TestBuildSideInputs:
    @pytest.mark.parametrize("op_name", [
        "join", "semi_join", "anti_join", "intersection", "difference"])
    def test_build_side_is_barrier(self, op_name):
        left, right, node = two_sided(op_name)
        assert classify_edge(right, node, 1) is DepClass.BARRIER

    @pytest.mark.parametrize("op_name", [
        "join", "semi_join", "anti_join", "intersection", "difference"])
    def test_probe_side_is_elementwise(self, op_name):
        left, right, node = two_sided(op_name)
        assert classify_edge(left, node, 0) is DepClass.ELEMENTWISE

    def test_product_build_side(self):
        plan = Plan(name="p")
        left = plan.source("l", fields=["k"])
        right = plan.source("r", fields=["k"])
        node = plan.product(left, right, name="x")
        assert classify_edge(right, node, 1) is DepClass.BARRIER
        assert classify_edge(left, node, 0) is DepClass.ELEMENTWISE

    def test_union_is_barrier_on_both_sides(self):
        plan = Plan(name="p")
        left = plan.source("l", fields=["k"])
        right = plan.source("r", fields=["k"])
        node = plan.union(left, right, name="u")
        assert classify_edge(left, node, 0) is DepClass.BARRIER
        assert classify_edge(right, node, 1) is DepClass.BARRIER

    def test_build_side_never_extends_a_chain(self):
        left, right, node = two_sided("semi_join")
        assert not is_fusable_into_chain(right, node)
        assert is_fusable_into_chain(left, node)


class TestAggregateAsProducer:
    def test_aggregate_output_is_barrier(self):
        plan = Plan(name="p")
        src = plan.source("t", fields=["k", "v"])
        agg = plan.aggregate(src, ["k"], {"n": AggSpec("count")}, name="agg")
        sel = plan.select(agg, Field("n") < 5, name="sel")
        assert classify_edge(agg, sel, 0) is DepClass.BARRIER
        assert not is_fusable_into_chain(agg, sel)

    def test_aggregate_as_consumer_is_elementwise(self):
        # an aggregation consumes its input element-by-element (atomics),
        # so SELECT -> AGGREGATE fuses; only its *output* is a barrier
        plan = Plan(name="p")
        src = plan.source("t", fields=["k", "v"])
        sel = plan.select(src, Field("v") < 5, name="sel")
        agg = plan.aggregate(sel, ["k"], {"n": AggSpec("count")}, name="agg")
        assert classify_edge(sel, agg, 0) is DepClass.ELEMENTWISE
        assert is_fusable_into_chain(sel, agg)


class TestSourceEdges:
    def test_source_into_select_is_elementwise(self):
        plan = Plan(name="p")
        src = plan.source("t", fields=["v"])
        sel = plan.select(src, Field("v") < 5, name="sel")
        assert classify_edge(src, sel, 0) is DepClass.ELEMENTWISE

    def test_source_into_sort_is_barrier(self):
        plan = Plan(name="p")
        src = plan.source("t", fields=["v"])
        srt = plan.sort(src, by=["v"], name="srt")
        assert classify_edge(src, srt, 0) is DepClass.BARRIER

    def test_source_as_join_build_side_is_barrier(self):
        plan = Plan(name="p")
        probe = plan.source("probe", fields=["k"])
        build = plan.source("build", fields=["k"])
        j = plan.join(probe, build, on="k", name="j")
        assert classify_edge(build, j, 1) is DepClass.BARRIER
        assert classify_edge(probe, j, 0) is DepClass.ELEMENTWISE

"""Tests for the fusion cost model (SS III-C register-pressure caveat)."""

import pytest

from repro.core.cost import FusionCostModel
from repro.core.opmodels import chain_for_region
from repro.plans.plan import Plan
from repro.ra.expr import Field
from repro.simgpu import DeviceSpec


@pytest.fixture(scope="module")
def cm():
    return FusionCostModel(DeviceSpec())


def chain_nodes(n, fields_per_pred=1):
    plan = Plan()
    node = plan.source("in", row_nbytes=4)
    nodes = []
    for i in range(n):
        pred = Field(f"x{i % fields_per_pred}") < i
        node = plan.select(node, pred, name=f"s{i}")
        nodes.append(node)
    return nodes


class TestEvaluate:
    def test_two_selects_beneficial(self, cm):
        nodes = chain_nodes(2)
        d = cm.evaluate([nodes[0]], nodes[1])
        assert d.fuse
        assert d.benefit > 0
        assert d.fused_time < d.unfused_time

    def test_benefit_grows_with_chain(self, cm):
        nodes = chain_nodes(4)
        d2 = cm.evaluate([nodes[0]], nodes[1])
        d3 = cm.evaluate(nodes[:2], nodes[2])
        assert d3.benefit > 0 and d2.benefit > 0

    def test_register_pressure_reported(self, cm):
        nodes = chain_nodes(3)
        d = cm.evaluate(nodes[:2], nodes[2])
        chain = chain_for_region(nodes)
        assert d.fused_regs == max(k.regs_per_thread for k in chain.kernels)

    def test_long_chain_register_pressure_grows(self, cm):
        nodes = chain_nodes(12)
        d_short = cm.evaluate(nodes[:2], nodes[2])
        d_long = cm.evaluate(nodes[:11], nodes[11])
        assert d_long.fused_regs > d_short.fused_regs

    def test_spilling_chain_eventually_rejected(self, cm):
        """Fusing too many kernels raises register pressure past the Fermi
        limit; spill traffic must eventually make fusion lose (the paper's
        'fusing too many kernels may cause problems')."""
        nodes = chain_nodes(40)
        rejected = None
        for k in range(1, 40):
            d = cm.evaluate(nodes[:k], nodes[k])
            if not d.fuse:
                rejected = k
                break
        assert rejected is not None, "cost model never said no"

    def test_region_time_monotone_in_n(self, cm):
        nodes = chain_nodes(2)
        assert cm.region_time(nodes, 10**6) < cm.region_time(nodes, 10**7)

    def test_unfused_time_sums_operators(self, cm):
        nodes = chain_nodes(2)
        t_two = cm.unfused_time(nodes)
        t_one = cm.unfused_time(nodes[:1])
        assert t_two > t_one

    def test_min_relative_benefit_threshold(self):
        strict = FusionCostModel(DeviceSpec(), min_relative_benefit=0.99)
        nodes = chain_nodes(2)
        d = strict.evaluate([nodes[0]], nodes[1])
        assert not d.fuse  # a 99% improvement bar is never met

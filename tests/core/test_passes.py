"""Tests for the end-to-end compilation pipeline."""

import pytest

from repro.core.passes import CompiledPlan, PipelineOptions, compile_plan
from repro.plans import Plan
from repro.ra import Field
from repro.runtime import Strategy
from repro.runtime.select_chain import select_chain_plan
from repro.tpch import build_q1_plan, q1_source_rows


class TestCompilePlan:
    def test_select_chain_compiles(self):
        cp = compile_plan(select_chain_plan(3), {"input": 100_000_000})
        assert cp.fusion.num_fused_regions == 1
        assert cp.strategy is Strategy.FUSED_FISSION
        assert cp.num_kernels == 2

    def test_describe(self):
        cp = compile_plan(select_chain_plan(2), {"input": 10**6})
        text = cp.describe()
        assert "strategy" in text and "FUSED" in text

    def test_register_pressure_reported(self):
        cp = compile_plan(select_chain_plan(2), {"input": 10**6})
        assert 10 < cp.max_register_pressure <= 63

    def test_run_executes(self):
        cp = compile_plan(select_chain_plan(2), {"input": 50_000_000})
        result = cp.run()
        assert result.strategy is cp.strategy
        assert result.makespan > 0

    def test_q1_pipeline(self):
        cp = compile_plan(build_q1_plan(), q1_source_rows(1_000_000))
        region_sizes = [len(r.nodes) for r in cp.fusion.regions]
        assert region_sizes == [7, 1, 2]
        assert cp.strategy is Strategy.FUSED_FISSION

    def test_rewrites_applied(self):
        plan = Plan()
        node = plan.source("t", row_nbytes=4)
        node = plan.select(node, Field("x") < 90, selectivity=0.9, name="weak")
        node = plan.select(node, Field("x") < 10, selectivity=0.1, name="strong")
        cp = compile_plan(plan, {"t": 10**6})
        from repro.plans.plan import OpType
        selects = [n for n in cp.plan.topological() if n.op is OpType.SELECT]
        assert [n.selectivity for n in selects] == [0.1, 0.9]  # reordered

    def test_options_disable_rewrite(self):
        plan = Plan()
        node = plan.source("t", row_nbytes=4)
        node = plan.select(node, Field("x") < 90, selectivity=0.9, name="weak")
        plan.select(node, Field("x") < 10, selectivity=0.1, name="strong")
        cp = compile_plan(plan, {"t": 10**6},
                          options=PipelineOptions(rewrite=False))
        from repro.plans.plan import OpType
        selects = [n for n in cp.plan.topological() if n.op is OpType.SELECT]
        assert [n.selectivity for n in selects] == [0.9, 0.1]

    def test_options_disable_fusion(self):
        cp = compile_plan(select_chain_plan(3), {"input": 10**6},
                          options=PipelineOptions(fuse=False,
                                                  auto_strategy=False))
        assert cp.fusion.num_fused_regions == 0
        assert cp.strategy is Strategy.SERIAL

    def test_fixed_strategy_when_auto_disabled(self):
        cp = compile_plan(select_chain_plan(2), {"input": 10**6},
                          options=PipelineOptions(auto_strategy=False))
        assert cp.strategy is Strategy.FUSED

    def test_cost_model_respected(self):
        # 20 distinct-field selects: the cost model must split the chain
        plan = Plan()
        node = plan.source("t", row_nbytes=4)
        for i in range(20):
            node = plan.select(node, Field(f"c{i}") < i, name=f"s{i}")
        cp_cm = compile_plan(plan, {"t": 10**7})
        cp_nocm = compile_plan(plan, {"t": 10**7},
                               options=PipelineOptions(use_cost_model=False))
        assert len(cp_cm.fusion.regions) > len(cp_nocm.fusion.regions)
        assert cp_nocm.max_register_pressure > 63  # spilling without a guard
        assert cp_cm.max_register_pressure <= cp_nocm.max_register_pressure

    def test_compiled_run_matches_manual(self):
        from repro.runtime import ExecutionConfig, Executor
        cp = compile_plan(select_chain_plan(2), {"input": 100_000_000})
        ex = Executor(cp.device)
        manual = ex.run(cp.plan, cp.source_rows,
                        ExecutionConfig(strategy=cp.strategy))
        assert cp.run(ex).makespan == pytest.approx(manual.makespan, rel=1e-9)

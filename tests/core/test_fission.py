"""Tests for the fission pass (segmenting + pipelined schedule)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fission import FissionConfig, plan_segments, run_fissioned
from repro.simgpu import DeviceSpec, EventKind, KernelLaunchSpec


@pytest.fixture(scope="module")
def dev():
    return DeviceSpec()


def builder_for(dev, insts_per_elem=80.0, row=4.0, sel=0.5):
    def build(seg):
        n = seg.n_rows
        return [KernelLaunchSpec(
            "seg_kernel", n, 112, 256, 20,
            bytes_read=row * n, bytes_written=row * sel * n,
            instructions=insts_per_elem * n)]
    return build


class TestPlanSegments:
    def test_minimum_three_segments(self):
        segs = plan_segments(10_000, 4)
        assert len(segs) >= 3

    def test_segments_cover_rows_exactly(self):
        segs = plan_segments(1_000_003, 4)
        assert sum(s.n_rows for s in segs) == 1_000_003
        assert segs[0].start_row == 0
        for a, b in zip(segs, segs[1:]):
            assert b.start_row == a.start_row + a.n_rows

    def test_target_segment_bytes_respected(self):
        import math
        cfg = FissionConfig(target_segment_bytes=1 << 20)
        segs = plan_segments(10_000_000, 4, cfg)
        assert len(segs) == math.ceil(10_000_000 * 4 / (1 << 20))

    def test_max_segments_cap(self):
        cfg = FissionConfig(target_segment_bytes=1, max_segments=10)
        assert len(plan_segments(10_000, 4, cfg)) == 10

    def test_tiny_input_fewer_segments_than_rows(self):
        segs = plan_segments(2, 4)
        assert sum(s.n_rows for s in segs) == 2
        assert all(s.n_rows > 0 for s in segs)

    @given(st.integers(1, 10**7), st.sampled_from([1, 4, 8, 48]))
    @settings(max_examples=60, deadline=None)
    def test_partition_invariants(self, n, row):
        segs = plan_segments(n, row)
        assert sum(s.n_rows for s in segs) == n
        assert all(s.n_rows > 0 for s in segs)
        assert [s.index for s in segs] == sorted(set(s.index for s in segs))


class TestRunFissioned:
    def test_pipeline_beats_serial_sum(self, dev):
        n = 200_000_000
        tl = run_fissioned(dev, n, 4, 4, 0.5, builder_for(dev))
        serial_sum = sum(e.duration for e in tl.events
                         if e.kind is not EventKind.HOST)
        device_end = max(e.end for e in tl.events
                         if e.kind is not EventKind.HOST)
        assert device_end < 0.8 * serial_sum

    def test_pipeline_no_faster_than_bottleneck(self, dev):
        n = 200_000_000
        tl = run_fissioned(dev, n, 4, 4, 0.5, builder_for(dev))
        h2d_total = tl.total_time(EventKind.H2D)
        assert tl.makespan >= h2d_total  # can't beat the serialized engine

    def test_host_gather_appended_last(self, dev):
        tl = run_fissioned(dev, 10_000_000, 4, 4, 0.5, builder_for(dev))
        host = tl.filter(EventKind.HOST)
        assert len(host) == 1
        assert host[0].tag == "cpu_gather"
        assert host[0].end == tl.end_time

    def test_host_gather_disabled(self, dev):
        cfg = FissionConfig(host_gather=False)
        tl = run_fissioned(dev, 10_000_000, 4, 4, 0.5, builder_for(dev), cfg)
        assert tl.filter(EventKind.HOST) == []

    def test_transfer_bytes_conserved(self, dev):
        n = 50_000_000
        tl = run_fissioned(dev, n, 4, 4, 0.5, builder_for(dev))
        assert tl.bytes_moved(EventKind.H2D) == pytest.approx(4.0 * n)
        assert tl.bytes_moved(EventKind.D2H) == pytest.approx(2.0 * n, rel=0.01)

    def test_segments_round_robin_streams(self, dev):
        cfg = FissionConfig(num_streams=3)
        tl = run_fissioned(dev, 100_000_000, 4, 4, 0.5, builder_for(dev), cfg)
        streams = {e.stream for e in tl.filter(EventKind.H2D)}
        assert streams == {0, 1, 2}

    def test_segment_thunks_called_once_each(self, dev):
        seen = []
        run_fissioned(dev, 10_000_000, 4, 4, 0.5, builder_for(dev),
                      segment_thunk=lambda seg: seen.append(seg.index))
        assert sorted(seen) == list(range(len(set(seen))))
        assert len(seen) == len(set(seen))

    def test_zero_output_rows_skip_d2h(self, dev):
        """out_row_nbytes=0 (results stay on device): no zero-byte D2H
        commands should occupy the copy engine."""
        tl = run_fissioned(dev, 10_000_000, 4, 0, 0.5, builder_for(dev))
        assert tl.filter(EventKind.D2H) == []
        assert tl.bytes_moved(EventKind.D2H) == 0

    def test_zero_output_thunks_still_fire(self, dev):
        """With d2h skipped, per-segment thunks move to the last command."""
        seen = []
        tl = run_fissioned(dev, 10_000_000, 4, 0, 0.5, builder_for(dev),
                           segment_thunk=lambda seg: seen.append(seg.index))
        n_seg = len({e.tag for e in tl.filter(EventKind.H2D)})
        assert sorted(seen) == list(range(n_seg))

    def test_zero_output_schedule_is_sane(self, dev):
        from repro.validate import validate_timeline
        tl = run_fissioned(dev, 10_000_000, 4, 0, 0.5, builder_for(dev))
        assert validate_timeline(tl, dev).ok

    def test_multi_kernel_segments(self, dev):
        def build(seg):
            n = seg.n_rows
            return [
                KernelLaunchSpec("a", n, 112, 256, 20, 4.0 * n, 2.0 * n, 80.0 * n),
                KernelLaunchSpec("b", n // 2, 112, 256, 20, 2.0 * n, 1.0 * n, 40.0 * n),
            ]
        tl = run_fissioned(dev, 50_000_000, 4, 4, 0.25, build)
        kernels = tl.filter(EventKind.KERNEL)
        assert len(kernels) % 2 == 0
        # within one stream+segment, 'b' follows 'a'
        a0 = [e for e in kernels if e.tag == "a.seg0"][0]
        b0 = [e for e in kernels if e.tag == "b.seg0"][0]
        assert b0.start >= a0.end

"""Worker-pool end-to-end: byte-identity, crash replay, idempotency.

These tests fork real worker processes, so they keep traces small; the
heavier sweeps live in benchmarks/bench_worker_scaleout.py.
"""

import json

import pytest

from repro.faults import FaultKind, FaultPlan
from repro.serve import ArrivalProcess, QueryServer, ServeConfig
from repro.serve.dispatch import DispatchRequest, batch_fingerprint
from repro.validate import validate_pool
from repro.workers import WorkerPool, build_pool_report, merge_metrics


def trace(qps=60, duration=1.0, seed=5):
    return ArrivalProcess(qps=qps, duration_s=duration, seed=seed).trace()


def serve(tr, *, kill_worker=None, **cfg):
    cfg.setdefault("queue_capacity", 4096)
    server = QueryServer(config=ServeConfig(**cfg), kill_worker=kill_worker)
    result = server.run(trace=list(tr))
    server.close()
    return server, result


def summary_bytes(result):
    return json.dumps(result.metrics.summary(), sort_keys=True)


class TestByteIdentity:
    def test_pooled_matches_in_process(self):
        tr = trace()
        _, base = serve(tr, workers=1)
        server, pooled = serve(tr, workers=2)
        assert summary_bytes(pooled) == summary_bytes(base)
        report = build_pool_report(pooled.metrics, server.pool,
                                   server.config)
        assert report.identical
        assert validate_pool(server.pool).ok

    def test_merged_metrics_rebuilt_from_worker_logs(self):
        tr = trace()
        server, pooled = serve(tr, workers=2)
        merged = merge_metrics(server.pool.partials, pooled.metrics,
                               devices=1)
        assert merged.summary() == pooled.metrics.summary()

    def test_backend_stats_conserve(self):
        server, _ = serve(trace(), workers=2)
        s = server.backend_stats
        assert s["outbox.attempts"] == s["outbox.recorded"] + s["outbox.hits"]
        assert s["outbox.acked"] == s["outbox.recorded"]
        assert s["pool.kills"] == 0


class TestCrashReplay:
    def test_kill_mid_run_converges_to_no_kill_bytes(self):
        tr = trace()
        _, base = serve(tr, workers=1)
        # kill the worker that owns dispatches (hash routing with
        # pool_seed=0 sends this trace's tenants to worker 0)
        server, killed = serve(tr, workers=2, kill_worker=0)
        assert server.pool.kills == 1
        assert len(server.pool.respawn_events) == 1
        ev = server.pool.respawn_events[0]
        assert ev.restored + ev.redispatched == ev.expected
        assert summary_bytes(killed) == summary_bytes(base)
        assert validate_pool(server.pool).ok
        report = build_pool_report(killed.metrics, server.pool,
                                   server.config)
        assert report.identical

    def test_chaos_worker_kills_converge(self):
        tr = trace()
        _, base = serve(tr, workers=1)
        plan = FaultPlan(seed=7, rates={FaultKind.WORKER_KILL: 0.5},
                         budget=16)
        server, chaotic = serve(tr, workers=2, faults=plan)
        assert server.pool.kills > 0
        assert summary_bytes(chaotic) == summary_bytes(base)
        assert validate_pool(server.pool).ok

    def test_restored_entries_are_not_reexecuted(self):
        tr = trace()
        server, _ = serve(tr, workers=2, kill_worker=0)
        partials = {p.worker: p for p in server.pool.partials}
        restored = [r for p in partials.values() for r in p.dispatches
                    if r.restored]
        ev = server.pool.respawn_events[0]
        assert len(restored) == ev.restored


class TestIdempotentDispatch:
    @pytest.fixture()
    def pool(self, device):
        cfg = ServeConfig(workers=2)
        pool = WorkerPool(device, cfg)
        yield pool
        pool.close()

    def _assignments(self, n=3):
        reqs = trace()
        return [DispatchRequest((reqs[i],), i) for i in range(n)]

    def test_duplicate_round_never_reexecutes(self, pool, device):
        assignments = self._assignments()
        first = pool.execute_round(assignments, epoch=1)
        executed = dict(pool.heartbeat())
        # the retried round: same keys, recorded results, zero execution
        second = pool.execute_round(assignments, epoch=2)
        assert pool.heartbeat() == executed
        assert pool.outbox.hits == len(assignments)
        for a, b in zip(first, second):
            assert a[0] == b[0] and a[1] is b[1]

    def test_hits_survive_many_retries(self, pool):
        assignments = self._assignments(2)
        pool.execute_round(assignments, epoch=1)
        for epoch in range(2, 6):
            pool.execute_round(assignments, epoch=epoch)
        c = pool.outbox.counters()
        assert c["outbox.recorded"] == 2
        assert c["outbox.hits"] == 2 * 4
        assert c["outbox.attempts"] == c["outbox.recorded"] + c["outbox.hits"]

    def test_same_content_different_sequence_executes(self, pool):
        reqs = trace()
        a = DispatchRequest((reqs[0],), 0)
        b = DispatchRequest((reqs[0],), 1)  # same content, new sequence
        pool.execute_round([a], epoch=1)
        pool.execute_round([b], epoch=2)
        assert pool.outbox.recorded == 2
        assert pool.outbox.hits == 0
        assert batch_fingerprint(a.batch) == batch_fingerprint(b.batch)


class TestWarmLifecycle:
    def test_heartbeat_counts_executions(self):
        server, res = serve(trace(), workers=2)
        # pool is closed; partials carry the executed counts instead
        total = sum(len([r for r in p.dispatches if not r.restored])
                    for p in server.pool.partials)
        assert total == res.metrics.batches

    def test_warm_spawn_measured(self):
        server, _ = serve(trace(), workers=2)
        assert sorted(server.pool.warm_ms) == [0, 1]
        assert all(ms > 0 for ms in server.pool.warm_ms.values())

    def test_close_idempotent(self):
        server, _ = serve(trace(), workers=2)
        again = server.pool.close()
        assert again == server.backend_stats

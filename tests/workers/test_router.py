"""Tenant->worker routing: determinism, pinning, rebalancing."""

import pytest

from repro.workers import TenantRouter, route_tenant


class TestRouteTenant:
    def test_deterministic_and_in_range(self):
        for tenant in ("interactive", "reporting", "batch", "t42"):
            for n in (1, 2, 3, 8):
                w = route_tenant(tenant, n, seed=7)
                assert 0 <= w < n
                assert w == route_tenant(tenant, n, seed=7)

    def test_seed_reshuffles(self):
        routes = {route_tenant("interactive", 16, seed=s)
                  for s in range(32)}
        assert len(routes) > 1

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            route_tenant("t", 0)


class TestHashRouter:
    def test_tenant_sticky_across_epochs(self):
        r = TenantRouter(4, mode="hash", seed=0)
        first = r.route("interactive", epoch=1, nbytes=10.0, sequence=0)
        for epoch in (1, 2, 5):
            assert r.route("interactive", epoch, 10.0, 1) == first

    def test_assignment_log_complete(self):
        r = TenantRouter(2, mode="hash", seed=0)
        r.route("a", 1, 1.0, 0)
        r.route("b", 1, 1.0, 1)
        r.route("a", 2, 1.0, 2)
        assert [(a.epoch, a.tenant, a.sequence) for a in r.log] == [
            (1, "a", 0), (1, "b", 1), (2, "a", 2)]
        assert sum(r.dispatches_per_worker().values()) == 3


class TestLeastBytesRouter:
    def test_balances_by_outstanding_bytes(self):
        r = TenantRouter(2, mode="least-bytes", seed=0)
        assert r.route("a", 1, 100.0, 0) == 0  # tie -> lowest id
        assert r.route("b", 1, 1.0, 1) == 1    # 0 has 100 outstanding
        # epoch turns; worker 1 is lighter, so the next new tenant
        # lands there
        assert r.route("c", 2, 1.0, 2) == 1

    def test_epoch_pin_prevents_intra_epoch_split(self):
        r = TenantRouter(2, mode="least-bytes", seed=0)
        w = r.route("a", 1, 100.0, 0)
        # same epoch: pinned to w even though the other worker is empty
        assert r.route("a", 1, 100.0, 1) == w

    def test_acks_release_outstanding(self):
        r = TenantRouter(2, mode="least-bytes", seed=0)
        w = r.route("a", 1, 100.0, 0)
        r.note_ack(w, 100.0)
        assert r.outstanding[w] == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            TenantRouter(2, mode="round-robin")

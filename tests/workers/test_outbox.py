"""Idempotency keys and outbox conservation."""

import pytest

from repro.workers import DispatchKey, ResultOutbox


def key(seq=0, tenant="a", fp="f" * 64, seed=0):
    return DispatchKey(seed, tenant, fp, seq)


class TestDispatchKey:
    def test_token_keeps_full_fingerprint(self):
        fp = "ab" * 32
        assert fp in key(fp=fp).token

    def test_distinct_sequences_distinct_keys(self):
        assert key(seq=0) != key(seq=1)
        assert key(seq=0) == key(seq=0)


class TestOutbox:
    def test_first_attempt_misses_then_hits(self):
        ob = ResultOutbox()
        assert ob.lookup(key()) is None
        ob.record(key(), result="r", worker=0)
        entry = ob.lookup(key())
        assert entry is not None and entry.result == "r"
        assert entry.hits == 1
        assert ob.counters() == {
            "outbox.attempts": 2, "outbox.recorded": 1, "outbox.hits": 1,
            "outbox.acked": 0, "outbox.replays": 0}

    def test_conservation_attempts_equal_records_plus_hits(self):
        ob = ResultOutbox()
        for seq in range(5):
            if ob.lookup(key(seq=seq)) is None:
                ob.record(key(seq=seq), result=seq, worker=0)
        for seq in range(3):
            ob.lookup(key(seq=seq))
        c = ob.counters()
        assert c["outbox.attempts"] == c["outbox.recorded"] + c["outbox.hits"]

    def test_double_record_rejected(self):
        ob = ResultOutbox()
        ob.record(key(), result="r", worker=0)
        with pytest.raises(ValueError):
            ob.record(key(), result="r2", worker=1)

    def test_double_ack_counted_not_raised(self):
        ob = ResultOutbox()
        ob.record(key(), result="r", worker=0)
        ob.ack(key(), payload=(1.0, 0, ()))
        ob.ack(key(), payload=(2.0, 1, ()))
        entry = ob.entries[key()]
        assert entry.ack_count == 2
        assert entry.ack_payload == (1.0, 0, ())  # first payload wins

    def test_replay_moves_ownership(self):
        ob = ResultOutbox()
        ob.record(key(seq=0), result="r", worker=0)
        ob.record(key(seq=1), result="s", worker=1)
        ob.note_replay(key(seq=0), worker=2)
        assert [e.key.sequence for e in ob.for_worker(2)] == [0]
        assert [e.key.sequence for e in ob.for_worker(0)] == []
        assert ob.replays == 1

    def test_for_worker_preserves_dispatch_order(self):
        ob = ResultOutbox()
        for seq in (3, 1, 2):
            ob.record(key(seq=seq), result=seq, worker=0)
        assert [e.key.sequence for e in ob.for_worker(0)] == [3, 1, 2]

    def test_unacked(self):
        ob = ResultOutbox()
        ob.record(key(seq=0), result="r", worker=0)
        ob.record(key(seq=1), result="s", worker=0)
        ob.ack(key(seq=0), payload=None)
        assert [e.key.sequence for e in ob.unacked()] == [1]

"""Tests for the SQL tokenizer."""

import pytest

from repro.sql import SqlError, tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql) if t.kind != "eof"]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where")[0] == ("kw", "SELECT")
        assert kinds("select FROM Where")[1] == ("kw", "FROM")
        assert kinds("select FROM Where")[2] == ("kw", "WHERE")

    def test_identifiers(self):
        assert kinds("lineitem l_shipdate")[0] == ("ident", "lineitem")

    def test_numbers(self):
        assert kinds("42")[0] == ("number", "42")
        assert kinds("0.05")[0] == ("number", "0.05")
        assert kinds(".5")[0] == ("number", ".5")

    def test_strings(self):
        assert kinds("'SAUDI ARABIA'")[0] == ("string", "SAUDI ARABIA")

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_two_char_symbols_before_one_char(self):
        assert kinds("a <= b")[1] == ("symbol", "<=")
        assert kinds("a <> b")[1] == ("symbol", "<>")
        assert kinds("a < b")[1] == ("symbol", "<")

    def test_unknown_character(self):
        with pytest.raises(SqlError):
            tokenize("a ; b")

    def test_eof_token_appended(self):
        toks = tokenize("x")
        assert toks[-1].kind == "eof"

    def test_positions_recorded(self):
        toks = tokenize("ab cd")
        assert toks[0].pos == 0
        assert toks[1].pos == 3

    def test_arithmetic_expression(self):
        got = kinds("price * (1 - discount)")
        assert ("symbol", "*") in got and ("symbol", "(") in got

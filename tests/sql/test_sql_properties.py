"""Property-based tests for the SQL front end.

Random queries are generated structurally, rendered to SQL text, parsed
back, and executed -- the results must match the directly-constructed
reference computation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.plans import evaluate_sinks
from repro.ra import Relation
from repro.sql import parse, sql_to_plan

FIELDS = ["k", "v", "w"]
CMPS = ["<", "<=", ">", ">=", "=", "!="]

comparison_st = st.tuples(st.sampled_from(FIELDS), st.sampled_from(CMPS),
                          st.integers(0, 60))


def _rel(seed, n=3000):
    rng = np.random.default_rng(seed)
    return Relation({f: rng.integers(0, 60, n).astype(np.int32)
                     for f in FIELDS})


def _mask(rel, comparisons, connector):
    import operator
    ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
           ">=": operator.ge, "=": operator.eq, "!=": operator.ne}
    masks = [ops[c](rel[f], t) for f, c, t in comparisons]
    out = masks[0]
    for m in masks[1:]:
        out = (out & m) if connector == "AND" else (out | m)
    return out


@given(st.lists(comparison_st, min_size=1, max_size=4),
       st.sampled_from(["AND", "OR"]), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_where_clause_matches_numpy(comparisons, connector, seed):
    rel = _rel(seed % 1000)
    where = f" {connector} ".join(f"{f} {c} {t}" for f, c, t in comparisons)
    plan = sql_to_plan(f"SELECT k, v, w FROM t WHERE {where}")
    out = list(evaluate_sinks(plan, {"t": rel}).values())[0]
    expected = int(_mask(rel, comparisons, connector).sum())
    assert out.num_rows == expected


@given(st.sampled_from(FIELDS), st.sampled_from(FIELDS),
       st.integers(1, 5), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_grouped_sum_matches_numpy(group_field, value_field, scale, seed):
    rel = _rel(seed % 1000)
    plan = sql_to_plan(
        f"SELECT {group_field}, SUM({value_field} * {scale}) AS s "
        f"FROM t GROUP BY {group_field} ORDER BY {group_field}")
    out = list(evaluate_sinks(plan, {"t": rel}).values())[0]
    for g, s in zip(out[group_field], out["s"]):
        mask = rel[group_field] == g
        assert int(s) == int(rel[value_field][mask].sum()) * scale


@given(st.lists(comparison_st, min_size=1, max_size=3),
       st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_parse_is_deterministic_and_stable(comparisons, seed):
    where = " AND ".join(f"{f} {c} {t}" for f, c, t in comparisons)
    sql = f"SELECT k FROM t WHERE {where}"
    q1, q2 = parse(sql), parse(sql)
    assert q1.where == q2.where
    assert [i.alias for i in q1.items] == [i.alias for i in q2.items]


@given(st.integers(0, 60), st.integers(0, 60), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_between_equals_two_comparisons(lo, hi, seed):
    rel = _rel(seed % 1000)
    a = sql_to_plan(f"SELECT k FROM t WHERE k BETWEEN {lo} AND {hi}")
    b = sql_to_plan(f"SELECT k FROM t WHERE k >= {lo} AND k <= {hi}")
    ra = list(evaluate_sinks(a, {"t": rel}).values())[0]
    rb = list(evaluate_sinks(b, {"t": rel}).values())[0]
    assert ra.to_tuples() == rb.to_tuples()


@given(st.lists(comparison_st, min_size=1, max_size=3),
       st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_sql_plans_survive_the_full_pipeline(comparisons, seed):
    """Every generated query must compile and fuse without error."""
    from repro.core.passes import compile_plan
    where = " AND ".join(f"{f} {c} {t}" for f, c, t in comparisons)
    plan = sql_to_plan(f"SELECT k FROM t WHERE {where}")
    cp = compile_plan(plan, {"t": 1_000_000})
    assert cp.num_kernels >= 1
    assert cp.run().makespan > 0

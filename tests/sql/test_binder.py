"""Tests for SQL -> plan binding, end to end against the interpreter."""

import numpy as np
import pytest

from repro.plans import evaluate_sinks
from repro.plans.plan import OpType
from repro.ra import Relation
from repro.sql import SqlError, sql_to_plan
from repro.tpch.q1 import Q1_CUTOFF


@pytest.fixture
def data(rng):
    n = 20_000
    return {
        "t": Relation({
            "k": rng.integers(0, 50, n).astype(np.int32),
            "v": rng.integers(0, 100, n).astype(np.int32),
            "price": rng.random(n).astype(np.float64) * 100,
            "discount": (rng.integers(0, 11, n) / 100.0),
        }),
        "dim": Relation({
            "k": np.arange(50, dtype=np.int32),
            "label": rng.integers(0, 5, 50).astype(np.int32),
        }),
    }


def run(sql, data):
    plan = sql_to_plan(sql)
    plan.validate()
    out = evaluate_sinks(plan, data)
    return list(out.values())[0]


class TestPlanShapes:
    def test_filtered_scan(self):
        plan = sql_to_plan("SELECT k FROM t WHERE k < 10")
        ops = [n.op for n in plan.topological()]
        assert OpType.SELECT in ops
        assert OpType.SORT not in ops

    def test_aggregate_query_shape(self):
        plan = sql_to_plan(
            "SELECT g, SUM(x) AS s FROM t GROUP BY g ORDER BY g")
        ops = [n.op for n in plan.topological()]
        for expected in (OpType.SELECT, OpType.AGGREGATE, OpType.SORT):
            assert expected in ops or expected is OpType.SELECT  # no WHERE

    def test_sql_plans_fuse(self):
        from repro.core.fusion import fuse_plan
        plan = sql_to_plan(
            "SELECT k FROM t JOIN dim USING (k) WHERE k < 10")
        fr = fuse_plan(plan)
        # WHERE + JOIN + output project fuse into one region
        assert fr.num_fused_regions == 1
        assert len(fr.regions[0].nodes) >= 3

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(SqlError):
            sql_to_plan("SELECT g FROM t GROUP BY g")

    def test_non_grouped_plain_column_rejected(self):
        with pytest.raises(SqlError):
            sql_to_plan("SELECT v, SUM(k) AS s FROM t GROUP BY k")


class TestEndToEnd:
    def test_projection(self, data):
        out = run("SELECT k, v FROM t WHERE k < 10", data)
        ref = data["t"]
        mask = ref["k"] < 10
        assert out.num_rows == int(mask.sum())
        assert out.fields == ["k", "v"]

    def test_computed_column(self, data):
        out = run("SELECT price * (1 - discount) AS net FROM t WHERE k < 5",
                  data)
        ref = data["t"]
        mask = ref["k"] < 5
        expected = ref["price"][mask] * (1 - ref["discount"][mask])
        assert np.allclose(np.sort(out["net"]), np.sort(expected))

    def test_renamed_column(self, data):
        out = run("SELECT k AS key FROM t WHERE k < 3", data)
        assert out.fields == ["key"]

    def test_grouped_aggregation(self, data):
        out = run("SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM t "
                  "WHERE v < 50 GROUP BY k ORDER BY k", data)
        ref = data["t"]
        mask = ref["v"] < 50
        for krow, n, sv in zip(out["k"], out["n"], out["sv"]):
            sel = mask & (ref["k"] == krow)
            assert int(n) == int(sel.sum())
            assert int(sv) == int(ref["v"][sel].sum())
        assert list(out["k"]) == sorted(out["k"])

    def test_aggregate_of_expression(self, data):
        out = run("SELECT SUM(price * discount) AS rev FROM t", data)
        expected = float((data["t"]["price"] * data["t"]["discount"]).sum())
        assert float(out["rev"][0]) == pytest.approx(expected)

    def test_join_using(self, data):
        out = run("SELECT k, v, label FROM t JOIN dim USING (k) "
                  "WHERE k < 10", data)
        assert out.num_rows == int((data["t"]["k"] < 10).sum())
        assert "label" in out.fields

    def test_order_by_desc(self, data):
        out = run("SELECT k, COUNT(*) AS n FROM t GROUP BY k "
                  "ORDER BY n DESC", data)
        ns = list(out["n"])
        assert ns == sorted(ns, reverse=True)

    def test_between(self, data):
        out = run("SELECT k FROM t WHERE k BETWEEN 10 AND 20", data)
        assert ((out["k"] >= 10) & (out["k"] <= 20)).all()


class TestTpchInSql:
    def test_q6_in_sql_matches_reference(self, tpch_small):
        from repro.tpch.q6 import Q6_DATE_HI, Q6_DATE_LO, q6_reference
        sql = (f"SELECT SUM(extendedprice * discount) AS revenue "
               f"FROM lineitem "
               f"WHERE shipdate >= {Q6_DATE_LO} AND shipdate < {Q6_DATE_HI} "
               f"AND discount BETWEEN 0.049999 AND 0.070001 "
               f"AND quantity < 24")
        out = run(sql, {"lineitem": tpch_small.lineitem})
        assert float(out["revenue"][0]) == pytest.approx(
            q6_reference(tpch_small.lineitem), rel=1e-3)

    def test_q1_lite_in_sql(self, tpch_small):
        sql = (f"SELECT returnflag, linestatus, SUM(quantity) AS sum_qty, "
               f"COUNT(*) AS n FROM lineitem WHERE shipdate <= {Q1_CUTOFF} "
               f"GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus")
        out = run(sql, {"lineitem": tpch_small.lineitem})
        assert out.num_rows == 6
        from repro.tpch import q1_reference
        ref = q1_reference(tpch_small.lineitem)
        for i in range(out.num_rows):
            key = (int(out["returnflag"][i]), int(out["linestatus"][i]))
            assert int(out["n"][i]) == ref[key]["count_order"]
            assert float(out["sum_qty"][i]) == pytest.approx(
                ref[key]["sum_qty"], rel=1e-3)

    def test_sql_plan_through_compiler(self, tpch_small):
        """SQL -> plan -> full pipeline -> simulated execution."""
        from repro.core.passes import compile_plan
        sql = ("SELECT returnflag, SUM(quantity) AS q FROM lineitem "
               "WHERE discount < 0.05 GROUP BY returnflag")
        plan = sql_to_plan(sql)
        cp = compile_plan(plan, {"lineitem": 6_000_000})
        assert cp.fusion.num_fused_regions >= 1
        result = cp.run()
        assert result.makespan > 0


class TestDistinctAndHaving:
    def test_distinct_dedups(self, data):
        out = run("SELECT DISTINCT k FROM t WHERE k < 10", data)
        ks = [int(x) for x in out["k"]]
        assert len(ks) == len(set(ks))
        assert set(ks) == set(int(x) for x in data["t"]["k"] if x < 10)

    def test_distinct_plan_uses_unique_barrier(self):
        plan = sql_to_plan("SELECT DISTINCT k FROM t")
        ops = [n.op for n in plan.topological()]
        assert OpType.UNIQUE in ops

    def test_having_filters_groups(self, data):
        out = run("SELECT k, COUNT(*) AS n FROM t GROUP BY k "
                  "HAVING n > 400", data)
        assert (out["n"] > 400).all()
        full = run("SELECT k, COUNT(*) AS n FROM t GROUP BY k", data)
        expected = int((full["n"] > 400).sum())
        assert out.num_rows == expected

    def test_having_on_aggregate_expression(self, data):
        out = run("SELECT k, SUM(v) AS sv FROM t GROUP BY k "
                  "HAVING sv >= 20000", data)
        assert (out["sv"] >= 20000).all()

    def test_having_without_group_by_rejected(self):
        with pytest.raises(SqlError):
            sql_to_plan("SELECT SUM(v) AS s FROM t HAVING s > 1")

    def test_having_with_order_by(self, data):
        out = run("SELECT k, COUNT(*) AS n FROM t GROUP BY k "
                  "HAVING n > 300 ORDER BY n DESC", data)
        ns = list(out["n"])
        assert ns == sorted(ns, reverse=True)

"""Tests for the SQL parser."""

import pytest

from repro.ra.expr import And, BinOp, Compare, Const, Field, Not, Or
from repro.sql import SqlError, parse


class TestSelectItems:
    def test_plain_columns(self):
        q = parse("SELECT a, b FROM t")
        assert [i.alias for i in q.items] == ["a", "b"]
        assert all(isinstance(i.expr, Field) for i in q.items)

    def test_alias(self):
        q = parse("SELECT a AS x FROM t")
        assert q.items[0].alias == "x"

    def test_computed_expression(self):
        q = parse("SELECT price * (1 - discount) AS net FROM t")
        expr = q.items[0].expr
        assert isinstance(expr, BinOp) and expr.op == "*"

    def test_aggregates(self):
        q = parse("SELECT SUM(x) AS s, COUNT(*) AS n, AVG(y) AS a, "
                  "MIN(x) AS lo, MAX(x) AS hi FROM t")
        funcs = [i.agg.func for i in q.items]
        assert funcs == ["sum", "count", "mean", "min", "max"]
        assert q.items[1].agg.argument is None  # COUNT(*)

    def test_aggregate_of_expression(self):
        q = parse("SELECT SUM(price * discount) AS rev FROM t")
        assert isinstance(q.items[0].agg.argument, BinOp)


class TestClauses:
    def test_from(self):
        assert parse("SELECT a FROM lineitem").table == "lineitem"

    def test_joins(self):
        q = parse("SELECT a FROM t JOIN u USING (k) JOIN v USING (j)")
        assert [(j.table, j.using) for j in q.joins] == [("u", "k"), ("v", "j")]

    def test_where_comparison(self):
        q = parse("SELECT a FROM t WHERE a < 10")
        assert isinstance(q.where, Compare)
        assert q.where.op == "<"

    def test_where_and_or_not(self):
        q = parse("SELECT a FROM t WHERE a < 1 AND b > 2 OR NOT c = 3")
        assert isinstance(q.where, Or)
        assert isinstance(q.where.left, And)
        assert isinstance(q.where.right, Not)

    def test_between(self):
        q = parse("SELECT a FROM t WHERE d BETWEEN 1 AND 5")
        assert isinstance(q.where, And)
        assert q.where.left.op == ">="
        assert q.where.right.op == "<="

    def test_parenthesized_predicate(self):
        q = parse("SELECT a FROM t WHERE (a < 1 OR b < 2) AND c < 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.left, Or)

    def test_string_literal(self):
        q = parse("SELECT a FROM t WHERE name = 'SAUDI ARABIA'")
        assert q.where.right == Const("SAUDI ARABIA")

    def test_group_by(self):
        q = parse("SELECT g, SUM(x) AS s FROM t GROUP BY g")
        assert q.group_by == ["g"]

    def test_group_by_multiple(self):
        q = parse("SELECT a, b, COUNT(*) AS n FROM t GROUP BY a, b")
        assert q.group_by == ["a", "b"]

    def test_order_by(self):
        q = parse("SELECT a FROM t ORDER BY a DESC, b")
        assert q.order_by == [("a", True), ("b", False)]

    def test_order_by_asc_explicit(self):
        q = parse("SELECT a FROM t ORDER BY a ASC")
        assert q.order_by == [("a", False)]


class TestExpressions:
    def test_precedence(self):
        q = parse("SELECT a + b * c AS x FROM t")
        expr = q.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        q = parse("SELECT (a + b) * c AS x FROM t")
        assert q.items[0].expr.op == "*"

    def test_unary_minus(self):
        q = parse("SELECT 0 - a AS x FROM t WHERE a < -5")
        assert isinstance(q.where.right, BinOp)  # -5 -> (0 - 5)

    def test_float_and_int_constants(self):
        q = parse("SELECT a FROM t WHERE a < 0.05 AND b < 5")
        assert q.where.left.right == Const(0.05)
        assert q.where.right.right == Const(5)


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT FROM t",
        "SELECT a",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP a",
        "SELECT a FROM t JOIN u",
        "SELECT a FROM t trailing",
        "SELECT a FROM t WHERE a",
        "SELECT SUM( FROM t",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SqlError):
            parse(bad)

"""Tests for hybrid CPU+GPU execution."""

import pytest

from repro.runtime import Strategy
from repro.runtime.hybrid import balance_split, run_hybrid_select
from repro.runtime.select_chain import run_select_chain

N = 400_000_000


class TestHybrid:
    def test_gpu_only_matches_select_chain(self):
        r = run_hybrid_select(N, cpu_fraction=0.0)
        gpu = run_select_chain(N, 2, 0.5, Strategy.FUSED_FISSION)
        assert r.makespan == pytest.approx(gpu.makespan, rel=0.01)

    def test_cpu_only(self):
        r = run_hybrid_select(N, cpu_fraction=1.0)
        assert r.gpu_time == 0.0
        assert r.cpu_time > 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            run_hybrid_select(N, cpu_fraction=1.5)

    def test_hybrid_beats_gpu_only(self):
        """Offloading onto the otherwise-idle CPU must help (the Ocelot
        future-work claim)."""
        hybrid = run_hybrid_select(N)
        gpu_only = run_hybrid_select(N, cpu_fraction=0.0)
        assert hybrid.throughput > gpu_only.throughput

    def test_hybrid_beats_cpu_only(self):
        hybrid = run_hybrid_select(N)
        cpu_only = run_hybrid_select(N, cpu_fraction=1.0)
        assert hybrid.throughput > cpu_only.throughput

    def test_auto_split_is_balanced(self):
        r = run_hybrid_select(N)
        assert r.balance > 0.95

    def test_auto_split_beats_naive_splits(self):
        auto = run_hybrid_select(N)
        for frac in (0.1, 0.5, 0.9):
            manual = run_hybrid_select(N, cpu_fraction=frac)
            assert auto.makespan <= manual.makespan * 1.02

    @pytest.mark.no_chaos  # asserts a calibrated timing band
    def test_balance_split_fraction_sane(self):
        f = balance_split(N)
        # the GPU (even PCIe-bound) is faster than the CPU: it gets most
        assert 0.0 < f < 0.5

    def test_split_shifts_with_selectivity(self):
        """At high selectivity the CPU's scattered writes hurt it more, so
        its share should not grow."""
        f_low = balance_split(N, selectivity=0.1)
        f_high = balance_split(N, selectivity=0.9)
        assert f_high <= f_low + 0.02

    def test_throughput_definition(self):
        r = run_hybrid_select(N, cpu_fraction=0.3)
        assert r.throughput == pytest.approx(N * 4 / r.makespan)

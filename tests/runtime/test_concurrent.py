"""Tests for the Fig 12 concurrent-kernel study."""

import pytest

from repro.runtime.concurrent import run_two_selects


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_two_selects(1_000_000, "bogus")

    @pytest.mark.no_chaos  # asserts a calibrated timing band
    def test_new_config_roughly_half_speed(self):
        """'no stream (new)' uses half threads/CTAs -> ~half throughput."""
        n = 100_000_000
        old = run_two_selects(n, "old").throughput
        new = run_two_selects(n, "new").throughput
        assert 1.7 < old / new < 2.3

    def test_stream_beats_new_everywhere(self):
        for n in (2_000_000, 20_000_000, 200_000_000):
            s = run_two_selects(n, "stream").throughput
            new = run_two_selects(n, "new").throughput
            assert s > new

    def test_stream_beats_old_at_small_n(self):
        s = run_two_selects(2_000_000, "stream").throughput
        old = run_two_selects(2_000_000, "old").throughput
        assert s > old

    @pytest.mark.no_chaos  # compares timings across separately faulted runs
    def test_old_beats_stream_at_large_n(self):
        """Paper: 'stream is worse than (old) when number of elements
        exceeds 8 million.'"""
        s = run_two_selects(100_000_000, "stream").throughput
        old = run_two_selects(100_000_000, "old").throughput
        assert old > s

    def test_crossover_in_plausible_range(self):
        """The crossover should fall in the low tens of millions, as in
        Fig 12 (paper: ~8M)."""
        crossover = None
        prev_better = None
        for n in range(2_000_000, 40_000_000, 2_000_000):
            better = (run_two_selects(n, "stream").throughput
                      > run_two_selects(n, "old").throughput)
            if prev_better is True and better is False:
                crossover = n
                break
            prev_better = better
        assert crossover is not None
        assert 2_000_000 < crossover < 30_000_000

    def test_stream_kernels_concurrent(self):
        from repro.simgpu import EventKind
        r = run_two_selects(50_000_000, "stream")
        kernels = sorted(r.timeline.filter(EventKind.KERNEL),
                         key=lambda e: e.start)
        # the two streams' first kernels start together
        assert kernels[0].start == kernels[1].start

    def test_old_kernels_serialized(self):
        from repro.simgpu import EventKind
        r = run_two_selects(50_000_000, "old")
        kernels = sorted(r.timeline.filter(EventKind.KERNEL),
                         key=lambda e: e.start)
        for a, b in zip(kernels, kernels[1:]):
            assert b.start >= a.end

    def test_throughput_definition(self):
        r = run_two_selects(10_000_000, "old")
        assert r.throughput == pytest.approx(
            10_000_000 * 4 / r.timeline.makespan)

"""Tests for compressed-transfer execution and the compression model."""

import pytest

from repro.runtime.compressed import run_compressed_select_chain
from repro.simgpu import EventKind
from repro.simgpu.compression import BITPACK, DICT, NONE, RLE, CompressionScheme

N = 200_000_000


class TestScheme:
    def test_ratio_below_one_rejected(self):
        with pytest.raises(ValueError):
            CompressionScheme("bad", ratio=0.5, decompress_insts_per_elem=1)

    def test_wire_bytes(self):
        assert RLE.wire_bytes(1000) == pytest.approx(1000 / 2.5)
        assert NONE.wire_bytes(1000) == 1000

    def test_none_has_no_host_cost(self):
        assert NONE.host_compress_time(1e9) == 0.0

    def test_decompress_spec_traffic(self, device):
        spec = RLE.decompress_spec(1_000_000, 4, device)
        assert spec.bytes_read == pytest.approx(4_000_000 / 2.5)
        assert spec.bytes_written == 4_000_000


class TestCompressedRuns:
    def test_none_matches_plain_pipeline_shape(self):
        r = run_compressed_select_chain(N, scheme=NONE, fused=True)
        # no decompression kernel, 2 kernels for the fused chain
        kernels = r.timeline.filter(EventKind.KERNEL)
        assert len(kernels) == 2

    def test_compression_reduces_transfer_time(self):
        plain = run_compressed_select_chain(N, scheme=NONE, fused=True)
        comp = run_compressed_select_chain(N, scheme=RLE, fused=True)
        t_plain = sum(e.duration for e in plain.timeline.filter(EventKind.H2D))
        t_comp = sum(e.duration for e in comp.timeline.filter(EventKind.H2D))
        assert t_comp < t_plain / 2

    def test_compression_charges_decompress_kernel(self):
        comp = run_compressed_select_chain(N, scheme=RLE, fused=True)
        tags = [e.tag for e in comp.timeline.filter(EventKind.KERNEL)]
        assert any("decompress" in t for t in tags)

    @pytest.mark.no_chaos  # compares timings across separately faulted runs
    def test_compression_helps_end_to_end(self):
        """The He et al. claim: for PCIe-bound queries compression pays off
        despite the decompression kernel."""
        plain = run_compressed_select_chain(N, scheme=NONE, fused=True)
        for scheme in (RLE, DICT, BITPACK):
            comp = run_compressed_select_chain(N, scheme=scheme, fused=True)
            assert comp.throughput > plain.throughput, scheme.name

    def test_fusion_and_compression_compose(self):
        """The two techniques attack different parts of the time: fusion
        the compute, compression the transfer; together they beat either."""
        fusion_only = run_compressed_select_chain(N, scheme=NONE, fused=True)
        comp_only = run_compressed_select_chain(N, scheme=RLE, fused=False)
        both = run_compressed_select_chain(N, scheme=RLE, fused=True)
        assert both.throughput > fusion_only.throughput
        assert both.throughput > comp_only.throughput

    def test_host_pack_cost_charged_when_not_stored_compressed(self):
        free = run_compressed_select_chain(N, scheme=RLE,
                                           data_stored_compressed=True)
        paid = run_compressed_select_chain(N, scheme=RLE,
                                           data_stored_compressed=False)
        assert paid.makespan > free.makespan
        assert any(e.tag.startswith("compress")
                   for e in paid.timeline.filter(EventKind.HOST))

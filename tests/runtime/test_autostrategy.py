"""Tests for automatic strategy selection."""

import pytest

from repro.plans import Plan
from repro.ra import AggSpec, Field
from repro.runtime import Strategy
from repro.runtime.autostrategy import choose_strategy, run_auto
from repro.runtime.select_chain import select_chain_plan


class TestChooseStrategy:
    def test_select_chain_gets_fused_fission(self):
        plan = select_chain_plan(2)
        choice = choose_strategy(plan, {"input": 100_000_000})
        assert choice.strategy is Strategy.FUSED_FISSION

    def test_oversized_input_forces_fission(self):
        plan = select_chain_plan(2)
        choice = choose_strategy(plan, {"input": 4_000_000_000})
        assert choice.strategy is Strategy.FUSED_FISSION
        assert any("exceeds" in r for r in choice.reasons)

    def test_barrier_only_plan_is_serial(self):
        plan = Plan()
        t = plan.source("t", row_nbytes=8)
        plan.sort(t)
        choice = choose_strategy(plan, {"t": 1_000_000})
        assert choice.strategy is Strategy.SERIAL

    def test_sort_then_chain_fuses_without_fission(self):
        plan = Plan()
        t = plan.source("t", row_nbytes=8)
        n = plan.sort(t)
        n = plan.select(n, Field("k") < 1, name="a")
        n = plan.select(n, Field("k") < 2, name="b")
        choice = choose_strategy(plan, {"t": 1_000_000})
        # the chain fuses, but nothing elementwise touches the driver input
        assert choice.strategy is Strategy.FUSED

    def test_unfusable_pipelinable_gets_fission(self):
        plan = Plan()
        t = plan.source("t", row_nbytes=8)
        n = plan.select(t, Field("k") < 1, name="a")
        plan.sort(n)  # single select, nothing to fuse; select feeds driver
        # large enough that pipelined transfer beats the chunk overhead
        # (the optimizer prices the break-even; tiny inputs stay serial)
        choice = choose_strategy(plan, {"t": 10_000_000})
        assert choice.strategy is Strategy.FISSION

    def test_reasons_populated(self):
        choice = choose_strategy(select_chain_plan(2), {"input": 10**6})
        assert choice.reasons
        assert any("fusion" in r for r in choice.reasons)


class TestRunAuto:
    def test_runs_and_reports(self):
        plan = select_chain_plan(2)
        result, choice = run_auto(plan, {"input": 100_000_000})
        assert result.strategy is choice.strategy
        assert result.makespan > 0

    def test_auto_not_worse_than_serial(self):
        from repro.runtime import ExecutionConfig, Executor
        plan = select_chain_plan(2)
        rows = {"input": 200_000_000}
        ex = Executor()
        auto, _ = run_auto(plan, rows, ex)
        serial = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.SERIAL))
        assert auto.makespan <= serial.makespan

    def test_auto_matches_best_manual_on_q1(self):
        from repro.runtime import ExecutionConfig, Executor
        from repro.tpch import build_q1_plan, q1_source_rows
        plan = build_q1_plan()
        rows = q1_source_rows(2_000_000)
        ex = Executor()
        auto, choice = run_auto(plan, rows, ex)
        assert choice.strategy is Strategy.FUSED_FISSION
        manual = ex.run(plan, rows,
                        ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        assert auto.makespan == pytest.approx(manual.makespan, rel=1e-6)

"""Tests for the strategy enum and execution config."""

import pytest

from repro.core.fission import FissionConfig
from repro.runtime.strategies import ExecutionConfig, Strategy
from repro.simgpu import HostMemory


class TestStrategyFlags:
    def test_fusion_flags(self):
        assert Strategy.FUSED.uses_fusion
        assert Strategy.FUSED_FISSION.uses_fusion
        assert not Strategy.SERIAL.uses_fusion
        assert not Strategy.FISSION.uses_fusion
        assert not Strategy.WITH_ROUND_TRIP.uses_fusion

    def test_fission_flags(self):
        assert Strategy.FISSION.uses_fission
        assert Strategy.FUSED_FISSION.uses_fission
        assert not Strategy.FUSED.uses_fission
        assert not Strategy.SERIAL.uses_fission

    def test_values_roundtrip(self):
        for s in Strategy:
            assert Strategy(s.value) is s


class TestExecutionConfig:
    def test_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.strategy is Strategy.SERIAL
        assert cfg.memory is HostMemory.PINNED
        assert cfg.roundtrip_memory is HostMemory.PAGED
        assert cfg.include_transfers
        assert isinstance(cfg.fission, FissionConfig)

    def test_frozen(self):
        cfg = ExecutionConfig()
        with pytest.raises(Exception):
            cfg.strategy = Strategy.FUSED  # type: ignore[misc]

    def test_custom_fission_config(self):
        cfg = ExecutionConfig(fission=FissionConfig(num_streams=5))
        assert cfg.fission.num_streams == 5

"""Executor tests on SELECT chains: strategy behavior and breakdowns.

These are the structural assertions behind Figs 8-11; the benchmark suite
prints the quantitative comparisons.
"""

import pytest

from repro.errors import DeviceOOMError
from repro.plans.plan import Plan
from repro.ra.expr import Field
from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.runtime.select_chain import run_select_chain, select_chain_plan
from repro.simgpu import EventKind

N = 100_000_000


@pytest.fixture(scope="module")
def results():
    out = {}
    for strat in Strategy:
        out[strat] = run_select_chain(N, 2, 0.5, strat)
    return out


class TestStrategyOrdering:
    def test_fused_beats_serial_beats_round_trip(self, results):
        assert (results[Strategy.FUSED].throughput
                > results[Strategy.SERIAL].throughput
                > results[Strategy.WITH_ROUND_TRIP].throughput)

    def test_fission_beats_serial(self, results):
        assert results[Strategy.FISSION].throughput > results[Strategy.SERIAL].throughput

    def test_fused_fission_is_best(self, results):
        best = max(r.throughput for r in results.values())
        assert results[Strategy.FUSED_FISSION].throughput == pytest.approx(best, rel=0.02)


class TestTransferAccounting:
    def test_round_trip_time_only_in_wrt(self, results):
        assert results[Strategy.WITH_ROUND_TRIP].roundtrip_time > 0
        assert results[Strategy.SERIAL].roundtrip_time == 0
        assert results[Strategy.FUSED].roundtrip_time == 0

    def test_io_same_for_serial_and_fused(self, results):
        """Fig 9: 'the input/output time is the same for all three methods
        since they transfer the same amount of data.'"""
        a = results[Strategy.SERIAL].io_time
        b = results[Strategy.FUSED].io_time
        c = results[Strategy.WITH_ROUND_TRIP].io_time
        assert a == pytest.approx(b, rel=0.01)
        assert a == pytest.approx(c, rel=0.01)

    def test_round_trip_moves_intermediate_both_ways(self, results):
        tl = results[Strategy.WITH_ROUND_TRIP].timeline
        d2h = [e for e in tl.events if e.tag.startswith("roundtrip.out")]
        h2d = [e for e in tl.events if e.tag.startswith("roundtrip.in")]
        assert len(d2h) == len(h2d) == 1  # one intermediate (select0's output)
        assert d2h[0].nbytes == h2d[0].nbytes == pytest.approx(N * 4 * 0.5)

    def test_input_output_bytes(self, results):
        r = results[Strategy.SERIAL]
        assert r.input_bytes == N * 4
        assert r.output_bytes == pytest.approx(N * 4 * 0.25)


class TestComputeOnly:
    def test_no_transfers_in_compute_only(self):
        r = run_select_chain(N, 2, 0.5, Strategy.SERIAL, include_transfers=False)
        assert r.timeline.filter(EventKind.H2D) == []
        assert r.timeline.filter(EventKind.D2H) == []

    def test_fused_compute_faster(self):
        ru = run_select_chain(N, 2, 0.5, Strategy.SERIAL, include_transfers=False)
        rf = run_select_chain(N, 2, 0.5, Strategy.FUSED, include_transfers=False)
        assert rf.makespan < ru.makespan

    def test_fused_has_two_kernels_unfused_four(self):
        ru = run_select_chain(N, 2, 0.5, Strategy.SERIAL, include_transfers=False)
        rf = run_select_chain(N, 2, 0.5, Strategy.FUSED, include_transfers=False)
        assert len(ru.timeline.filter(EventKind.KERNEL)) == 4
        assert len(rf.timeline.filter(EventKind.KERNEL)) == 2

    def test_fusing_more_kernels_helps_more(self):
        """Fig 11(a): 3-SELECT fusion speedup exceeds 2-SELECT."""
        speed = {}
        for k in (2, 3):
            ru = run_select_chain(N, k, 0.5, Strategy.SERIAL, include_transfers=False)
            rf = run_select_chain(N, k, 0.5, Strategy.FUSED, include_transfers=False)
            speed[k] = ru.makespan / rf.makespan
        assert speed[3] > speed[2] > 1.4

    def test_benefit_grows_with_selectivity(self):
        """Fig 11(b): fusion helps more when more data is selected."""
        gain = {}
        for f in (0.1, 0.9):
            ru = run_select_chain(N, 2, f, Strategy.SERIAL, include_transfers=False)
            rf = run_select_chain(N, 2, f, Strategy.FUSED, include_transfers=False)
            gain[f] = ru.makespan / rf.makespan
        assert gain[0.9] > gain[0.1]


class TestChunking:
    def test_small_input_single_chunk(self, results):
        assert results[Strategy.SERIAL].num_chunks == 1

    def test_oversized_input_chunks(self):
        r = run_select_chain(3_000_000_000, 2, 0.5, Strategy.SERIAL)  # 12 GB
        assert r.num_chunks > 1

    def test_chunked_transfers_split(self):
        r = run_select_chain(3_000_000_000, 1, 0.5, Strategy.SERIAL)
        inputs = r.timeline.filter(EventKind.H2D)
        assert len(inputs) == r.num_chunks
        total = sum(e.nbytes for e in inputs)
        assert total == pytest.approx(3_000_000_000 * 4)

    def test_barrier_over_memory_raises(self):
        plan = Plan()
        n = plan.source("t", row_nbytes=4)
        n = plan.sort(n)
        ex = Executor()
        with pytest.raises(DeviceOOMError):
            ex.run(plan, {"t": 3_000_000_000},
                   ExecutionConfig(strategy=Strategy.SERIAL))

    def test_fission_handles_oversized_without_chunks(self):
        r = run_select_chain(3_000_000_000, 1, 0.5, Strategy.FISSION)
        assert r.num_chunks == 1
        assert len(r.timeline.filter(EventKind.H2D)) > 3  # segmented


class TestPlanBuilder:
    def test_select_chain_plan_shape(self):
        plan = select_chain_plan(3, 0.5)
        plan.validate()
        assert len([n for n in plan.nodes]) == 4  # source + 3 selects

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            select_chain_plan(0)

    def test_selectivity_recorded(self):
        plan = select_chain_plan(2, 0.3)
        selects = [n for n in plan.nodes if n.name.startswith("select")]
        assert all(n.selectivity == 0.3 for n in selects)

    def test_throughput_metric(self, results):
        r = results[Strategy.SERIAL]
        assert r.throughput == pytest.approx(r.input_bytes / r.makespan)

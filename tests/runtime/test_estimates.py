"""Tests for the cardinality-estimate profiler."""

import numpy as np
import pytest

from repro.plans import Plan
from repro.ra import Field, Relation
from repro.runtime.estimates import profile_estimates
from repro.tpch import (
    TpchConfig,
    build_q1_plan,
    build_q6_plan,
    generate,
    q1_column_relations,
)


@pytest.fixture
def rel(rng):
    return Relation({"k": rng.integers(0, 100, 50_000).astype(np.int32)})


class TestProfiler:
    def test_perfect_estimate(self, rel):
        plan = Plan()
        t = plan.source("t", row_nbytes=4)
        actual_sel = float((rel["k"] < 50).mean())
        plan.select(t, Field("k") < 50, selectivity=actual_sel, name="s")
        prof = profile_estimates(plan, {"t": rel})
        assert prof.max_relative_error < 0.01

    def test_bad_estimate_detected(self, rel):
        plan = Plan()
        t = plan.source("t", row_nbytes=4)
        plan.select(t, Field("k") < 50, selectivity=0.99, name="s")
        prof = profile_estimates(plan, {"t": rel})
        assert prof.worst().node == "s"
        assert prof.max_relative_error > 0.5

    def test_describe_renders(self, rel):
        plan = Plan()
        t = plan.source("t", row_nbytes=4)
        plan.select(t, Field("k") < 50, name="s")
        text = profile_estimates(plan, {"t": rel}).describe()
        assert "est/act" in text and "s" in text

    def test_zero_actual_handled(self, rel):
        plan = Plan()
        t = plan.source("t", row_nbytes=4)
        plan.select(t, Field("k") < -1, selectivity=0.5, name="empty")
        prof = profile_estimates(plan, {"t": rel})
        rec = prof.records[0]
        assert rec.actual == 0
        assert rec.ratio == float("inf")


class TestCalibratedPlans:
    def test_q1_annotations_accurate(self, tpch_small):
        """Q1's selectivity annotations must track the generator closely --
        this is what makes the Fig 18(a) simulation trustworthy."""
        prof = profile_estimates(build_q1_plan(),
                                 q1_column_relations(tpch_small.lineitem))
        assert prof.max_relative_error < 0.25

    def test_q6_annotations_accurate(self, tpch_small):
        prof = profile_estimates(build_q6_plan(),
                                 {"lineitem": tpch_small.lineitem})
        assert prof.max_relative_error < 0.35

    def test_q21_annotations_within_factor_two(self):
        """Q21's EXISTS/NOT-EXISTS rates are rough by nature; require the
        estimates to stay within ~2x of reality everywhere."""
        from repro.tpch import build_q21_plan
        data = generate(TpchConfig(scale_factor=0.01, seed=13))
        prof = profile_estimates(build_q21_plan(), {
            "lineitem": data.lineitem, "orders": data.orders,
            "supplier": data.supplier, "nation": data.nation})
        # judge only nodes big enough for a rate to be meaningful; the
        # terminal aggregates have single-digit actual rows at this scale
        material = [r for r in prof.records if r.actual >= 50]
        assert material
        for rec in material:
            assert 0.2 < rec.ratio < 5.0, (rec.node, rec.ratio)

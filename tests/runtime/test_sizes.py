"""Tests for cardinality propagation."""

import pytest

from repro.errors import PlanError
from repro.plans.plan import Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field
from repro.runtime.sizes import estimate_sizes


def test_source_rows_from_binding():
    plan = Plan()
    plan.source("t")
    assert estimate_sizes(plan, {"t": 123})["t"] == 123


def test_source_rows_from_params():
    plan = Plan()
    plan.source("t", n_rows=77)
    assert estimate_sizes(plan, {})["t"] == 77


def test_binding_overrides_params():
    plan = Plan()
    plan.source("t", n_rows=77)
    assert estimate_sizes(plan, {"t": 10})["t"] == 10


def test_missing_source_raises():
    plan = Plan()
    plan.source("t")
    with pytest.raises(PlanError):
        estimate_sizes(plan, {})


def test_selectivity_chain():
    plan = Plan()
    n = plan.source("t")
    n = plan.select(n, Field("x") < 1, selectivity=0.5, name="a")
    n = plan.select(n, Field("x") < 2, selectivity=0.1, name="b")
    sizes = estimate_sizes(plan, {"t": 1000})
    assert sizes["a"] == 500
    assert sizes["b"] == 50


def test_union_adds():
    plan = Plan()
    a, b = plan.source("a"), plan.source("b")
    plan.union(a, b, name="u")
    assert estimate_sizes(plan, {"a": 100, "b": 30})["u"] == 130


def test_product_multiplies_via_expansion():
    plan = Plan()
    a, b = plan.source("a"), plan.source("b")
    plan.product(a, b, right_rows=4, name="p")
    assert estimate_sizes(plan, {"a": 100, "b": 4})["p"] == 400


def test_aggregate_fixed_groups():
    plan = Plan()
    n = plan.source("t")
    plan.aggregate(n, ["g"], {"c": AggSpec("count")}, n_groups=6, name="agg")
    assert estimate_sizes(plan, {"t": 10**6})["agg"] == 6


def test_aggregate_group_rate():
    plan = Plan()
    n = plan.source("t")
    plan.aggregate(n, ["g"], {"c": AggSpec("count")}, n_groups=None,
                   group_rate=0.25, name="agg")
    assert estimate_sizes(plan, {"t": 1000})["agg"] == 250


def test_join_match_rate():
    plan = Plan()
    a, b = plan.source("a"), plan.source("b")
    plan.join(a, b, match_rate=0.3, name="j")
    assert estimate_sizes(plan, {"a": 1000, "b": 50})["j"] == 300


def test_zero_rows_propagates():
    plan = Plan()
    n = plan.source("t")
    plan.select(n, Field("x") < 1, selectivity=0.5, name="s")
    assert estimate_sizes(plan, {"t": 0})["s"] == 0

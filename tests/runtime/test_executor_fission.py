"""Executor tests for fission scheduling (prefix detection, co-drivers)."""

import pytest

from repro.plans.plan import Plan
from repro.ra.arithmetic import AggSpec
from repro.ra.expr import Field
from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.runtime.select_chain import run_select_chain
from repro.simgpu import EventKind
from repro.tpch import build_q1_plan, build_q21_plan, q1_source_rows, q21_source_rows

N = 500_000_000


@pytest.fixture(scope="module")
def ex():
    return Executor()


class TestPureChainFission:
    def test_fission_overlaps_transfers(self, ex):
        r = run_select_chain(N, 1, 0.5, Strategy.FISSION)
        tl = r.timeline
        h2d_busy = tl.busy_time(EventKind.H2D)
        # pipeline: total time is close to the H2D bottleneck, far below the
        # serialized sum of all events
        serial_sum = sum(e.duration for e in tl.events)
        assert tl.makespan < 0.85 * serial_sum
        assert tl.makespan >= h2d_busy

    @pytest.mark.no_chaos  # asserts a tight timing margin
    def test_fission_gain_over_serial(self, ex):
        """Fig 14: pipelined fission beats chunked serial by a healthy margin
        for data exceeding GPU memory."""
        big = 2_000_000_000
        rs = run_select_chain(big, 1, 0.5, Strategy.SERIAL)
        rf = run_select_chain(big, 1, 0.5, Strategy.FISSION)
        gain = rf.throughput / rs.throughput - 1
        assert 0.2 < gain < 0.6  # paper: +36.9%

    def test_whole_chain_ends_with_host_gather(self, ex):
        r = run_select_chain(N, 2, 0.5, Strategy.FISSION)
        host = r.timeline.filter(EventKind.HOST)
        assert len(host) == 1
        assert host[0].tag == "cpu_gather"

    @pytest.mark.no_chaos  # asserts a calibrated timing band
    def test_fig16_ordering(self, ex):
        """Fig 16: fusion+fission >= fission > fusion > serial."""
        big = 1_000_000_000
        tput = {s: run_select_chain(big, 2, 0.5, s).throughput
                for s in (Strategy.SERIAL, Strategy.FUSED,
                          Strategy.FISSION, Strategy.FUSED_FISSION)}
        assert tput[Strategy.FUSED_FISSION] >= tput[Strategy.FISSION] * 0.999
        assert tput[Strategy.FISSION] > tput[Strategy.FUSED]
        assert tput[Strategy.FUSED] > tput[Strategy.SERIAL]


class TestQ1Fission:
    def test_q1_co_driver_columns_stream_with_driver(self, ex):
        """Q1's six value columns are consumed positionally by gather joins
        inside the pipelined prefix: they must stream per segment, not be
        preloaded."""
        plan = build_q1_plan()
        r = ex.run(plan, q1_source_rows(20_000_000),
                   ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        pre_inputs = [e for e in r.timeline.events
                      if e.tag.startswith("input.")]
        assert pre_inputs == []  # every column flows through the pipeline
        seg_h2d = [e for e in r.timeline.filter(EventKind.H2D)
                   if e.tag.startswith("h2d.seg")]
        assert len(seg_h2d) >= 3
        total = sum(e.nbytes for e in seg_h2d)
        assert total == pytest.approx(20_000_000 * 4 * 7, rel=0.01)

    def test_q1_fission_hides_input(self, ex):
        plan = build_q1_plan()
        rows = q1_source_rows(6_000_000)
        fused = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.FUSED))
        both = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        assert both.makespan < fused.makespan

    def test_q1_sort_after_pipeline(self, ex):
        plan = build_q1_plan()
        r = ex.run(plan, q1_source_rows(6_000_000),
                   ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        tl = r.timeline
        sort_evs = [e for e in tl.events if "sort" in e.tag]
        seg_evs = [e for e in tl.events if ".seg" in e.tag]
        assert sort_evs and seg_evs
        assert min(e.start for e in sort_evs) >= max(e.end for e in seg_evs)


class TestQ21Fission:
    def test_q21_runs_and_improves(self, ex):
        plan = build_q21_plan()
        rows = q21_source_rows(6_000_000, 1_500_000, 10_000)
        serial = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.SERIAL))
        both = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        assert both.makespan < serial.makespan

    def test_q21_driver_dependent_side_work_after_pipeline(self, ex):
        """Parts of Q21 that need the whole lineitem (the per-order
        aggregates) must run after the pipelined prefix."""
        plan = build_q21_plan()
        rows = q21_source_rows(2_000_000, 500_000, 5_000)
        r = ex.run(plan, rows, ExecutionConfig(strategy=Strategy.FUSED_FISSION))
        tags = [e.tag for e in r.timeline.events]
        assert any("agg_supp_per_order" in t for t in tags)


class TestDegenerate:
    def test_no_pipelinable_prefix_falls_back_to_serial(self, ex):
        plan = Plan()
        n = plan.source("t", row_nbytes=8)
        n = plan.sort(n)  # barrier right at the driver
        plan.aggregate(n, [], {"c": AggSpec("count")})
        r = ex.run(plan, {"t": 1_000_000},
                   ExecutionConfig(strategy=Strategy.FISSION))
        assert r.makespan > 0
        assert any(e.tag.startswith("input.") for e in r.timeline.events)

    def test_compute_only_fission_equals_serial_kernels(self, ex):
        r = run_select_chain(N, 2, 0.5, Strategy.FISSION, include_transfers=False)
        assert r.timeline.filter(EventKind.H2D) == []

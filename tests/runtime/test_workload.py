"""Tests for the cross-query workload scheduler."""

import pytest

from repro.errors import PlanError
from repro.plans import Plan
from repro.plans.plan import OpType
from repro.ra import AggSpec, Field
from repro.runtime.workload import QueryWorkload, WorkloadScheduler


def query(i, threshold, agg=False):
    plan = Plan(name=f"query{i}")
    t = plan.source("lineitem", row_nbytes=4)
    node = plan.select(t, Field("x") < threshold, selectivity=0.2,
                       name="filter")
    if agg:
        plan.aggregate(node, [], {"n": AggSpec("count")}, name="count")
    return plan


@pytest.fixture
def workload():
    return QueryWorkload(plans=[query(0, 10), query(1, 20), query(2, 30, agg=True)])


ROWS = {"lineitem": 200_000_000}


class TestMergedPlan:
    def test_sources_deduplicated(self, workload):
        merged = workload.merged_plan()
        assert len(merged.sources()) == 1

    def test_query_nodes_namespaced(self, workload):
        merged = workload.merged_plan()
        names = {n.name for n in merged.nodes if n.op is not OpType.SOURCE}
        assert "q0.filter" in names and "q2.count" in names

    def test_merged_validates(self, workload):
        workload.merged_plan().validate()

    def test_empty_workload_rejected(self):
        with pytest.raises(PlanError):
            QueryWorkload(plans=[])

    def test_shared_scan_group_appears(self, workload):
        from repro.core.multifusion import find_shared_select_groups
        groups = find_shared_select_groups(workload.merged_plan())
        assert len(groups) == 1
        assert len(groups[0].selects) == 3


class TestScheduler:
    def test_isolated_uploads_per_query(self, workload):
        sched = WorkloadScheduler()
        r = sched.run_isolated(workload, ROWS)
        assert r.input_bytes == pytest.approx(3 * 200_000_000 * 4)

    def test_shared_source_uploads_once(self, workload):
        sched = WorkloadScheduler()
        r = sched.run_shared_source(workload, ROWS)
        assert r.input_bytes == pytest.approx(200_000_000 * 4)

    def test_sharing_improves(self, workload):
        sched = WorkloadScheduler()
        results = sched.compare(workload, ROWS)
        assert (results["shared_source"].makespan
                < results["isolated"].makespan)
        assert (results["cross_query_fused"].makespan
                < results["shared_source"].makespan)

    def test_cross_query_fusion_kernel_count_drops(self, workload):
        from repro.simgpu import EventKind
        sched = WorkloadScheduler()
        shared = sched.run_shared_source(workload, ROWS)
        fused = sched.run_cross_query_fused(workload, ROWS)
        assert (len(fused.timeline.filter(EventKind.KERNEL))
                < len(shared.timeline.filter(EventKind.KERNEL)))

    def test_single_query_workload_no_fusion_benefit(self):
        w = QueryWorkload(plans=[query(0, 10)])
        sched = WorkloadScheduler()
        a = sched.run_shared_source(w, ROWS)
        b = sched.run_cross_query_fused(w, ROWS)
        assert a.makespan == pytest.approx(b.makespan, rel=0.01)

    def test_throughput_definition(self, workload):
        r = WorkloadScheduler().run_isolated(workload, ROWS)
        assert r.throughput == pytest.approx(r.input_bytes / r.makespan)

"""Tests for the cross-query workload scheduler."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.faults import FaultPlan
from repro.plans import Plan, evaluate_sinks
from repro.plans.plan import OpType
from repro.ra import AggSpec, Field
from repro.ra.relation import Relation
from repro.runtime.workload import QueryWorkload, WorkloadScheduler


def query(i, threshold, agg=False):
    plan = Plan(name=f"query{i}")
    t = plan.source("lineitem", row_nbytes=4)
    node = plan.select(t, Field("x") < threshold, selectivity=0.2,
                       name="filter")
    if agg:
        plan.aggregate(node, [], {"n": AggSpec("count")}, name="count")
    return plan


@pytest.fixture
def workload():
    return QueryWorkload(plans=[query(0, 10), query(1, 20), query(2, 30, agg=True)])


ROWS = {"lineitem": 200_000_000}


class TestMergedPlan:
    def test_sources_deduplicated(self, workload):
        merged = workload.merged_plan()
        assert len(merged.sources()) == 1

    def test_query_nodes_namespaced(self, workload):
        merged = workload.merged_plan()
        names = {n.name for n in merged.nodes if n.op is not OpType.SOURCE}
        assert "q0.filter" in names and "q2.count" in names

    def test_merged_validates(self, workload):
        workload.merged_plan().validate()

    def test_empty_workload_rejected(self):
        with pytest.raises(PlanError):
            QueryWorkload(plans=[])

    def test_shared_scan_group_appears(self, workload):
        from repro.core.multifusion import find_shared_select_groups
        groups = find_shared_select_groups(workload.merged_plan())
        assert len(groups) == 1
        assert len(groups[0].selects) == 3


class TestScheduler:
    def test_isolated_uploads_per_query(self, workload):
        sched = WorkloadScheduler()
        r = sched.run_isolated(workload, ROWS)
        assert r.input_bytes == pytest.approx(3 * 200_000_000 * 4)

    def test_shared_source_uploads_once(self, workload):
        sched = WorkloadScheduler()
        r = sched.run_shared_source(workload, ROWS)
        assert r.input_bytes == pytest.approx(200_000_000 * 4)

    def test_sharing_improves(self, workload):
        sched = WorkloadScheduler()
        results = sched.compare(workload, ROWS)
        assert (results["shared_source"].makespan
                < results["isolated"].makespan)
        assert (results["cross_query_fused"].makespan
                < results["shared_source"].makespan)

    def test_cross_query_fusion_kernel_count_drops(self, workload):
        from repro.simgpu import EventKind
        sched = WorkloadScheduler()
        shared = sched.run_shared_source(workload, ROWS)
        fused = sched.run_cross_query_fused(workload, ROWS)
        assert (len(fused.timeline.filter(EventKind.KERNEL))
                < len(shared.timeline.filter(EventKind.KERNEL)))

    def test_single_query_workload_no_fusion_benefit(self):
        w = QueryWorkload(plans=[query(0, 10)])
        sched = WorkloadScheduler()
        a = sched.run_shared_source(w, ROWS)
        b = sched.run_cross_query_fused(w, ROWS)
        assert a.makespan == pytest.approx(b.makespan, rel=0.01)

    def test_throughput_definition(self, workload):
        r = WorkloadScheduler().run_isolated(workload, ROWS)
        assert r.throughput == pytest.approx(r.input_bytes / r.makespan)


REGIMES = ("run_isolated", "run_shared_source", "run_cross_query_fused",
           "run_batched_streams")


class TestRegimeComparison:
    """The sharing regimes only reschedule work -- they must agree on the
    answer, and sharing more must never cost simulated time."""

    def test_results_identical_across_regimes(self, workload):
        # Every regime executes the same logical plans (per-query for
        # isolated, merged for the sharing regimes); the functional
        # interpreter is the reference both reduce to.
        rel = Relation({"x": np.arange(1000) % 50})
        merged_out = evaluate_sinks(workload.merged_plan(), {"lineitem": rel})
        for qi, plan in enumerate(workload.plans):
            for name, got in evaluate_sinks(plan, {"lineitem": rel}).items():
                want = merged_out[f"q{qi}.{name}"]
                assert list(got.columns) == list(want.columns)
                for col in got.columns:
                    np.testing.assert_array_equal(
                        got.columns[col], want.columns[col])

    @pytest.mark.no_chaos
    def test_makespan_monotone_non_increasing(self, workload):
        sched = WorkloadScheduler()
        iso = sched.run_isolated(workload, ROWS)
        shared = sched.run_shared_source(workload, ROWS)
        fused = sched.run_cross_query_fused(workload, ROWS)
        batched = sched.run_batched_streams(workload, ROWS)
        assert iso.makespan >= shared.makespan >= fused.makespan
        # the serving-path dispatch overlaps per-query remainders on top of
        # the shared scan, so it can only improve on the serial merged plan
        assert batched.makespan <= shared.makespan

    def test_batched_streams_uploads_once(self, workload):
        r = WorkloadScheduler().run_batched_streams(workload, ROWS)
        assert r.input_bytes == pytest.approx(200_000_000 * 4)

    @pytest.mark.no_chaos
    def test_chaos_regimes_recover_and_stay_deterministic(self, workload,
                                                          chaos):
        clean = WorkloadScheduler()
        faulted = WorkloadScheduler(faults=chaos)
        for regime in REGIMES:
            base = getattr(clean, regime)(workload, ROWS)
            r1 = getattr(faulted, regime)(workload, ROWS)
            r2 = getattr(faulted, regime)(workload, ROWS)
            # a FaultPlan hands each run a fresh injector: same decisions
            assert r1.makespan == r2.makespan, regime
            # retries/stalls/backoff only ever add simulated time
            assert r1.makespan >= base.makespan, regime

    @pytest.mark.no_chaos
    def test_chaos_faults_marked_in_timeline(self, workload):
        sched = WorkloadScheduler(faults=FaultPlan.chaos(5, rate=0.3))
        r = sched.run_shared_source(workload, ROWS)
        assert any(ev.tag.startswith("fault.") for ev in r.timeline.events)

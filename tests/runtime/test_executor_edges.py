"""Edge-case tests for the executor across strategy x size combinations."""

import pytest

from repro.core.fission import FissionConfig
from repro.plans import Plan
from repro.ra import AggSpec, Field
from repro.runtime import ExecutionConfig, Executor, Strategy
from repro.runtime.select_chain import run_select_chain
from repro.simgpu import EventKind


@pytest.fixture(scope="module")
def ex():
    return Executor()


class TestRoundTripChunked:
    def test_round_trip_with_chunking(self):
        """WITH_ROUND_TRIP over > memory data: chunks AND round trips."""
        r = run_select_chain(3_000_000_000, 2, 0.5, Strategy.WITH_ROUND_TRIP)
        assert r.num_chunks > 1
        assert r.roundtrip_time > 0
        rt_events = [e for e in r.timeline.events
                     if e.tag.startswith("roundtrip")]
        # one d2h + one h2d per intermediate per chunk
        assert len(rt_events) == 2 * r.num_chunks

    @pytest.mark.no_chaos  # compares timings across separately faulted runs
    def test_round_trip_slowest_everywhere(self):
        for n in (10_000_000, 500_000_000, 2_000_000_000):
            tputs = {s: run_select_chain(n, 2, 0.5, s).throughput
                     for s in Strategy}
            assert min(tputs, key=tputs.get) is Strategy.WITH_ROUND_TRIP


class TestComputeOnlyConsistency:
    def test_no_transfers_for_any_strategy(self):
        for s in Strategy:
            r = run_select_chain(50_000_000, 2, 0.5, s, include_transfers=False)
            assert r.timeline.filter(EventKind.H2D) == [], s
            assert r.timeline.filter(EventKind.D2H) == [], s

    def test_round_trip_equals_serial_compute_only(self):
        """Without transfers, WITH_ROUND_TRIP degenerates to SERIAL."""
        a = run_select_chain(50_000_000, 2, 0.5, Strategy.WITH_ROUND_TRIP,
                             include_transfers=False)
        b = run_select_chain(50_000_000, 2, 0.5, Strategy.SERIAL,
                             include_transfers=False)
        assert a.makespan == pytest.approx(b.makespan, rel=1e-9)


class TestSingleOperator:
    def test_single_select_all_strategies(self):
        for s in Strategy:
            r = run_select_chain(100_000_000, 1, 0.5, s)
            assert r.makespan > 0
            assert r.n_out == 50_000_000

    def test_single_select_no_round_trips(self):
        """One operator has no intermediates, so WITH_ROUND_TRIP adds
        nothing over SERIAL."""
        a = run_select_chain(100_000_000, 1, 0.5, Strategy.WITH_ROUND_TRIP)
        b = run_select_chain(100_000_000, 1, 0.5, Strategy.SERIAL)
        assert a.roundtrip_time == 0
        assert a.makespan == pytest.approx(b.makespan, rel=1e-9)


class TestTinyInputs:
    @pytest.mark.parametrize("n", [1, 100, 10_000])
    def test_small_sizes_run(self, n):
        for s in (Strategy.SERIAL, Strategy.FUSED, Strategy.FISSION):
            r = run_select_chain(n, 2, 0.5, s)
            assert r.makespan > 0

    def test_zero_selectivity(self):
        r = run_select_chain(10_000_000, 2, 0.0, Strategy.FUSED)
        assert r.n_out == 0
        assert r.output_bytes == 0

    def test_full_selectivity(self):
        r = run_select_chain(10_000_000, 2, 1.0, Strategy.FUSED)
        assert r.n_out == 10_000_000


class TestCustomFissionConfig:
    def test_paged_fission_slower_than_pinned(self):
        from repro.simgpu import HostMemory
        n = 1_000_000_000
        pinned = run_select_chain(n, 1, 0.5, Strategy.FISSION)
        cfg = ExecutionConfig(
            strategy=Strategy.FISSION,
            fission=FissionConfig(memory=HostMemory.PAGED))
        paged = run_select_chain(n, 1, 0.5, Strategy.FISSION, config=cfg)
        assert paged.makespan > pinned.makespan

    def test_many_small_segments_add_overhead(self):
        n = 1_000_000_000
        base = run_select_chain(n, 1, 0.5, Strategy.FISSION)
        tiny = ExecutionConfig(
            strategy=Strategy.FISSION,
            fission=FissionConfig(target_segment_bytes=1 << 20))
        small = run_select_chain(n, 1, 0.5, Strategy.FISSION, config=tiny)
        assert small.makespan > base.makespan


class TestChunkedSideTables:
    """Chunking must only repeat work that scales with the driver input."""

    @staticmethod
    def _star_plan() -> Plan:
        plan = Plan()
        fact = plan.source("fact", row_nbytes=4)
        dim = plan.source("dim", row_nbytes=4)
        plan.select(fact, Field("v") < 1, selectivity=0.5, name="bigsel")
        plan.select(dim, Field("v") < 1, selectivity=0.5, name="dimsel")
        return plan

    def test_driver_independent_region_runs_once(self, ex):
        plan = self._star_plan()
        cfg = ExecutionConfig(strategy=Strategy.SERIAL)
        small = ex.run(plan, {"fact": 10_000_000, "dim": 1_000_000}, cfg)
        assert small.num_chunks == 1
        big = ex.run(plan, {"fact": 2_000_000_000, "dim": 1_000_000}, cfg)
        assert big.num_chunks > 1

        def kernels(r, prefix):
            return [e for e in r.timeline.filter(EventKind.KERNEL)
                    if e.tag.startswith(prefix)]

        # the fact-scan region repeats per chunk ...
        assert len(kernels(big, "bigsel")) == \
            big.num_chunks * len(kernels(small, "bigsel"))
        # ... but the dim-only region must execute exactly once
        assert len(kernels(big, "dimsel")) == len(kernels(small, "dimsel"))
        outs = [e for e in big.timeline.events
                if e.tag.startswith("output.dimsel")]
        assert len(outs) == 1

    def test_side_table_uploaded_once(self, ex):
        plan = self._star_plan()
        r = ex.run(plan, {"fact": 2_000_000_000, "dim": 1_000_000},
                   ExecutionConfig(strategy=Strategy.SERIAL))
        dim_uploads = [e for e in r.timeline.filter(EventKind.H2D)
                       if e.tag == "input.dim"]
        assert len(dim_uploads) == 1
        fact_uploads = [e for e in r.timeline.filter(EventKind.H2D)
                        if e.tag.startswith("input.fact")]
        assert len(fact_uploads) == r.num_chunks


class TestOomReporting:
    def test_oversized_side_inputs_report_actual_budget(self, ex):
        """When side tables alone bust the chunking budget, the error must
        report the budget actually available, not the raw capacity."""
        from repro.errors import DeviceOOMError
        plan = TestChunkedSideTables._star_plan()
        # dim: 6.4 GB of side input; fact larger still, so it stays driver
        with pytest.raises(DeviceOOMError) as exc:
            ex.run(plan, {"fact": 3_000_000_000, "dim": 1_600_000_000},
                   ExecutionConfig(strategy=Strategy.SERIAL))
        err = exc.value
        cfg = ExecutionConfig()
        assert err.requested == int(1_600_000_000 * 4)
        assert err.free == int(ex.device.global_mem_bytes
                               * cfg.memory_safety)
        assert err.free < err.capacity == ex.device.global_mem_bytes


class TestMultiSinkPlans:
    def test_two_sinks_both_uploaded(self, ex):
        plan = Plan()
        t = plan.source("t", row_nbytes=4)
        a = plan.select(t, Field("x") < 1, selectivity=0.5, name="a")
        plan.select(a, Field("x") < 2, selectivity=0.5, name="b")
        plan.aggregate(a, [], {"n": AggSpec("count")}, name="agg")
        # 'a' has two consumers: both 'b' and 'agg' outputs are sinks
        r = ex.run(plan, {"t": 10_000_000},
                   ExecutionConfig(strategy=Strategy.SERIAL))
        outs = [e for e in r.timeline.events if e.tag.startswith("output")]
        assert len(outs) == 2

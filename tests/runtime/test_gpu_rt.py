"""Tests for the functional GPU runtime (memory-managed execution)."""

import numpy as np
import pytest

from repro.errors import DeviceOOMError, PlanError
from repro.plans import Plan, evaluate_sinks
from repro.ra import AggSpec, Field, Relation
from repro.runtime import GpuRuntime
from repro.simgpu import EventKind
from repro.tpch import build_q1_plan, q1_column_relations, build_q21_plan


@pytest.fixture
def rel(rng):
    n = 100_000
    return Relation({
        "k": rng.integers(0, 100, n).astype(np.int32),
        "v": rng.integers(0, 100, n).astype(np.int32),
    })


def chain_plan(num=3):
    plan = Plan()
    node = plan.source("t", row_nbytes=8)
    thresholds = [80, 80, 40]
    fields = ["k", "v", "k"]
    sels = [0.8, 0.8, 0.5]
    for i in range(num):
        node = plan.select(node, Field(fields[i]) < thresholds[i],
                           selectivity=sels[i], name=f"s{i}")
    return plan


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("fuse", [False, True])
    def test_matches_interpreter(self, rel, fuse):
        plan = chain_plan()
        ref = evaluate_sinks(plan, {"t": rel})
        sink = next(iter(ref))
        res = GpuRuntime(fuse=fuse).run(plan, {"t": rel})
        assert res.results[sink].same_tuples(ref[sink])

    def test_fused_equals_unfused(self, rel):
        plan = chain_plan()
        a = GpuRuntime(fuse=True).run(plan, {"t": rel})
        b = GpuRuntime(fuse=False).run(plan, {"t": rel})
        sink = next(iter(a.results))
        assert a.results[sink].same_tuples(b.results[sink])

    def test_q1_through_runtime(self, tpch_tiny):
        plan = build_q1_plan()
        cols = q1_column_relations(tpch_tiny.lineitem)
        ref = evaluate_sinks(plan, cols)
        sink = next(iter(ref))
        res = GpuRuntime(fuse=True).run(plan, cols)
        assert res.results[sink].same_tuples(ref[sink])

    def test_q21_through_runtime(self, tpch_tiny):
        plan = build_q21_plan()
        sources = {"lineitem": tpch_tiny.lineitem, "orders": tpch_tiny.orders,
                   "supplier": tpch_tiny.supplier, "nation": tpch_tiny.nation}
        ref = evaluate_sinks(plan, sources)
        sink = next(iter(ref))
        res = GpuRuntime(fuse=True).run(plan, sources)
        assert res.results[sink].same_tuples(ref[sink])

    def test_missing_source_raises(self, rel):
        with pytest.raises(PlanError):
            GpuRuntime().run(chain_plan(), {})


class TestTiming:
    def test_fused_is_faster(self, rel):
        plan = chain_plan()
        fused = GpuRuntime(fuse=True).run(plan, {"t": rel})
        unfused = GpuRuntime(fuse=False).run(plan, {"t": rel})
        assert fused.makespan < unfused.makespan

    def test_kernel_counts(self, rel):
        plan = chain_plan()
        fused = GpuRuntime(fuse=True).run(plan, {"t": rel})
        unfused = GpuRuntime(fuse=False).run(plan, {"t": rel})
        assert len(fused.timeline.filter(EventKind.KERNEL)) == 2
        assert len(unfused.timeline.filter(EventKind.KERNEL)) == 6

    def test_transfers_recorded(self, rel):
        res = GpuRuntime().run(chain_plan(), {"t": rel})
        h2d = res.timeline.filter(EventKind.H2D)
        d2h = res.timeline.filter(EventKind.D2H)
        assert sum(e.nbytes for e in h2d) == rel.nbytes
        assert len(d2h) == 1  # sink only


class TestMemoryManagement:
    def test_no_spills_with_room(self, rel):
        res = GpuRuntime(memory_limit=100 * rel.nbytes).run(chain_plan(), {"t": rel})
        assert res.spill_count == 0
        assert res.roundtrip_time == 0

    def test_pressure_forces_round_trips(self, rel):
        tight = int(rel.nbytes * 1.3)
        res = GpuRuntime(fuse=False, memory_limit=tight).run(chain_plan(), {"t": rel})
        assert res.spill_count > 0
        assert res.roundtrip_time > 0

    def test_results_correct_under_pressure(self, rel):
        plan = chain_plan()
        ref = evaluate_sinks(plan, {"t": rel})
        sink = next(iter(ref))
        tight = int(rel.nbytes * 1.3)
        for fuse in (False, True):
            res = GpuRuntime(fuse=fuse, memory_limit=tight).run(plan, {"t": rel})
            assert res.results[sink].same_tuples(ref[sink])

    def test_fusion_reduces_spills(self, rel):
        """Fig 7(a)/(b): no intermediates -> fewer forced round trips."""
        plan = chain_plan()
        tight = int(rel.nbytes * 1.3)
        unfused = GpuRuntime(fuse=False, memory_limit=tight).run(plan, {"t": rel})
        fused = GpuRuntime(fuse=True, memory_limit=tight).run(plan, {"t": rel})
        assert fused.spill_count < unfused.spill_count
        assert fused.makespan < unfused.makespan

    def test_single_buffer_exceeding_capacity_raises(self, rel):
        with pytest.raises(DeviceOOMError):
            GpuRuntime(memory_limit=rel.nbytes // 2).run(chain_plan(), {"t": rel})

    def test_peak_tracked(self, rel):
        res = GpuRuntime().run(chain_plan(), {"t": rel})
        assert res.peak_device_bytes >= rel.nbytes

    def test_buffers_released_after_last_use(self, rel):
        """With generous memory, the peak should stay below the sum of all
        intermediates (consumed buffers are freed)."""
        plan = chain_plan()
        res = GpuRuntime(fuse=False).run(plan, {"t": rel})
        every_buffer = rel.nbytes * (1 + 0.8 + 0.64 + 0.32)
        assert res.peak_device_bytes < every_buffer


class TestAggregatePlans:
    def test_terminal_aggregate(self, rel):
        plan = Plan()
        t = plan.source("t", row_nbytes=8)
        s = plan.select(t, Field("k") < 50, selectivity=0.5)
        plan.aggregate(s, [], {"total": AggSpec("sum", "v")}, name="agg")
        res = GpuRuntime().run(plan, {"t": rel})
        expected = rel["v"][rel["k"] < 50].sum()
        assert float(res.results["agg"]["total"][0]) == pytest.approx(float(expected))


class TestConsistencyWithExecutor:
    def test_runtime_and_executor_agree_when_annotations_accurate(self, rng):
        """The annotation-driven executor and the actual-size-driven
        functional runtime must tell the same timing story when the
        annotations are correct."""
        import numpy as np
        from repro.plans import Plan
        from repro.ra import Field, Relation
        from repro.runtime import ExecutionConfig, Executor, Strategy

        n = 400_000
        rel = Relation({"k": rng.integers(0, 100, n).astype(np.int32),
                        "v": rng.integers(0, 100, n).astype(np.int32)})
        plan = Plan()
        t = plan.source("t", row_nbytes=8)
        s1_actual = float((rel["k"] < 50).mean())
        node = plan.select(t, Field("k") < 50, selectivity=s1_actual, name="a")
        sel_b = float((rel["v"][rel["k"] < 50] < 50).mean())
        plan.select(node, Field("v") < 50, selectivity=sel_b, name="b")

        executor_time = Executor().run(
            plan, {"t": n},
            ExecutionConfig(strategy=Strategy.FUSED)).makespan
        runtime_time = GpuRuntime(fuse=True).run(plan, {"t": rel}).makespan
        assert runtime_time == pytest.approx(executor_time, rel=0.05)
